//! # tdh — Crowdsourced Truth Discovery in the Presence of Hierarchies
//!
//! A faithful, production-quality Rust implementation of
//! *"Crowdsourced Truth Discovery in the Presence of Hierarchies for
//! Knowledge Fusion"* (Woohwan Jung, Younghoon Kim, Kyuseok Shim — EDBT
//! 2019), together with every substrate its evaluation depends on.
//!
//! This crate is a facade: it re-exports the workspace member crates under
//! stable module names so downstream users depend on a single crate.
//!
//! | module | contents |
//! |--------|----------|
//! | [`hierarchy`] | value hierarchies, LCA/distance queries, the numeric rounding lattice |
//! | [`data`] | records, answers, datasets, candidate-set indexes |
//! | [`core`] | the TDH model: EM inference, incremental EM, EAI task assignment |
//! | [`baselines`] | 13 competing inference algorithms + 3 competing assigners |
//! | [`crowd`] | the crowdsourcing simulation engine and worker models |
//! | [`datagen`] | synthetic corpora calibrated to the paper's datasets |
//! | [`eval`] | Accuracy, GenAccuracy, AvgDistance, multi-truth P/R/F1, MAE/RE |
//! | [`obs`] | observability: atomic counters/gauges, log-scale histograms, Prometheus-style exposition, span timers, `TDH_LOG` event log |
//! | [`serve`] | online truth serving: snapshots, incremental ingestion, warm-start refits, sharded multi-tenant TCP endpoints |
//!
//! ## Quickstart
//!
//! ```
//! use tdh::datagen::{BirthPlacesConfig, generate_birthplaces};
//! use tdh::core::TdhModel;
//! use tdh::eval::single_truth_report;
//!
//! // A small synthetic corpus in the shape of the paper's BirthPlaces data.
//! let mut cfg = BirthPlacesConfig::default();
//! cfg.n_objects = 200;
//! let corpus = generate_birthplaces(&cfg, 42);
//!
//! // Run hierarchical truth inference.
//! let mut model = TdhModel::new(Default::default());
//! let estimate = model.fit(&corpus.dataset);
//!
//! // Score against the gold standard.
//! let report = single_truth_report(&corpus.dataset, &estimate.truths);
//! assert!(report.accuracy > 0.5);
//! ```

pub use tdh_baselines as baselines;
pub use tdh_core as core;
pub use tdh_crowd as crowd;
pub use tdh_data as data;
pub use tdh_datagen as datagen;
pub use tdh_eval as eval;
pub use tdh_hierarchy as hierarchy;
pub use tdh_obs as obs;
pub use tdh_serve as serve;
