//! Sharded, multi-tenant serving: partition a corpus across shard
//! servers, register named collections behind one router endpoint, then
//! drive the whole thing over TCP — `USE`/`CREATE` collection commands,
//! key-routed truth lookups, a cross-shard `INGEST` batch, and a merged
//! `TOPK` — and shut the endpoint down promptly.
//!
//! Run with: `cargo run --example sharded`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use tdh::core::TdhConfig;
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh::serve::{serve_router, shard_of, Collections, RefitPolicy, Router, ShardedServer};

/// One pipelined request/reply exchange on the router connection.
fn send(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writer.write_all(line.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    reply.trim().to_string()
}

fn main() {
    // --- Tenant 1: a fitted corpus partitioned over 4 shards. -----------
    // Each shard is a full single-writer TruthServer (own worker pool, own
    // published state); objects land on shards by FNV-1a name hash.
    let cfg = BirthPlacesConfig {
        n_objects: 200,
        hierarchy_nodes: 400,
    };
    let corpus = generate_birthplaces(&cfg, 2019);
    let hierarchy = corpus.dataset.hierarchy().clone();
    let watched = corpus
        .dataset
        .object_name(tdh::data::ObjectId(0))
        .to_string();
    let n_shards = 4;
    let sharded = ShardedServer::new(
        corpus.dataset,
        TdhConfig::default(),
        RefitPolicy::EveryBatch,
        n_shards,
    );
    println!(
        "tenant 'birthplaces': {} shards, object {watched:?} lives on shard {}",
        sharded.n_shards(),
        shard_of(&watched, n_shards),
    );

    // --- The registry: one endpoint, many tenants. ----------------------
    // The template lets clients CREATE fresh (empty) tenants over the
    // wire; pre-built tenants are registered server-side with `insert`.
    let collections =
        Collections::with_template(hierarchy, TdhConfig::default(), RefitPolicy::EveryBatch, 2);
    collections
        .insert("birthplaces", sharded)
        .expect("register tenant");
    let handle = serve_router(
        Router::new(collections).with_default("birthplaces"),
        "127.0.0.1:0",
    )
    .expect("bind router");
    println!("router listening on {}", handle.addr());

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // --- The control plane: collection commands. ------------------------
    println!(
        "\nCOLLECTIONS  → {}",
        send(&mut writer, &mut reader, "COLLECTIONS")
    );
    println!(
        "CREATE fresh → {}",
        send(&mut writer, &mut reader, "CREATE\tscratch")
    );
    println!(
        "USE scratch  → {}",
        send(&mut writer, &mut reader, "USE\tscratch")
    );

    // The fresh tenant is empty; stream it a first batch. Batches are
    // gathered in full before anything applies, then routed per shard.
    // (Claimed values must be nodes of the template hierarchy — the
    // synthetic one names them L<depth>-<i>.)
    let reply = send(
        &mut writer,
        &mut reader,
        "INGEST\t3\nRECORD\tlouvre\tguide\tL1-0\nRECORD\tlouvre\tatlas\tL1-0\n\
         RECORD\tbig-ben\tguide\tL1-1",
    );
    println!("INGEST 3     → {reply}");
    println!(
        "TRUTH louvre → {}",
        send(&mut writer, &mut reader, "TRUTH\tlouvre")
    );

    // --- The data plane: key-routed reads on the fitted tenant. ---------
    println!(
        "\nUSE birthplaces → {}",
        send(&mut writer, &mut reader, "USE\tbirthplaces")
    );
    println!(
        "TRUTH {watched} → {}",
        send(&mut writer, &mut reader, &format!("TRUTH\t{watched}"))
    );
    // TOPK k-way-merges the pre-ranked per-shard lists under a total
    // order (uncertainty desc, then object name), so the merged ranking
    // is deterministic even though every shard fitted independently.
    println!(
        "TOPK 3          → {}",
        send(&mut writer, &mut reader, "TOPK\t3")
    );
    println!(
        "STATS           → {}",
        send(&mut writer, &mut reader, "STATS")
    );

    // --- Observability: the router's METRICS merges every shard. --------
    // Counters sum and histograms bucket-merge across the tenant's shard
    // registries, and the router adds its own per-command latency plus the
    // `tdh_shard_requests_total{shard,kind}` routing counters.
    writer.write_all(b"METRICS\n").expect("send");
    println!("\nMETRICS exposition (merged across shards):");
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("exposition line");
        print!("{line}");
        if line.trim_end() == "# EOF" {
            break;
        }
    }

    // --- Prompt shutdown while the idle connection stays open. ----------
    // Workers multiplex connections with short read timeouts, so an idle
    // client never pins a worker and shutdown doesn't wait on it.
    let t = std::time::Instant::now();
    let collections = handle.shutdown();
    drop(writer);
    println!(
        "\nshutdown in {:.0} ms; registry still owns {:?}",
        t.elapsed().as_secs_f64() * 1e3,
        collections.list(),
    );
}
