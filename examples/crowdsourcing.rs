//! The full crowdsourced truth-discovery loop (paper Fig. 2): alternate TDH
//! inference with EAI task assignment over a pool of simulated workers, and
//! watch accuracy climb against the QASCA and uncertainty-sampling (ME)
//! assigners.
//!
//! ```text
//! cargo run --release --example crowdsourcing
//! ```

use tdh::baselines::{MeAssigner, Qasca};
use tdh::core::{EaiAssigner, TaskAssigner, TdhConfig, TdhModel};
use tdh::crowd::{run_simulation, SimulationConfig, WorkerPool};
use tdh::datagen::{generate_heritages, HeritagesConfig};

fn main() {
    let cfg = HeritagesConfig {
        n_objects: 300,
        n_sources: 600,
        n_claims: 1_700,
        hierarchy_nodes: 500,
    };
    let sim_cfg = SimulationConfig {
        rounds: 20,
        tasks_per_worker: 5,
        ..Default::default()
    };

    println!(
        "Heritages-style corpus, 10 simulated workers (π_p = 0.75), {} rounds × {} tasks:",
        sim_cfg.rounds, sim_cfg.tasks_per_worker
    );
    println!();

    let mut results = Vec::new();
    let assigners: Vec<Box<dyn TaskAssigner>> = vec![
        Box::new(EaiAssigner::new()),
        Box::new(Qasca::new(1)),
        Box::new(MeAssigner),
    ];
    for mut assigner in assigners {
        // Fresh corpus + pool per run so the comparisons are clean.
        let corpus = generate_heritages(&cfg, 99);
        let mut ds = corpus.dataset;
        let mut pool = WorkerPool::uniform(&mut ds, 10, 0.75, 5);
        let mut model = TdhModel::new(TdhConfig::default());
        let result = run_simulation(&mut ds, &mut model, assigner.as_mut(), &mut pool, &sim_cfg);
        results.push(result);
    }

    println!("{:<10} {}", "round", "TDH+EAI   TDH+QASCA  TDH+ME");
    for round in (0..=sim_cfg.rounds).step_by(5) {
        let row: Vec<String> = results
            .iter()
            .map(|r| format!("{:.4}", r.rounds[round].report.accuracy))
            .collect();
        println!("{:<10} {}", round, row.join("     "));
    }
    println!();
    for r in &results {
        let collected: usize = r.rounds.iter().map(|m| m.answers_collected).sum();
        println!(
            "TDH+{:<6} final accuracy {:.4} after {collected} answers",
            r.assigner,
            r.final_accuracy()
        );
    }
    println!();
    println!("EAI spends the same budget on the objects where one answer moves");
    println!("the needle most — few claims, contested confidence — which is why");
    println!("its curve dominates at every round.");
}
