//! Online truth serving: fit a corpus once, snapshot it to disk, bring a
//! fresh server up from the snapshot, then stream two claim batches through
//! the incremental engine and watch answers and reliabilities move —
//! finishing with a `METRICS` scrape of the instrumented server over TCP.
//!
//! Run with: `cargo run --example serving`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use tdh::core::TdhConfig;
use tdh::data::{ObjectId, SourceId};
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh::serve::{serve_tcp, Claim, RefitPolicy, Snapshot, TruthServer};

fn record(object: &str, source: &str, value: &str) -> Claim {
    Claim::Record {
        object: object.into(),
        source: source.into(),
        value: value.into(),
    }
}

fn main() {
    // --- Build and fit a corpus, then persist it. -----------------------
    let cfg = BirthPlacesConfig {
        n_objects: 300,
        hierarchy_nodes: 500,
    };
    let corpus = generate_birthplaces(&cfg, 2019);
    let ds = corpus.dataset;
    let watched = ds.object_name(ObjectId(0)).to_string();
    let known_source = ds.source_name(SourceId(0)).to_string();

    let server = TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch);
    let bootstrap = server.last_refit().unwrap();
    println!(
        "bootstrap fit: {} EM iterations (cold) over {} records",
        bootstrap.iterations,
        server.stats().n_records
    );

    let dir = std::env::temp_dir().join("tdh-serving-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("birthplaces.tdhsnap");
    server.snapshot().save(&path).expect("save snapshot");
    println!(
        "snapshot saved to {path:?} ({} bytes)",
        std::fs::metadata(&path).unwrap().len()
    );

    // --- A fresh process: reload and serve without refitting. -----------
    let snap = Snapshot::load(&path).expect("load snapshot");
    let mut server = TruthServer::from_snapshot(snap, RefitPolicy::EveryBatch).expect("restore");
    let before = server.truth(&watched).expect("restored answer");
    println!(
        "\nrestored server answers immediately (0 refits): \
         truth({watched}) = {} (confidence {:.3})",
        before.value, before.confidence
    );

    // --- Batch 1: corroborate the current truth of the watched object. --
    let batch1 = vec![
        record(&watched, "corroborator", &before.value),
        record(&watched, &known_source, &before.value),
    ];
    let report = server.ingest(&batch1).expect("batch 1");
    let refit = report.refit.expect("EveryBatch refits");
    println!(
        "\nbatch 1: +{} records → warm refit in {} EM iterations \
         (vs {} cold at bootstrap)",
        report.appended_records, refit.iterations, bootstrap.iterations
    );
    let after1 = server.truth(&watched).unwrap();
    println!(
        "truth({watched}) = {} (confidence {:.3} → {:.3})",
        after1.value, before.confidence, after1.confidence
    );

    // --- Batch 2: a brand-new object enters the corpus online. ----------
    let batch2 = vec![
        record("louvre", "corroborator", &before.value),
        record("louvre", &known_source, &before.value),
    ];
    let report = server.ingest(&batch2).expect("batch 2");
    println!(
        "\nbatch 2: new object 'louvre' → warm refit in {} iterations",
        report.refit.unwrap().iterations
    );
    let louvre = server.truth("louvre").unwrap();
    println!(
        "truth(louvre) = {} (confidence {:.3})",
        louvre.value, louvre.confidence
    );
    let phi = server.source_reliability("corroborator").unwrap();
    println!(
        "reliability(corroborator): φ = [{:.3}, {:.3}, {:.3}]",
        phi[0], phi[1], phi[2]
    );

    println!("\nmost uncertain objects now:");
    for (object, uncertainty) in server.top_uncertain(3) {
        println!("  {object}: {uncertainty:.4}");
    }

    // --- Lock-free readers: queries keep flowing while batch 3 refits. --
    // `reader()` hands out a handle onto the published state: any number
    // of threads answer from the newest publication without touching the
    // writer — the ingest below swaps in a new state mid-flight and the
    // readers pick it up on their next load.
    let reader = server.reader();
    let batch3 = vec![
        record("orsay", "corroborator", &before.value),
        record("orsay", &known_source, &before.value),
    ];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let reader = reader.clone();
                let watched = &watched;
                scope.spawn(move || {
                    let mut lookups = 0u64;
                    let mut last_version = 0;
                    for _ in 0..50_000 {
                        let state = reader.load();
                        last_version = state.version();
                        if state.truth(watched).is_some() {
                            lookups += 1;
                        }
                    }
                    (t, lookups, last_version)
                })
            })
            .collect();
        server.ingest(&batch3).expect("batch 3");
        for handle in handles {
            let (t, lookups, version) = handle.join().unwrap();
            println!(
                "reader {t}: {lookups} lock-free lookups, \
                 last saw publication v{version}"
            );
        }
    });

    let stats = server.stats();
    println!(
        "\nserver stats: {} objects, {} records, {} batches, {} refits, \
         {} publications",
        stats.n_objects, stats.n_records, stats.batches, stats.refits, stats.publications
    );

    // --- Observability: attach a WAL, serve over TCP, scrape METRICS. ---
    // Every hot path above already fed the server's registry (refit
    // durations, ingest batch sizes, EM phase timings); durability adds the
    // WAL append/fsync histograms, and the endpoint adds per-command
    // request latency. `METRICS` renders it all as Prometheus-style text.
    server
        .attach_durability(&dir.join("wal"))
        .expect("attach WAL");
    server
        .ingest(&[record("orangerie", "corroborator", &before.value)])
        .expect("durable batch");
    let handle = serve_tcp(server, "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut net_reader = BufReader::new(stream);
    for line in ["TRUTH\tlouvre", "TOPK\t3", "STATS"] {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        net_reader.read_line(&mut reply).unwrap();
        if line == "STATS" {
            println!("\nSTATS over TCP → {}", reply.trim());
        }
    }
    writer.write_all(b"METRICS\n").unwrap();
    println!("\nMETRICS exposition:");
    loop {
        let mut line = String::new();
        net_reader.read_line(&mut line).unwrap();
        print!("{line}");
        if line.trim_end() == "# EOF" {
            break;
        }
    }
    drop(writer);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
