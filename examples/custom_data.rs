//! Running TDH on your own data: load records / answers / gold from the TSV
//! interchange format, infer, and export the results.
//!
//! The format is three tab-separated files (answers and gold optional):
//!
//! ```text
//! records.tsv:  object \t source \t value-path     e.g.  Statue of Liberty  Wikipedia  USA/NY/Liberty Island
//! answers.tsv:  object \t worker \t value-path
//! gold.tsv:     object \t value-path
//! ```
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use tdh::core::{TdhConfig, TdhModel};
use tdh::data::io::{parse_dataset, to_tsv, TextInputs};
use tdh::data::ObservationIndex;
use tdh::eval::single_truth_report_with_index;

const RECORDS: &str = "\
# object\tsource\tvalue-path
Statue of Liberty\tUNESCO\tUSA/NY
Statue of Liberty\tWikipedia\tUSA/NY/Liberty Island
Statue of Liberty\tArrangy\tUSA/CA/LA
Big Ben\tQuora\tUK/Manchester
Big Ben\ttripadvisor\tUK/London
Eiffel Tower\tWikipedia\tFrance/Paris/7th arr.
Eiffel Tower\ttravelblog\tFrance/Paris
Eiffel Tower\tmirror-site\tFrance/Paris
Eiffel Tower\tconfused.net\tUK/London
";

const ANSWERS: &str = "\
# object\tworker\tvalue-path
Big Ben\talice\tUK/London
Big Ben\tbob\tUK/London
";

const GOLD: &str = "\
# object\tvalue-path
Statue of Liberty\tUSA/NY/Liberty Island
Big Ben\tUK/London
Eiffel Tower\tFrance/Paris/7th arr.
";

fn main() {
    // In a real deployment these strings come from files:
    //   tdh::data::io::load_dataset(Path::new("records.tsv"), ...)
    let ds = parse_dataset(&TextInputs {
        records: RECORDS,
        answers: Some(ANSWERS),
        gold: Some(GOLD),
    })
    .expect("inputs are well-formed");

    let stats = ds.stats();
    println!(
        "loaded {} objects, {} sources, {} workers, {} records, {} answers",
        stats.n_objects, stats.n_sources, stats.n_workers, stats.n_records, stats.n_answers
    );
    println!(
        "hierarchy: {} nodes, height {}",
        stats.hierarchy_nodes, stats.hierarchy_height
    );
    println!();

    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    let est = tdh::core::TruthDiscovery::infer(&mut model, &ds, &idx);

    println!("inferred truths:");
    for o in ds.objects() {
        let name = est.truths[o.index()]
            .map(|v| ds.hierarchy().name(v).to_string())
            .unwrap_or_else(|| "<none>".into());
        println!("  {:<18} → {name}", ds.object_name(o));
    }

    let report = single_truth_report_with_index(&ds, &idx, &est.truths);
    println!();
    println!(
        "accuracy {:.2}, gen-accuracy {:.2}, avg distance {:.2} over {} gold-labelled objects",
        report.accuracy, report.gen_accuracy, report.avg_distance, report.n_evaluated
    );

    // Export back to TSV (e.g. to snapshot the accumulated answers).
    let (_records, answers, _gold) = to_tsv(&ds);
    println!();
    println!("answers.tsv after the session:");
    print!("{answers}");
}
