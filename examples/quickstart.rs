//! Quickstart: hierarchical truth discovery on the paper's Table 1.
//!
//! Five records about two tourist attractions, three of them conflicting.
//! Flat majority voting cannot tell that "NY" and "Liberty Island" support
//! each other; TDH can, because the hierarchy says one generalizes the
//! other.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tdh::core::{TdhConfig, TdhModel};
use tdh::data::Dataset;
use tdh::hierarchy::HierarchyBuilder;

fn main() {
    // 1. The value hierarchy (normally loaded from a gazetteer or KB).
    let mut b = HierarchyBuilder::new();
    b.add_path(&["USA", "NY", "Liberty Island"]);
    b.add_path(&["USA", "CA", "LA"]);
    b.add_path(&["UK", "London"]);
    b.add_path(&["UK", "Manchester"]);
    let hierarchy = b.build();

    // 2. The records of Table 1.
    let mut ds = Dataset::new(hierarchy);
    let sol = ds.intern_object("Statue of Liberty");
    let big_ben = ds.intern_object("Big Ben");
    let rows = [
        (sol, "UNESCO", "NY"),
        (sol, "Wikipedia", "Liberty Island"),
        (sol, "Arrangy", "LA"),
        (big_ben, "Quora", "Manchester"),
        (big_ben, "tripadvisor", "London"),
    ];
    for (object, source, value) in rows {
        let s = ds.intern_source(source);
        let v = ds
            .hierarchy()
            .node_by_name(value)
            .expect("value is in the hierarchy");
        ds.add_record(object, s, v);
    }

    // 3. Run hierarchical truth inference.
    let mut model = TdhModel::new(TdhConfig::default());
    let estimate = model.fit(&ds);

    // 4. Report.
    println!("Inferred truths:");
    for o in ds.objects() {
        let truth = estimate.truths[o.index()]
            .map(|v| ds.hierarchy().name(v).to_string())
            .unwrap_or_else(|| "<no candidates>".into());
        println!("  {:<18} → {}", ds.object_name(o), truth);
        let idx = tdh::data::ObservationIndex::build(&ds);
        let view = idx.view(o);
        for (i, &cand) in view.candidates.iter().enumerate() {
            println!(
                "      μ({}) = {:.3}",
                ds.hierarchy().name(cand),
                estimate.confidences[o.index()][i]
            );
        }
    }
    println!();
    println!("Estimated source trustworthiness φ = (exact, generalized, wrong):");
    for s in ds.sources() {
        let phi = model.phi(s);
        println!(
            "  {:<12} ({:.2}, {:.2}, {:.2})",
            ds.source_name(s),
            phi[0],
            phi[1],
            phi[2]
        );
    }
}
