//! Numeric truth discovery via the implicit rounding hierarchy (§3.2):
//! fuse conflicting stock quotes reported at different significant figures,
//! with the occasional scrape-error outlier, and compare TDH against the
//! averaging baselines it is designed to beat.
//!
//! ```text
//! cargo run --release --example numeric_fusion
//! ```

use tdh::baselines::numeric::{Catd, CrhNumeric, MeanNumeric, NumericTruthDiscovery, VoteNumeric};
use tdh::core::numeric::NumericTdh;
use tdh::data::{NumericDataset, ObjectId, SourceId};
use tdh::datagen::{generate_stock, StockAttribute, StockConfig};
use tdh::eval::numeric_report;
use tdh::hierarchy::numeric::NumericHierarchy;

fn main() {
    // Part 1: one object, by hand — the paper's "area of Seoul" example.
    println!("-- the implicit hierarchy --");
    let claims = [605.196, 605.2, 605.0, 605.2, 6.0e8];
    let (lattice, nodes) = NumericHierarchy::build(&claims);
    let h = lattice.hierarchy();
    for (&v, &n) in claims.iter().zip(&nodes) {
        let parent = h.parent(n);
        let parent_name = if parent == tdh::hierarchy::NodeId::ROOT {
            "<root>".to_string()
        } else {
            format!("{}", lattice.value(parent))
        };
        println!("  {v:>12} → parent {parent_name}");
    }

    let mut ds = NumericDataset::new(1, 5);
    for (si, &v) in claims.iter().enumerate() {
        ds.add_claim(ObjectId(0), SourceId::from_index(si), v);
    }
    ds.set_gold(ObjectId(0), 605.196);
    let est = NumericTdh::default().infer(&ds);
    println!("  TDH estimate: {:?} (truth 605.196)", est[0]);
    println!();

    // Part 2: a full stock-style corpus per attribute.
    println!("-- stock corpus (500 symbols × 55 sources) --");
    for attribute in StockAttribute::ALL {
        let cfg = StockConfig {
            attribute,
            n_objects: 500,
            ..Default::default()
        };
        let ds = generate_stock(&cfg, 3);
        println!("[{}]", attribute.name());
        let runs: Vec<(&str, Vec<Option<f64>>)> = vec![
            ("TDH", NumericTdh::default().infer(&ds)),
            ("CRH", CrhNumeric::default().infer_numeric(&ds)),
            ("CATD", Catd::default().infer_numeric(&ds)),
            ("VOTE", VoteNumeric.infer_numeric(&ds)),
            ("MEAN", MeanNumeric.infer_numeric(&ds)),
        ];
        for (name, est) in runs {
            let r = numeric_report(&ds, &est);
            println!(
                "  {name:<5} MAE = {:>12.5}   R/E = {:>9.5}",
                r.mae, r.relative_error
            );
        }
    }
    println!();
    println!("MEAN and CATD average claims, so one 100× scrape error ruins them;");
    println!("TDH selects among candidate values on the rounding lattice instead.");
}
