//! End-to-end knowledge fusion on a BirthPlaces-style corpus: generate a
//! calibrated synthetic crawl, compare TDH against the strongest baselines,
//! and inspect the per-source reliability estimates that drive the result.
//!
//! ```text
//! cargo run --release --example birthplaces
//! ```

use tdh::baselines::{Asums, Docs, Lca, Vote};
use tdh::core::{TdhConfig, TdhModel, TruthDiscovery};
use tdh::data::{ObservationIndex, SourceId};
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh::eval::{single_truth_report_with_index, source_reliability};

fn main() {
    // A mid-size corpus: 1,500 celebrities, 7 web sources with the paper's
    // claim-count profile and heterogeneous generalization tendencies.
    let cfg = BirthPlacesConfig {
        n_objects: 1_500,
        hierarchy_nodes: 1_500,
    };
    let corpus = generate_birthplaces(&cfg, 7);
    let ds = &corpus.dataset;
    let idx = ObservationIndex::build(ds);
    let stats = ds.stats();
    println!(
        "corpus: {} objects, {} sources, {} records, hierarchy of {} nodes (height {})",
        stats.n_objects,
        stats.n_sources,
        stats.n_records,
        stats.hierarchy_nodes,
        stats.hierarchy_height
    );
    println!();

    // Run TDH and four baselines.
    let mut algorithms: Vec<Box<dyn TruthDiscovery>> = vec![
        Box::new(TdhModel::new(TdhConfig::default())),
        Box::new(Vote),
        Box::new(Lca::default()),
        Box::new(Docs::default()),
        Box::new(Asums::default()),
    ];
    println!(
        "{:<8} {:>9} {:>12} {:>12}",
        "algo", "Accuracy", "GenAccuracy", "AvgDistance"
    );
    for algo in &mut algorithms {
        let est = algo.infer(ds, &idx);
        let r = single_truth_report_with_index(ds, &idx, &est.truths);
        println!(
            "{:<8} {:>9.4} {:>12.4} {:>12.4}",
            algo.name(),
            r.accuracy,
            r.gen_accuracy,
            r.avg_distance
        );
    }
    println!();

    // Why TDH wins: it models generalization explicitly. Compare the real
    // per-source reliabilities with the fitted φ vectors.
    let mut tdh = TdhModel::new(TdhConfig::default());
    tdh.infer(ds, &idx);
    let rel = source_reliability(ds, &idx);
    println!("source reliability: actual vs TDH estimate");
    println!(
        "{:<10} {:>7} {:>9} {:>12} {:>8} {:>8}",
        "source", "claims", "Accuracy", "GenAccuracy", "φ1", "φ1+φ2"
    );
    for (si, r) in rel.iter().enumerate() {
        let phi = tdh.phi(SourceId::from_index(si));
        println!(
            "{:<10} {:>7} {:>9.3} {:>12.3} {:>8.3} {:>8.3}",
            ds.source_name(r.source),
            r.n_claims,
            r.accuracy,
            r.gen_accuracy,
            phi[0],
            phi[0] + phi[1]
        );
    }
    println!();
    println!("φ1 tracks exact accuracy and φ1+φ2 tracks generalized accuracy —");
    println!("a scalar-trust model (ASUMS above) cannot represent both.");
}
