//! Equivalence contract of the persistent worker pool (`tdh::core::par`).
//!
//! Since the pool landed, a multi-threaded `TdhModel::fit` runs *every* hot
//! phase — observation-index build, E-step scans, and the M-step `φ`/`ψ`
//! updates — as chunked jobs on long-lived workers reused across all EM
//! iterations. This suite pins the contract down end to end, mirroring
//! `tests/parallel_equivalence.rs` but driving `fit` (so the pooled index
//! build is on the tested path too):
//!
//! * pooled N-thread fits predict exactly the truths the `n_threads = 1`
//!   in-caller path predicts, with `φ`/`ψ`/`μ` and the objective within
//!   1e-9;
//! * pooled runs are **bitwise** deterministic across repeats (estimates
//!   and `FitReport`s compare equal);
//! * degenerate inputs (empty datasets, oversubscribed thread counts) never
//!   panic or deadlock.

use tdh::core::numeric::NumericTdh;
use tdh::core::{AblationFlags, TdhConfig, TdhModel};
use tdh::data::{Dataset, NumericDataset, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh::hierarchy::HierarchyBuilder;

/// FP-summation tolerance for parameters and objective (the truths must
/// match exactly).
const TOL: f64 = 1e-9;

fn config(n_threads: usize, ablation: AblationFlags) -> TdhConfig {
    TdhConfig {
        n_threads,
        ablation,
        ..Default::default()
    }
}

/// A BirthPlaces-shaped corpus with deterministic worker answers layered on
/// top (so the `ψ` accumulators and the pooled `O_w` pass are exercised)
/// and a few claim-less objects (so `k = 0` views ride through every pooled
/// phase).
fn crowd_corpus() -> Dataset {
    let mut ds = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 280,
            hierarchy_nodes: 380,
        },
        11,
    )
    .dataset;
    let idx = ObservationIndex::build(&ds);
    let candidates: Vec<Vec<_>> = idx.views().iter().map(|v| v.candidates.clone()).collect();
    let workers: Vec<WorkerId> = (0..7).map(|i| ds.intern_worker(&format!("w{i}"))).collect();
    for (oi, cands) in candidates.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        for (wi, &w) in workers.iter().enumerate() {
            if (oi + 2 * wi) % 4 == 0 {
                ds.add_answer(ObjectId(oi as u32), w, cands[(oi + wi) % cands.len()]);
            }
        }
    }
    // Claim-less objects: interned, never claimed about, never answered.
    for i in 0..5 {
        ds.intern_object(&format!("unclaimed-{i}"));
    }
    ds
}

/// Fit with `n_threads = 1` and a pooled thread count and assert the
/// equivalence contract on truths, `μ`, `φ`, `ψ` and the objective.
fn assert_pool_equivalence(ds: &Dataset, n_threads: usize, ablation: AblationFlags) {
    let mut seq = TdhModel::new(config(1, ablation));
    let mut pooled = TdhModel::new(config(n_threads, ablation));
    let est_seq = seq.fit(ds);
    let est_pool = pooled.fit(ds);

    assert_eq!(
        est_seq.truths, est_pool.truths,
        "predicted truths must be identical at {n_threads} threads under {ablation:?}"
    );
    for (oi, (a, b)) in est_seq
        .confidences
        .iter()
        .zip(&est_pool.confidences)
        .enumerate()
    {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < TOL, "μ[{oi}] diverged: {x} vs {y}");
        }
    }
    for s in 0..ds.n_sources() {
        let (a, b) = (seq.phi(SourceId(s as u32)), pooled.phi(SourceId(s as u32)));
        for t in 0..3 {
            assert!((a[t] - b[t]).abs() < TOL, "φ[{s}] diverged: {a:?} vs {b:?}");
        }
    }
    for w in 0..ds.n_workers() {
        let (a, b) = (seq.psi(WorkerId(w as u32)), pooled.psi(WorkerId(w as u32)));
        for t in 0..3 {
            assert!((a[t] - b[t]).abs() < TOL, "ψ[{w}] diverged: {a:?} vs {b:?}");
        }
    }
    let ra = seq.fit_report().unwrap();
    let rb = pooled.fit_report().unwrap();
    assert_eq!(ra.iterations, rb.iterations, "iteration counts must agree");
    let (oa, ob) = (ra.objective.unwrap(), rb.objective.unwrap());
    assert!(
        (oa - ob).abs() / oa.abs().max(1.0) < TOL,
        "objective diverged: {oa} vs {ob}"
    );
}

#[test]
fn categorical_full_model_pool_equivalence() {
    let ds = crowd_corpus();
    for n_threads in [2, 4, 8] {
        assert_pool_equivalence(&ds, n_threads, AblationFlags::default());
    }
}

#[test]
fn ablation_configs_pool_equivalence() {
    let ds = crowd_corpus();
    for (hierarchy_aware, worker_popularity) in [(false, true), (true, false), (false, false)] {
        assert_pool_equivalence(
            &ds,
            4,
            AblationFlags {
                hierarchy_aware,
                worker_popularity,
            },
        );
    }
}

#[test]
fn oversubscribed_pool_equivalence() {
    // Far more workers than chunks of useful work: the pool clamps chunk
    // counts, idles the excess threads, never panics, and still agrees.
    assert_pool_equivalence(&crowd_corpus(), 64, AblationFlags::default());
}

#[test]
fn pooled_fits_are_bitwise_deterministic_across_repeats() {
    let ds = crowd_corpus();
    for n_threads in [3, 4] {
        let run = || {
            let mut model = TdhModel::new(config(n_threads, AblationFlags::default()));
            let est = model.fit(&ds);
            (est, model.fit_report().unwrap().clone())
        };
        let (est1, rep1) = run();
        let (est2, rep2) = run();
        // Bitwise equality, not tolerance: fixed chunk boundaries, fixed
        // round-robin dispatch and a fixed merge order leave the pool no
        // room for scheduling nondeterminism.
        assert_eq!(
            est1, est2,
            "{n_threads}-thread estimates must be bitwise equal"
        );
        assert_eq!(
            rep1, rep2,
            "{n_threads}-thread reports must be bitwise equal"
        );
    }
}

#[test]
fn numeric_pipeline_pool_equivalence() {
    let mut ds = NumericDataset::new(40, 5);
    for i in 0..40u32 {
        let truth = 200.0 + f64::from(i) + 0.25;
        ds.set_gold(ObjectId(i), truth);
        ds.add_claim(ObjectId(i), SourceId(0), truth);
        ds.add_claim(ObjectId(i), SourceId(1), truth);
        // A rounder and two differently-wrong sources.
        ds.add_claim(ObjectId(i), SourceId(2), 200.0 + f64::from(i));
        ds.add_claim(ObjectId(i), SourceId(3), f64::from(i * 11 + 5));
        ds.add_claim(ObjectId(i), SourceId(4), 2.0e7 + f64::from(i));
    }
    let mut seq_model = NumericTdh::new(config(1, AblationFlags::default()));
    let mut pool_model = NumericTdh::new(config(4, AblationFlags::default()));
    let seq = seq_model.infer(&ds);
    let pooled = pool_model.infer(&ds);
    assert_eq!(seq, pooled, "numeric truths must be identical");
    assert!(seq.iter().all(Option::is_some));
}

#[test]
fn empty_dataset_never_panics_on_a_pool() {
    // Regression: chunk_ranges(0, t) is empty, so every pooled phase must
    // submit zero jobs and return cleanly — no panic, no deadlock — for the
    // in-caller path and real pools alike.
    for n_threads in [1, 2, 4, 16] {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let mut model = TdhModel::new(config(n_threads, AblationFlags::default()));
        let est = model.fit(&ds);
        assert!(est.truths.is_empty(), "{n_threads} threads");
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.objective, Some(0.0));
        assert!(rep.monotone);
    }
}

#[test]
fn pooled_fit_reports_per_phase_timings() {
    let ds = crowd_corpus();
    let mut model = TdhModel::new(config(4, AblationFlags::default()));
    model.fit(&ds);
    let t = model.phase_timings().expect("fit records phase timings");
    assert!(
        t.e_step > std::time::Duration::ZERO,
        "E-step time must accumulate across iterations"
    );
    assert!(
        t.index_build > std::time::Duration::ZERO,
        "fit() times the index build"
    );
}
