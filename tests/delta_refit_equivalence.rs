//! Pins the incremental delta refit (`TdhModel::fit_delta`) against the
//! full EM path it approximates:
//!
//! * identical predicted truths and 1e-6 parameter agreement on touched
//!   objects / implicated entities versus a warm full refit,
//! * bit-identical frozen state on untouched objects,
//! * a rejected delta leaves the model untouched, so the fallback full fit
//!   reproduces the never-attempted full fit exactly,
//! * drift debt accumulates across accepted refits and resets on full fits.

use tdh::core::{DeltaRejected, TdhConfig, TdhModel, TruthDiscovery};
use tdh::data::{Dataset, DeltaSet, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh::hierarchy::HierarchyBuilder;

/// Two reliable sources, a generalizer, an adversary and one worker over 40
/// objects — strong enough signal that EM converges hard and decisively.
fn corpus() -> Dataset {
    let mut b = HierarchyBuilder::new();
    for c in 0..6 {
        for r in 0..4 {
            for city in 0..4 {
                b.add_path(&[
                    &format!("C{c}"),
                    &format!("C{c}R{r}"),
                    &format!("C{c}R{r}T{city}"),
                ]);
            }
        }
    }
    let mut ds = Dataset::new(b.build());
    let good1 = ds.intern_source("good1");
    let good2 = ds.intern_source("good2");
    let generalizer = ds.intern_source("generalizer");
    let liar = ds.intern_source("liar");
    let w0 = ds.intern_worker("w0");
    for i in 0..1000 {
        let o = ds.intern_object(&format!("o{i}"));
        let (c, r, city) = (i % 6, i % 4, i % 4);
        let h = ds.hierarchy();
        let truth = h.node_by_name(&format!("C{c}R{r}T{city}")).unwrap();
        let region = h.node_by_name(&format!("C{c}R{r}")).unwrap();
        let wrong = h
            .node_by_name(&format!("C{}R{}T{}", (c + 1) % 6, r, city))
            .unwrap();
        ds.set_gold(o, truth);
        ds.add_record(o, good1, truth);
        ds.add_record(o, good2, truth);
        ds.add_record(o, generalizer, region);
        ds.add_record(o, liar, wrong);
        if i % 3 == 0 {
            ds.add_answer(o, w0, truth);
        }
    }
    ds
}

/// Tightly-converging sequential config so fixed points are pinned well
/// below the comparison tolerance.
fn cfg() -> TdhConfig {
    TdhConfig {
        tol: 1e-12,
        max_iters: 2000,
        n_threads: 1,
        ..TdhConfig::default()
    }
}

/// Append a small batch re-claiming existing candidate values on o0/o1 and
/// return its delta.
fn append_small_batch(ds: &mut Dataset, idx: &mut ObservationIndex) -> tdh::data::DeltaSet {
    let n_rec = ds.records().len();
    let n_ans = ds.answers().len();
    let t0 = ds.hierarchy().node_by_name("C0R0T0").unwrap();
    let t1 = ds.hierarchy().node_by_name("C1R1T1").unwrap();
    ds.add_record(ObjectId(0), SourceId(0), t0);
    ds.add_record(ObjectId(1), SourceId(1), t1);
    ds.add_answer(ObjectId(0), WorkerId(0), t0);
    idx.append_from(ds, n_rec, n_ans)
}

#[test]
fn delta_refit_matches_a_full_refit() {
    let mut ds = corpus();
    let mut idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(cfg());
    let mut est = model.infer(&ds, &idx);
    let frozen_mu = model.mu_table().to_vec();

    let delta = append_small_batch(&mut ds, &mut idx);
    assert_eq!(delta.objects().len(), 2);

    let mut full = model.clone();
    let report = model
        .fit_delta(&ds, &idx, &delta, 1.0)
        .expect("small delta within budget");
    assert!(report.converged, "delta EM must converge: {report:?}");
    assert_eq!(report.touched_objects, 2);
    assert!((report.touched_frac - 2.0 / 1000.0).abs() < 1e-12);
    model.patch_estimate(&idx, &delta, &mut est);

    let full_est = full.infer(&ds, &idx);

    // Identical truths everywhere; 1e-6 parameter agreement on the delta.
    assert_eq!(est.truths, full_est.truths);
    for t in delta.objects() {
        let oi = t.object.index();
        let (a, b) = (&model.mu_table()[oi], &full.mu_table()[oi]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-6, "object {oi}: μ {x} vs full {y}");
        }
    }
    // Implicated entity parameters: the delta refit freezes the entities'
    // *other* objects, whose posteriors a full refit nudges slightly, so the
    // agreement bound scales with the entity's frozen claim mass (1e-5 here;
    // the touched-object posteriors above stay within 1e-6).
    for &s in delta.sources() {
        let (a, b) = (model.phi(s), full.phi(s));
        for t in 0..3 {
            assert!((a[t] - b[t]).abs() < 1e-5, "source {s:?}: φ {a:?} vs {b:?}");
        }
    }
    for &w in delta.workers() {
        let (a, b) = (model.psi(w), full.psi(w));
        for t in 0..3 {
            assert!((a[t] - b[t]).abs() < 1e-5, "worker {w:?}: ψ {a:?} vs {b:?}");
        }
    }

    // Untouched objects keep their pre-delta posterior bit for bit.
    for (oi, frozen) in frozen_mu.iter().enumerate() {
        if delta.contains_object(ObjectId::from_index(oi)) {
            continue;
        }
        assert_eq!(&model.mu_table()[oi], frozen, "object {oi} must be frozen");
    }

    // The incremental-posterior caches (`N_{o,v}`, `D_o`) stay usable after
    // a delta refit: Eq. 16–18 posteriors agree with the full refit's (the
    // bound follows the ψ agreement above — the posterior reads ψ directly).
    use tdh::core::ProbabilisticCrowdModel;
    for t in delta.objects() {
        let o = t.object;
        for c in 0..idx.view(o).n_candidates() as u32 {
            let a = model.posterior_given_answer(&idx, o, WorkerId(0), c);
            let b = full.posterior_given_answer(&idx, o, WorkerId(0), c);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-5, "object {o:?}: posterior {x} vs {y}");
            }
        }
    }
}

#[test]
fn rejected_delta_leaves_the_model_untouched() {
    let mut ds = corpus();
    let mut idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(cfg());
    model.infer(&ds, &idx);

    let delta = append_small_batch(&mut ds, &mut idx);
    let before = model.clone();
    let err = model.fit_delta(&ds, &idx, &delta, 0.0).unwrap_err();
    assert!(matches!(err, DeltaRejected::DriftExceeded { .. }), "{err}");

    assert_eq!(model.mu_table(), before.mu_table());
    assert_eq!(model.phi_table(), before.phi_table());
    assert_eq!(model.psi_table(), before.psi_table());

    // The fallback full fit reproduces the never-attempted full fit exactly.
    let mut untouched = before;
    let a = model.infer(&ds, &idx);
    let b = untouched.infer(&ds, &idx);
    assert_eq!(a, b);
    assert_eq!(model.fit_report(), untouched.fit_report());
    assert_eq!(model.mu_table(), untouched.mu_table());
    assert_eq!(model.phi_table(), untouched.phi_table());
}

#[test]
fn delta_refit_rejection_reasons() {
    let mut ds = corpus();
    let mut idx = ObservationIndex::build(&ds);
    let mut warm = TdhModel::new(cfg());
    warm.infer(&ds, &idx);
    let mut nowarm = TdhModel::new(TdhConfig {
        warm_start: false,
        ..cfg()
    });
    nowarm.infer(&ds, &idx);

    let delta = append_small_batch(&mut ds, &mut idx);

    // Never fitted: nothing to patch.
    let mut cold = TdhModel::new(cfg());
    assert_eq!(
        cold.fit_delta(&ds, &idx, &delta, 1.0).unwrap_err(),
        DeltaRejected::NoBaseline
    );
    // Warm starts off: the model deliberately forgets its history.
    assert_eq!(
        nowarm.fit_delta(&ds, &idx, &delta, 1.0).unwrap_err(),
        DeltaRejected::WarmStartDisabled
    );
    // An empty delta is a no-op even under a zero budget.
    let r = warm.fit_delta(&ds, &idx, &DeltaSet::new(), 0.0).unwrap();
    assert_eq!(r.touched_objects, 0);
    assert_eq!(r.iterations, 0);
    assert_eq!(r.debt, 0.0);
}

#[test]
fn drift_debt_accumulates_and_full_fits_reset_it() {
    let mut ds = corpus();
    let mut idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(cfg());
    model.infer(&ds, &idx);
    assert_eq!(model.delta_debt(), 0.0);

    let delta = append_small_batch(&mut ds, &mut idx);
    let r1 = model.fit_delta(&ds, &idx, &delta, 1.0).unwrap();
    assert!(r1.debt > 0.0);
    assert_eq!(model.delta_debt(), r1.debt);

    // A second batch on fresh objects: debt adds up.
    let n_rec = ds.records().len();
    let t2 = ds.hierarchy().node_by_name("C2R2T2").unwrap();
    ds.add_record(ObjectId(2), SourceId(0), t2);
    let d2 = idx.append_from(&ds, n_rec, ds.answers().len());
    let r2 = model.fit_delta(&ds, &idx, &d2, 1.0).unwrap();
    assert!(r2.debt > r1.debt);

    // Exhaust the budget: the next refit is refused with the would-be debt.
    let n_rec = ds.records().len();
    ds.add_record(
        ObjectId(3),
        SourceId(0),
        ds.hierarchy().node_by_name("C3R3T3").unwrap(),
    );
    let d3 = idx.append_from(&ds, n_rec, ds.answers().len());
    match model.fit_delta(&ds, &idx, &d3, r2.debt) {
        Err(DeltaRejected::DriftExceeded { debt }) => assert!(debt > r2.debt),
        other => panic!("expected DriftExceeded, got {other:?}"),
    }

    // A full fit clears the ledger.
    model.infer(&ds, &idx);
    assert_eq!(model.delta_debt(), 0.0);
    // …and the refused delta now fits in any budget again.
    // (Its claims were already absorbed by the full fit: old counts from the
    // merge snapshot still mark it touched, which is safe — just more work.)
    assert!(model.fit_delta(&ds, &idx, &d3, 1.0).is_ok());
}

#[test]
fn delta_refit_handles_new_candidates_and_new_objects() {
    let mut ds = corpus();
    let mut idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(cfg());
    let mut est = model.infer(&ds, &idx);

    // A batch that inserts a brand-new candidate on o0 *and* a brand-new
    // object with three claims.
    let n_rec = ds.records().len();
    let n_ans = ds.answers().len();
    let stray = ds.hierarchy().node_by_name("C3R3T3").unwrap();
    let truth = ds.hierarchy().node_by_name("C2R2T2").unwrap();
    let wrong = ds.hierarchy().node_by_name("C4R2T2").unwrap();
    ds.add_record(ObjectId(0), SourceId(3), stray);
    let fresh = ds.intern_object("fresh");
    ds.add_record(fresh, SourceId(0), truth);
    ds.add_record(fresh, SourceId(1), truth);
    ds.add_record(fresh, SourceId(3), wrong);
    let delta = idx.append_from(&ds, n_rec, n_ans);
    assert_eq!(delta.objects().len(), 2);

    let mut full = model.clone();
    model
        .fit_delta(&ds, &idx, &delta, 1.0)
        .expect("delta accepted");
    model.patch_estimate(&idx, &delta, &mut est);
    let full_est = full.infer(&ds, &idx);

    assert_eq!(est.truths.len(), 1001, "estimate grew to the new universe");
    assert_eq!(est.truths, full_est.truths);
    assert_eq!(est.truths[fresh.index()], Some(truth));
    for t in delta.objects() {
        let oi = t.object.index();
        for (x, y) in model.mu_table()[oi].iter().zip(&full.mu_table()[oi]) {
            assert!((x - y).abs() < 1e-6, "object {oi}: μ {x} vs full {y}");
        }
    }
}
