//! Sequential-vs-sharded equivalence of TDH inference.
//!
//! The contract of `TdhConfig::n_threads` (see `tdh::core::par`): any thread
//! count predicts exactly the truths the sequential path predicts, with
//! `φ`/`ψ`/`μ` and the objective equal within FP-summation tolerance, and
//! repeated sharded runs bit-identical to each other.

use tdh::core::numeric::NumericTdh;
use tdh::core::{AblationFlags, TdhConfig, TdhModel, TruthDiscovery};
use tdh::data::{Dataset, NumericDataset, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};

/// FP-summation tolerance for parameters and objective (the truths must
/// match exactly).
const TOL: f64 = 1e-9;

fn config(n_threads: usize, ablation: AblationFlags) -> TdhConfig {
    TdhConfig {
        n_threads,
        ablation,
        ..Default::default()
    }
}

/// A BirthPlaces-shaped corpus with deterministic worker answers layered on
/// top, so the `ψ` accumulators are exercised too.
fn crowd_corpus() -> Dataset {
    let mut ds = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 300,
            hierarchy_nodes: 400,
        },
        7,
    )
    .dataset;
    let idx = ObservationIndex::build(&ds);
    let candidates: Vec<Vec<_>> = idx.views().iter().map(|v| v.candidates.clone()).collect();
    let workers: Vec<WorkerId> = (0..6).map(|i| ds.intern_worker(&format!("w{i}"))).collect();
    for (oi, cands) in candidates.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        for (wi, &w) in workers.iter().enumerate() {
            if (oi + wi) % 3 == 0 {
                ds.add_answer(ObjectId(oi as u32), w, cands[(oi + wi) % cands.len()]);
            }
        }
    }
    ds
}

/// Fit with `n_threads = 1` and `n_threads = 4` and assert the equivalence
/// contract on truths, `μ`, `φ`, `ψ` and the objective.
fn assert_sharded_equivalence(ds: &Dataset, ablation: AblationFlags) {
    let idx = ObservationIndex::build(ds);
    let mut seq = TdhModel::new(config(1, ablation));
    let mut par = TdhModel::new(config(4, ablation));
    let est_seq = seq.infer(ds, &idx);
    let est_par = par.infer(ds, &idx);

    assert_eq!(
        est_seq.truths, est_par.truths,
        "predicted truths must be identical under {ablation:?}"
    );
    for (oi, (a, b)) in est_seq
        .confidences
        .iter()
        .zip(&est_par.confidences)
        .enumerate()
    {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < TOL, "μ[{oi}] diverged: {x} vs {y}");
        }
    }
    for s in 0..ds.n_sources() {
        let (a, b) = (seq.phi(SourceId(s as u32)), par.phi(SourceId(s as u32)));
        for t in 0..3 {
            assert!((a[t] - b[t]).abs() < TOL, "φ[{s}] diverged: {a:?} vs {b:?}");
        }
    }
    for w in 0..ds.n_workers() {
        let (a, b) = (seq.psi(WorkerId(w as u32)), par.psi(WorkerId(w as u32)));
        for t in 0..3 {
            assert!((a[t] - b[t]).abs() < TOL, "ψ[{w}] diverged: {a:?} vs {b:?}");
        }
    }
    let oa = seq.fit_report().unwrap().objective.unwrap();
    let ob = par.fit_report().unwrap().objective.unwrap();
    assert!(
        (oa - ob).abs() / oa.abs().max(1.0) < TOL,
        "objective diverged: {oa} vs {ob}"
    );
}

#[test]
fn categorical_full_model_equivalence() {
    assert_sharded_equivalence(&crowd_corpus(), AblationFlags::default());
}

#[test]
fn ablation_configs_equivalence() {
    let ds = crowd_corpus();
    for (hierarchy_aware, worker_popularity) in [(false, true), (true, false), (false, false)] {
        assert_sharded_equivalence(
            &ds,
            AblationFlags {
                hierarchy_aware,
                worker_popularity,
            },
        );
    }
}

#[test]
fn oversubscribed_thread_count_equivalence() {
    // More threads than a sensible machine (and than some candidate sets):
    // the executor clamps chunk counts, never panics, and still agrees.
    let ds = crowd_corpus();
    let idx = ObservationIndex::build(&ds);
    let mut seq = TdhModel::new(config(1, AblationFlags::default()));
    let mut wide = TdhModel::new(config(64, AblationFlags::default()));
    let a = seq.infer(&ds, &idx);
    let b = wide.infer(&ds, &idx);
    assert_eq!(a.truths, b.truths);
}

#[test]
fn sharded_runs_are_deterministic_across_repeats() {
    let ds = crowd_corpus();
    let idx = ObservationIndex::build(&ds);
    let run = || {
        let mut model = TdhModel::new(config(4, AblationFlags::default()));
        let est = model.infer(&ds, &idx);
        (est, model.fit_report().unwrap().clone())
    };
    let (est1, rep1) = run();
    let (est2, rep2) = run();
    // Bitwise equality: fixed chunk boundaries + fixed merge order leave no
    // room for scheduling nondeterminism.
    assert_eq!(est1, est2);
    assert_eq!(rep1, rep2);
}

#[test]
fn numeric_pipeline_equivalence() {
    let mut ds = NumericDataset::new(30, 5);
    for i in 0..30u32 {
        let truth = 100.0 + f64::from(i) + 0.125;
        ds.set_gold(ObjectId(i), truth);
        ds.add_claim(ObjectId(i), SourceId(0), truth);
        ds.add_claim(ObjectId(i), SourceId(1), truth);
        // A rounder and two differently-wrong sources.
        ds.add_claim(ObjectId(i), SourceId(2), 100.0 + f64::from(i));
        ds.add_claim(ObjectId(i), SourceId(3), f64::from(i * 7 + 3));
        ds.add_claim(ObjectId(i), SourceId(4), 1.0e6 + f64::from(i));
    }
    let mut seq_model = NumericTdh::new(config(1, AblationFlags::default()));
    let mut par_model = NumericTdh::new(config(4, AblationFlags::default()));
    let seq = seq_model.infer(&ds);
    let par = par_model.infer(&ds);
    assert_eq!(seq, par, "numeric truths must be identical");
    assert!(seq.iter().all(Option::is_some));
}
