//! Integration tests for the full crowdsourced truth-discovery loop
//! (Fig. 2): inference ⇄ assignment ⇄ simulated workers.

use tdh::baselines::{MeAssigner, Qasca};
use tdh::core::{EaiAssigner, TaskAssigner, TdhConfig, TdhModel};
use tdh::crowd::{run_simulation, SimulationConfig, UniformAdapter, WorkerPool};
use tdh::data::Dataset;
use tdh::datagen::{generate_heritages, HeritagesConfig};

fn corpus(seed: u64) -> Dataset {
    generate_heritages(
        &HeritagesConfig {
            n_objects: 250,
            n_sources: 500,
            n_claims: 1_400,
            hierarchy_nodes: 450,
        },
        seed,
    )
    .dataset
}

fn campaign(
    seed: u64,
    assigner: &mut dyn TaskAssigner,
    rounds: usize,
) -> tdh::crowd::SimulationResult {
    let mut ds = corpus(seed);
    let mut pool = WorkerPool::uniform(&mut ds, 10, 0.75, seed);
    let mut model = TdhModel::new(TdhConfig::default());
    run_simulation(
        &mut ds,
        &mut model,
        assigner,
        &mut pool,
        &SimulationConfig {
            rounds,
            tasks_per_worker: 5,
            ..Default::default()
        },
    )
}

#[test]
fn crowdsourcing_improves_accuracy_for_all_assigners() {
    for (name, mut assigner) in [
        ("EAI", Box::new(EaiAssigner::new()) as Box<dyn TaskAssigner>),
        ("QASCA", Box::new(Qasca::new(3))),
        ("ME", Box::new(MeAssigner)),
    ] {
        let result = campaign(77, assigner.as_mut(), 10);
        let first = result.rounds[0].report.accuracy;
        let last = result.final_accuracy();
        assert!(
            last > first + 0.01,
            "{name}: accuracy should climb ({first} -> {last})"
        );
    }
}

#[test]
fn answer_budget_is_respected() {
    let mut assigner = EaiAssigner::new();
    let result = campaign(78, &mut assigner, 6);
    for r in &result.rounds[..6] {
        // 10 workers × 5 tasks = at most 50 answers per round.
        assert!(
            r.answers_collected <= 50,
            "round {}: {}",
            r.round,
            r.answers_collected
        );
        assert!(
            r.answers_collected > 0,
            "round {} collected nothing",
            r.round
        );
    }
    // The final entry is the post-campaign evaluation round.
    assert_eq!(result.rounds.last().unwrap().answers_collected, 0);
}

#[test]
fn no_worker_answers_the_same_object_twice() {
    let mut ds = corpus(79);
    let mut pool = WorkerPool::uniform(&mut ds, 5, 0.75, 79);
    let mut model = TdhModel::new(TdhConfig::default());
    let mut assigner = EaiAssigner::new();
    run_simulation(
        &mut ds,
        &mut model,
        &mut assigner,
        &mut pool,
        &SimulationConfig {
            rounds: 8,
            tasks_per_worker: 5,
            ..Default::default()
        },
    );
    let mut seen = std::collections::HashSet::new();
    for a in ds.answers() {
        assert!(
            seen.insert((a.worker, a.object)),
            "duplicate answer by {:?} on {:?}",
            a.worker,
            a.object
        );
    }
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let mut a1 = EaiAssigner::new();
    let mut a2 = EaiAssigner::new();
    let r1 = campaign(80, &mut a1, 5);
    let r2 = campaign(80, &mut a2, 5);
    assert_eq!(r1.accuracy_series(), r2.accuracy_series());
}

#[test]
fn adapter_lets_plain_algorithms_join_the_loop() {
    let mut ds = corpus(81);
    let mut pool = WorkerPool::uniform(&mut ds, 10, 0.8, 81);
    let mut model = UniformAdapter::new(tdh::baselines::Vote);
    let mut assigner = MeAssigner;
    let result = run_simulation(
        &mut ds,
        &mut model,
        &mut assigner,
        &mut pool,
        &SimulationConfig {
            rounds: 8,
            tasks_per_worker: 5,
            ..Default::default()
        },
    );
    assert_eq!(result.model, "VOTE");
    assert!(result.final_accuracy() > result.rounds[0].report.accuracy);
}

#[test]
fn eai_estimates_track_actual_improvements() {
    // Fig. 7's property, as a regression test: EAI's per-round estimate is
    // within ~one percentage point of the realised improvement on average.
    // The bound is statistical, not exact — it depends on the corpus drawn
    // for this seed, and thus on the vendored StdRng's stream (see
    // vendor/README.md), which is why it carries a small margin.
    let mut assigner = EaiAssigner::new();
    let result = campaign(82, &mut assigner, 10);
    let actual = result.actual_improvements();
    let est: Vec<f64> = result.rounds[..10]
        .iter()
        .map(|r| r.estimated_improvement.expect("EAI always estimates"))
        .collect();
    let mae: f64 = actual
        .iter()
        .zip(&est)
        .map(|(a, e)| (a - e).abs())
        .sum::<f64>()
        / actual.len() as f64;
    assert!(mae < 0.015, "mean estimate error {mae} too large");
}

#[test]
fn better_workers_converge_faster() {
    let run_with = |pi_p: f64| {
        let mut ds = corpus(83);
        let mut pool = WorkerPool::uniform(&mut ds, 10, pi_p, 83);
        let mut model = TdhModel::new(TdhConfig::default());
        let mut assigner = EaiAssigner::new();
        run_simulation(
            &mut ds,
            &mut model,
            &mut assigner,
            &mut pool,
            &SimulationConfig {
                rounds: 10,
                tasks_per_worker: 5,
                ..Default::default()
            },
        )
        .final_accuracy()
    };
    let low = run_with(0.55);
    let high = run_with(0.95);
    assert!(
        high >= low,
        "π_p = 0.95 ({high}) should not lose to π_p = 0.55 ({low})"
    );
}
