//! Property-style integration tests for the evaluation metrics: ranges,
//! consistency relations and degenerate inputs.

use tdh::data::{Dataset, ObservationIndex};
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh::eval::{
    multi_truth_report, single_truth_report_with_index, source_reliability, truth_closure,
};
use tdh::hierarchy::NodeId;

fn corpus() -> tdh::datagen::Corpus {
    generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 250,
            hierarchy_nodes: 400,
        },
        17,
    )
}

#[test]
fn single_truth_metrics_stay_in_range_for_any_estimates() {
    let c = corpus();
    let ds = &c.dataset;
    let idx = ObservationIndex::build(ds);
    let h = ds.hierarchy();
    // Three degenerate estimators: always-first-candidate, always-deepest,
    // always-shallowest.
    let estimators: Vec<Box<dyn Fn(&tdh::data::ObjectView) -> Option<NodeId>>> = vec![
        Box::new(|v| v.candidates.first().copied()),
        Box::new(move |v| v.candidates.iter().copied().max_by_key(|&x| h.depth(x))),
        Box::new(move |v| v.candidates.iter().copied().min_by_key(|&x| h.depth(x))),
    ];
    for est in estimators {
        let truths: Vec<Option<NodeId>> = ds.objects().map(|o| est(idx.view(o))).collect();
        let r = single_truth_report_with_index(ds, &idx, &truths);
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!((0.0..=1.0).contains(&r.gen_accuracy));
        assert!(r.gen_accuracy >= r.accuracy, "gen-accuracy dominates");
        assert!(r.avg_distance >= 0.0);
        assert!(r.avg_distance <= 2.0 * f64::from(ds.hierarchy().height()));
        assert_eq!(r.n_evaluated + r.n_skipped, ds.n_objects());
    }
}

#[test]
fn gen_accuracy_equals_accuracy_plus_strict_generalizations() {
    let c = corpus();
    let ds = &c.dataset;
    let idx = ObservationIndex::build(ds);
    let h = ds.hierarchy();
    // Estimate = parent of the gold when it is a candidate, else the gold.
    let truths: Vec<Option<NodeId>> = ds
        .objects()
        .map(|o| {
            let gold = ds.gold(o)?;
            let view = idx.view(o);
            let parent = h.parent(gold);
            if view.cand_index(parent).is_some() {
                Some(parent)
            } else if view.cand_index(gold).is_some() {
                Some(gold)
            } else {
                None
            }
        })
        .collect();
    let r = single_truth_report_with_index(ds, &idx, &truths);
    // Every evaluated estimate is either exact or a strict ancestor, so
    // GenAccuracy must account for all evaluated objects... except the
    // mapped-gold corner where the mapped target is itself an ancestor of
    // the estimate. Verify the dominance relation and a reasonable floor.
    assert!(r.gen_accuracy >= r.accuracy);
    assert!(r.gen_accuracy > 0.5);
}

#[test]
fn multi_truth_perfect_closures_score_one() {
    let c = corpus();
    let ds = &c.dataset;
    let h = ds.hierarchy();
    let sets: Vec<Vec<NodeId>> = ds
        .objects()
        .map(|o| ds.gold(o).map(|g| truth_closure(h, g)).unwrap_or_default())
        .collect();
    let r = multi_truth_report(ds, &sets);
    assert!((r.precision - 1.0).abs() < 1e-12);
    assert!((r.recall - 1.0).abs() < 1e-12);
    assert!((r.f1 - 1.0).abs() < 1e-12);
}

#[test]
fn multi_truth_monotone_in_set_growth() {
    // Adding a wrong value can only lower precision and never lowers
    // recall; adding a missing gold value never lowers either.
    let c = corpus();
    let ds = &c.dataset;
    let h = ds.hierarchy();
    let gold_sets: Vec<Vec<NodeId>> = ds
        .objects()
        .map(|o| ds.gold(o).map(|g| truth_closure(h, g)).unwrap_or_default())
        .collect();
    // Start from half the closure.
    let halves: Vec<Vec<NodeId>> = gold_sets
        .iter()
        .map(|s| s.iter().copied().take(s.len().div_ceil(2)).collect())
        .collect();
    let base = multi_truth_report(ds, &halves);

    let fulls = multi_truth_report(ds, &gold_sets);
    assert!(fulls.recall >= base.recall);
    assert!(fulls.f1 >= base.f1);

    // Pollute every set with an off-path value.
    let decoy = h
        .nodes()
        .find(|&v| v != NodeId::ROOT && h.is_leaf(v))
        .unwrap();
    let polluted: Vec<Vec<NodeId>> = gold_sets
        .iter()
        .map(|s| {
            let mut s = s.clone();
            if !s.contains(&decoy) {
                s.push(decoy);
            }
            s
        })
        .collect();
    let dirty = multi_truth_report(ds, &polluted);
    assert!(dirty.precision <= fulls.precision);
    assert!(dirty.recall >= fulls.recall - 1e-12);
}

#[test]
fn source_reliability_is_consistent_with_claim_counts() {
    let c = corpus();
    let ds = &c.dataset;
    let idx = ObservationIndex::build(ds);
    let rel = source_reliability(ds, &idx);
    assert_eq!(rel.len(), ds.n_sources());
    let total: usize = rel.iter().map(|r| r.n_claims).sum();
    // Every record's object is gold-labelled in the generated corpora.
    assert_eq!(total, ds.records().len());
    for r in &rel {
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!(r.gen_accuracy >= r.accuracy);
    }
}

#[test]
fn empty_dataset_metrics_are_safe() {
    let ds = Dataset::new(tdh::hierarchy::HierarchyBuilder::new().build());
    let idx = ObservationIndex::build(&ds);
    let r = single_truth_report_with_index(&ds, &idx, &[]);
    assert_eq!(r.n_evaluated, 0);
    assert_eq!(r.accuracy, 0.0);
    let m = multi_truth_report(&ds, &[]);
    assert_eq!(m.f1, 0.0);
}
