//! End-to-end integration tests: full pipelines over generated corpora,
//! exercising the public API exactly as the examples do.

use tdh::baselines::{Accu, Asums, Crh, Docs, Lca, Lfc, Mdc, PopAccu, Vote};
use tdh::core::{TdhConfig, TdhModel, TruthDiscovery};
use tdh::data::ObservationIndex;
use tdh::datagen::{generate_birthplaces, generate_heritages, BirthPlacesConfig, HeritagesConfig};
use tdh::eval::{single_truth_report_with_index, SingleTruthReport};

fn birthplaces() -> tdh::datagen::Corpus {
    generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 800,
            hierarchy_nodes: 1_000,
        },
        2024,
    )
}

fn heritages() -> tdh::datagen::Corpus {
    generate_heritages(
        &HeritagesConfig {
            n_objects: 300,
            n_sources: 600,
            n_claims: 1_700,
            hierarchy_nodes: 500,
        },
        2025,
    )
}

fn run(algo: &mut dyn TruthDiscovery, corpus: &tdh::datagen::Corpus) -> SingleTruthReport {
    let idx = ObservationIndex::build(&corpus.dataset);
    let est = algo.infer(&corpus.dataset, &idx);
    single_truth_report_with_index(&corpus.dataset, &idx, &est.truths)
}

#[test]
fn tdh_beats_every_baseline_on_accuracy_birthplaces() {
    let corpus = birthplaces();
    let tdh = run(&mut TdhModel::new(TdhConfig::default()), &corpus);
    assert!(tdh.accuracy > 0.85, "TDH accuracy {}", tdh.accuracy);

    let mut baselines: Vec<Box<dyn TruthDiscovery>> = vec![
        Box::new(Vote),
        Box::new(Lca::default()),
        Box::new(Docs::default()),
        Box::new(Asums::default()),
        Box::new(Mdc::default()),
        Box::new(Accu::default()),
        Box::new(PopAccu::default()),
        Box::new(Lfc::default()),
        Box::new(Crh::default()),
    ];
    for algo in &mut baselines {
        let r = run(algo.as_mut(), &corpus);
        assert!(
            tdh.accuracy >= r.accuracy,
            "{} accuracy {} beat TDH's {}",
            algo.name(),
            r.accuracy,
            tdh.accuracy
        );
    }
}

#[test]
fn tdh_has_lowest_avg_distance_on_both_corpora() {
    for corpus in [birthplaces(), heritages()] {
        let tdh = run(&mut TdhModel::new(TdhConfig::default()), &corpus);
        for algo in [
            Box::new(Vote) as Box<dyn TruthDiscovery>,
            Box::new(Lca::default()),
            Box::new(Asums::default()),
        ]
        .iter_mut()
        {
            let r = run(algo.as_mut(), &corpus);
            assert!(
                tdh.avg_distance <= r.avg_distance + 1e-9,
                "[{}] {} distance {} below TDH's {}",
                corpus.name,
                algo.name(),
                r.avg_distance,
                tdh.avg_distance
            );
        }
    }
}

#[test]
fn vote_trades_accuracy_for_gen_accuracy() {
    // The paper's Table 3 signature: VOTE picks generalized values, so its
    // GenAccuracy is near the top while its Accuracy is near the bottom.
    let corpus = birthplaces();
    let tdh = run(&mut TdhModel::new(TdhConfig::default()), &corpus);
    let vote = run(&mut Vote, &corpus);
    assert!(tdh.accuracy > vote.accuracy + 0.05);
    assert!(
        vote.gen_accuracy > vote.accuracy + 0.1,
        "VOTE's generalization gap: {} vs {}",
        vote.gen_accuracy,
        vote.accuracy
    );
}

#[test]
fn every_estimate_is_a_candidate_value() {
    let corpus = heritages();
    let idx = ObservationIndex::build(&corpus.dataset);
    let mut algos: Vec<Box<dyn TruthDiscovery>> = vec![
        Box::new(TdhModel::new(TdhConfig::default())),
        Box::new(Vote),
        Box::new(Lca::default()),
        Box::new(Docs::default()),
        Box::new(Asums::default()),
        Box::new(Mdc::default()),
        Box::new(Accu::default()),
        Box::new(PopAccu::default()),
        Box::new(Lfc::default()),
        Box::new(Crh::default()),
    ];
    for algo in &mut algos {
        let est = algo.infer(&corpus.dataset, &idx);
        assert_eq!(est.truths.len(), corpus.dataset.n_objects());
        assert_eq!(est.confidences.len(), corpus.dataset.n_objects());
        for o in corpus.dataset.objects() {
            let view = idx.view(o);
            if let Some(t) = est.truths[o.index()] {
                assert!(
                    view.cand_index(t).is_some(),
                    "{}: estimate for {o:?} is not a candidate",
                    algo.name()
                );
            } else {
                assert!(view.candidates.is_empty());
            }
            // Confidences align with candidates and are normalised.
            let conf = &est.confidences[o.index()];
            assert_eq!(conf.len(), view.candidates.len(), "{}", algo.name());
            if !conf.is_empty() {
                let s: f64 = conf.iter().sum();
                assert!(
                    (s - 1.0).abs() < 1e-6,
                    "{}: confidence sums to {s}",
                    algo.name()
                );
                assert!(conf.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
            }
        }
    }
}

#[test]
fn inference_is_deterministic() {
    let corpus = heritages();
    let idx = ObservationIndex::build(&corpus.dataset);
    let a = TdhModel::new(TdhConfig::default()).fit(&corpus.dataset);
    let b = TdhModel::new(TdhConfig::default()).fit(&corpus.dataset);
    assert_eq!(a.truths, b.truths);
    let l1 = Lca::default().infer(&corpus.dataset, &idx);
    let l2 = Lca::default().infer(&corpus.dataset, &idx);
    assert_eq!(l1.truths, l2.truths);
}

#[test]
fn tsv_roundtrip_preserves_inference_results() {
    let corpus = heritages();
    let (records, answers, gold) = tdh::data::io::to_tsv(&corpus.dataset);
    let reloaded = tdh::data::io::parse_dataset(&tdh::data::io::TextInputs {
        records: &records,
        answers: Some(&answers),
        gold: Some(&gold),
    })
    .expect("roundtrip parses");
    let orig = run(&mut TdhModel::new(TdhConfig::default()), &corpus);
    let idx = ObservationIndex::build(&reloaded);
    let est = TdhModel::new(TdhConfig::default()).fit(&reloaded);
    let re = single_truth_report_with_index(&reloaded, &idx, &est.truths);
    // Node ids are renumbered by the roundtrip, which permutes candidate
    // order and hence argmax tie-breaking on near-ties — results must agree
    // semantically, not bit-exactly.
    assert_eq!(orig.n_evaluated, re.n_evaluated);
    assert!(
        (orig.accuracy - re.accuracy).abs() < 0.01,
        "{} vs {}",
        orig.accuracy,
        re.accuracy
    );
    assert!((orig.avg_distance - re.avg_distance).abs() < 0.05);
}

#[test]
fn hierarchy_ablation_hurts_accuracy() {
    let corpus = birthplaces();
    let full = run(&mut TdhModel::new(TdhConfig::default()), &corpus);
    let ablated = run(
        &mut TdhModel::new(TdhConfig {
            ablation: tdh::core::AblationFlags {
                hierarchy_aware: false,
                worker_popularity: true,
            },
            ..Default::default()
        }),
        &corpus,
    );
    assert!(
        full.accuracy > ablated.accuracy,
        "hierarchy awareness must help: {} vs {}",
        full.accuracy,
        ablated.accuracy
    );
}
