//! Property-based integration tests over random mini-corpora: model
//! invariants that must hold for *any* input, not just the calibrated
//! generators.

use proptest::prelude::*;
use tdh::core::ProbabilisticCrowdModel;
use tdh::core::{eai, ueai, TdhConfig, TdhModel, TruthDiscovery};
use tdh::data::{Dataset, ObservationIndex, WorkerId};
use tdh::hierarchy::{HierarchyBuilder, NodeId};

/// A random mini truth-discovery problem: a small random tree, a handful of
/// objects/sources/workers, random records and answers.
#[derive(Debug, Clone)]
struct MiniCorpus {
    ds: Dataset,
}

fn mini_corpus() -> impl Strategy<Value = MiniCorpus> {
    (
        // Tree shape: parents for up to 14 nodes.
        proptest::collection::vec(0usize..1_000, 4..14),
        // Records: (object, source, node-pick).
        proptest::collection::vec((0usize..6, 0usize..5, 0usize..1_000), 4..40),
        // Answers: (object, worker, node-pick).
        proptest::collection::vec((0usize..6, 0usize..4, 0usize..1_000), 0..20),
    )
        .prop_map(|(parents, records, answers)| {
            let mut b = HierarchyBuilder::new();
            let mut ids = vec![NodeId::ROOT];
            for (i, &p) in parents.iter().enumerate() {
                let parent = ids[p % ids.len()];
                ids.push(b.add_child(parent, &format!("n{i}")).unwrap());
            }
            let nodes: Vec<NodeId> = ids.into_iter().filter(|&v| v != NodeId::ROOT).collect();
            let mut ds = Dataset::new(b.build());
            let objects: Vec<_> = (0..6).map(|i| ds.intern_object(&format!("o{i}"))).collect();
            let sources: Vec<_> = (0..5).map(|i| ds.intern_source(&format!("s{i}"))).collect();
            let workers: Vec<_> = (0..4).map(|i| ds.intern_worker(&format!("w{i}"))).collect();
            for (o, s, pick) in &records {
                let v = nodes[pick % nodes.len()];
                ds.add_record(objects[*o], sources[*s], v);
            }
            // Answers must select candidate values; route each answer pick
            // through the object's candidate set (skip uncovered objects).
            let idx = ObservationIndex::build(&ds);
            for (o, w, pick) in &answers {
                let view = idx.view(objects[*o]);
                if view.candidates.is_empty() {
                    continue;
                }
                let v = view.candidates[pick % view.candidates.len()];
                ds.add_answer(objects[*o], workers[*w], v);
            }
            // Gold labels for a subset.
            for (i, &o) in objects.iter().enumerate() {
                ds.set_gold(o, nodes[i % nodes.len()]);
            }
            MiniCorpus { ds }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn em_produces_valid_distributions(corpus in mini_corpus()) {
        let idx = ObservationIndex::build(&corpus.ds);
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.infer(&corpus.ds, &idx);
        for (o, conf) in est.confidences.iter().enumerate() {
            let view = idx.view(tdh::data::ObjectId::from_index(o));
            prop_assert_eq!(conf.len(), view.candidates.len());
            if conf.is_empty() { continue; }
            let s: f64 = conf.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "μ sums to {}", s);
            prop_assert!(conf.iter().all(|&x| x > 0.0 && x <= 1.0));
        }
        for s in corpus.ds.sources() {
            let phi = model.phi(s);
            let total: f64 = phi.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "φ sums to {}", total);
            prop_assert!(phi.iter().all(|&x| x > 0.0));
        }
        for w in corpus.ds.workers() {
            let psi = model.psi(w);
            let total: f64 = psi.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "ψ sums to {}", total);
        }
    }

    #[test]
    fn em_objective_is_monotone(corpus in mini_corpus()) {
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&corpus.ds);
        let trace = &model.fit_report().unwrap().trace;
        for w in trace.windows(2) {
            prop_assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "objective decreased: {} -> {}", w[0], w[1]
            );
        }
    }

    #[test]
    fn lemma_4_1_holds_on_random_corpora(corpus in mini_corpus()) {
        let idx = ObservationIndex::build(&corpus.ds);
        let mut model = TdhModel::new(TdhConfig::default());
        model.infer(&corpus.ds, &idx);
        let n = idx.n_objects();
        for o in corpus.ds.objects() {
            let bound = ueai(&model, o, n);
            prop_assert!(bound >= -1e-12);
            for w in corpus.ds.workers() {
                let score = eai(&model, &idx, o, w, n);
                prop_assert!(
                    score <= bound + 1e-9,
                    "EAI({:?},{:?}) = {} > UEAI = {}", w, o, score, bound
                );
            }
        }
    }

    #[test]
    fn incremental_posterior_is_a_distribution(corpus in mini_corpus()) {
        let idx = ObservationIndex::build(&corpus.ds);
        let mut model = TdhModel::new(TdhConfig::default());
        model.infer(&corpus.ds, &idx);
        for o in corpus.ds.objects() {
            let k = idx.view(o).n_candidates();
            for c in 0..k as u32 {
                let post = model.posterior_given_answer(&idx, o, WorkerId(0), c);
                let s: f64 = post.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9, "posterior sums to {}", s);
                prop_assert!(post.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn incremental_matches_refit_direction(corpus in mini_corpus()) {
        // Adding an answer for candidate c must not *decrease* the
        // incremental posterior of c relative to the current confidence.
        let idx = ObservationIndex::build(&corpus.ds);
        let mut model = TdhModel::new(TdhConfig::default());
        model.infer(&corpus.ds, &idx);
        for o in corpus.ds.objects() {
            let k = idx.view(o).n_candidates();
            if k < 2 { continue; }
            let mu = model.confidence(o).to_vec();
            for c in 0..k as u32 {
                let post = model.posterior_given_answer(&idx, o, WorkerId(0), c);
                // The answered candidate's mass should not fall by more than
                // the evidence-dilution amount 1/(D+1).
                let d = model.evidence_weight(o);
                prop_assert!(
                    post[c as usize] >= mu[c as usize] - 1.0 / (d + 1.0) - 1e-9,
                    "answer for {} dropped its confidence {} -> {}",
                    c, mu[c as usize], post[c as usize]
                );
            }
        }
    }

    #[test]
    fn all_algorithms_tolerate_arbitrary_corpora(corpus in mini_corpus()) {
        use tdh::baselines::*;
        let idx = ObservationIndex::build(&corpus.ds);
        let mut algos: Vec<Box<dyn TruthDiscovery>> = vec![
            Box::new(Vote),
            Box::new(Lca::default()),
            Box::new(Docs::default()),
            Box::new(Asums::default()),
            Box::new(Mdc::default()),
            Box::new(Accu::default()),
            Box::new(PopAccu::default()),
            Box::new(Lfc::default()),
            Box::new(Crh::default()),
        ];
        for algo in &mut algos {
            let est = algo.infer(&corpus.ds, &idx);
            prop_assert_eq!(est.truths.len(), corpus.ds.n_objects());
            for (o, t) in est.truths.iter().enumerate() {
                let view = idx.view(tdh::data::ObjectId::from_index(o));
                match t {
                    Some(v) => prop_assert!(view.cand_index(*v).is_some()),
                    None => prop_assert!(view.candidates.is_empty()),
                }
            }
        }
    }

    #[test]
    fn multi_truth_sets_are_candidate_subsets(corpus in mini_corpus()) {
        use tdh::baselines::{Dart, LfcMt, Ltm, MultiTruthDiscovery};
        let idx = ObservationIndex::build(&corpus.ds);
        let mut algos: Vec<Box<dyn MultiTruthDiscovery>> = vec![
            Box::new(LfcMt::default()),
            Box::new(Ltm::default()),
            Box::new(Dart::default()),
        ];
        for algo in &mut algos {
            let sets = algo.infer_multi(&corpus.ds, &idx);
            prop_assert_eq!(sets.len(), corpus.ds.n_objects());
            for (o, set) in sets.iter().enumerate() {
                let view = idx.view(tdh::data::ObjectId::from_index(o));
                for v in set {
                    prop_assert!(view.cand_index(*v).is_some());
                }
            }
        }
    }
}
