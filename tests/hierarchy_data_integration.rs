//! Cross-crate integration tests for the hierarchy + data substrates: the
//! candidate-set machinery feeding every algorithm, and the paper's §2
//! definitions.

use tdh::data::{Dataset, ObservationIndex};
use tdh::datagen::{generate_birthplaces, generate_heritages, BirthPlacesConfig, HeritagesConfig};
use tdh::eval::mapped_gold;
use tdh::hierarchy::{HierarchyBuilder, NodeId};

#[test]
fn candidate_sets_cover_exactly_the_claimed_values() {
    let corpus = generate_heritages(
        &HeritagesConfig {
            n_objects: 150,
            n_sources: 300,
            n_claims: 900,
            hierarchy_nodes: 300,
        },
        1,
    );
    let ds = &corpus.dataset;
    let idx = ObservationIndex::build(ds);
    // Forward: every record's value is a candidate of its object.
    for r in ds.records() {
        assert!(idx.view(r.object).cand_index(r.value).is_some());
    }
    // Backward: every candidate was claimed by at least one source.
    for o in ds.objects() {
        let view = idx.view(o);
        for (i, _) in view.candidates.iter().enumerate() {
            assert!(view.source_count[i] > 0, "orphan candidate on {o:?}");
        }
        // Counts are consistent with the incidence lists.
        let total: u32 = view.source_count.iter().sum();
        assert_eq!(total as usize, view.sources.len());
    }
}

#[test]
fn go_and_do_are_mutually_inverse() {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 200,
            hierarchy_nodes: 400,
        },
        2,
    );
    let ds = &corpus.dataset;
    let h = ds.hierarchy();
    let idx = ObservationIndex::build(ds);
    for o in ds.objects() {
        let view = idx.view(o);
        for (vi, ancestors) in view.ancestors.iter().enumerate() {
            for &a in ancestors {
                // Go(v) really contains ancestors...
                assert!(h.is_strict_ancestor(view.candidates[a as usize], view.candidates[vi]));
                // ...and Do mirrors it.
                assert!(view.descendants[a as usize].contains(&(vi as u32)));
            }
        }
        // OH flag consistency.
        let any = view.ancestors.iter().any(|a| !a.is_empty());
        assert_eq!(any, view.in_oh);
    }
}

#[test]
fn oh_membership_matches_paper_definition() {
    // O_H: objects with an ancestor-descendant pair among their candidates.
    let mut b = HierarchyBuilder::new();
    b.add_path(&["USA", "NY", "Liberty Island"]);
    b.add_path(&["UK", "London"]);
    let mut ds = Dataset::new(b.build());
    let s1 = ds.intern_source("s1");
    let s2 = ds.intern_source("s2");

    let in_oh = ds.intern_object("statue");
    let ny = ds.hierarchy().node_by_name("NY").unwrap();
    let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
    ds.add_record(in_oh, s1, ny);
    ds.add_record(in_oh, s2, li);

    let not_in_oh = ds.intern_object("bigben");
    let lon = ds.hierarchy().node_by_name("London").unwrap();
    let usa = ds.hierarchy().node_by_name("USA").unwrap();
    ds.add_record(not_in_oh, s1, lon);
    ds.add_record(not_in_oh, s2, usa); // unrelated values: not OH

    let idx = ObservationIndex::build(&ds);
    assert!(idx.view(in_oh).in_oh);
    assert!(!idx.view(not_in_oh).in_oh);
}

#[test]
fn mapped_gold_is_sound_on_generated_corpora() {
    let corpus = generate_heritages(
        &HeritagesConfig {
            n_objects: 120,
            n_sources: 250,
            n_claims: 700,
            hierarchy_nodes: 300,
        },
        3,
    );
    let ds = &corpus.dataset;
    let h = ds.hierarchy();
    let idx = ObservationIndex::build(ds);
    for o in ds.objects() {
        let gold = ds.gold(o).expect("generators label everything");
        let target = mapped_gold(ds, &idx, o).unwrap();
        let view = idx.view(o);
        if view.cand_index(gold).is_some() {
            assert_eq!(target, gold, "exact gold must stay exact");
        } else if view.cand_index(target).is_some() {
            // Mapped: must be an ancestor of the real gold, and the deepest
            // candidate ancestor.
            assert!(h.is_strict_ancestor(target, gold));
            for &c in &view.candidates {
                if h.is_ancestor_or_self(c, gold) {
                    assert!(h.depth(c) <= h.depth(target));
                }
            }
        } else {
            // Fallback: the raw gold (no candidate on its root path).
            assert_eq!(target, gold);
        }
    }
}

#[test]
fn duplication_preserves_per_object_structure() {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 80,
            hierarchy_nodes: 300,
        },
        4,
    );
    let base = &corpus.dataset;
    let big = base.duplicated(3);
    assert_eq!(big.n_objects(), 3 * base.n_objects());
    assert_eq!(big.records().len(), 3 * base.records().len());
    let idx_base = ObservationIndex::build(base);
    let idx_big = ObservationIndex::build(&big);
    for o in base.objects() {
        for copy in 0..3 {
            let o2 = tdh::data::ObjectId::from_index(copy * base.n_objects() + o.index());
            assert_eq!(
                idx_base.view(o).candidates,
                idx_big.view(o2).candidates,
                "copy {copy} of {o:?} diverged"
            );
            assert_eq!(idx_base.view(o).in_oh, idx_big.view(o2).in_oh);
        }
    }
}

#[test]
fn root_is_never_a_candidate() {
    let corpus = generate_heritages(
        &HeritagesConfig {
            n_objects: 100,
            n_sources: 200,
            n_claims: 600,
            hierarchy_nodes: 250,
        },
        5,
    );
    let idx = ObservationIndex::build(&corpus.dataset);
    for view in idx.views() {
        assert!(!view.candidates.contains(&NodeId::ROOT));
    }
}
