//! Integration tests for the numeric extension (§3.2): the implicit
//! rounding hierarchy, numeric TDH and the Table 6 baselines.

use tdh::baselines::numeric::{
    Catd, CrhNumeric, LcaNumeric, MeanNumeric, NumericTruthDiscovery, VoteNumeric,
};
use tdh::core::numeric::NumericTdh;
use tdh::data::{NumericDataset, ObjectId, SourceId};
use tdh::datagen::{generate_stock, StockAttribute, StockConfig};
use tdh::eval::numeric_report;

fn stock(attribute: StockAttribute, seed: u64) -> NumericDataset {
    generate_stock(
        &StockConfig {
            attribute,
            n_objects: 200,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn tdh_dominates_averaging_baselines_on_every_attribute() {
    for attribute in StockAttribute::ALL {
        let ds = stock(attribute, 5);
        let tdh = numeric_report(&ds, &NumericTdh::default().infer(&ds));
        let mean = numeric_report(&ds, &MeanNumeric.infer_numeric(&ds));
        let catd = numeric_report(&ds, &Catd::default().infer_numeric(&ds));
        assert!(
            tdh.mae < mean.mae,
            "[{}] TDH MAE {} vs MEAN {}",
            attribute.name(),
            tdh.mae,
            mean.mae
        );
        assert!(
            tdh.mae <= catd.mae,
            "[{}] TDH MAE {} vs CATD {}",
            attribute.name(),
            tdh.mae,
            catd.mae
        );
    }
}

#[test]
fn tdh_beats_or_ties_vote_numeric() {
    // VOTE is resolution-blind: it cannot reconcile 605.2 with 605.196, so
    // its MAE is at least TDH's on rounding-heavy data.
    for attribute in StockAttribute::ALL {
        let ds = stock(attribute, 6);
        let tdh = numeric_report(&ds, &NumericTdh::default().infer(&ds));
        let vote = numeric_report(&ds, &VoteNumeric.infer_numeric(&ds));
        assert!(
            tdh.mae <= vote.mae * 1.05 + 1e-12,
            "[{}] TDH MAE {} vs VOTE {}",
            attribute.name(),
            tdh.mae,
            vote.mae
        );
    }
}

#[test]
fn crh_recovers_partially_via_source_weighting() {
    // Outliers concentrate in sloppy sources, so CRH must beat plain MEAN.
    let ds = stock(StockAttribute::OpenPrice, 7);
    let crh = numeric_report(&ds, &CrhNumeric::default().infer_numeric(&ds));
    let mean = numeric_report(&ds, &MeanNumeric.infer_numeric(&ds));
    assert!(
        crh.mae < mean.mae,
        "CRH MAE {} should beat MEAN {}",
        crh.mae,
        mean.mae
    );
}

#[test]
fn all_numeric_algorithms_report_every_claimed_object() {
    let ds = stock(StockAttribute::Eps, 8);
    let by_obj = ds.claims_by_object();
    let estimates: Vec<(&str, Vec<Option<f64>>)> = vec![
        ("TDH", NumericTdh::default().infer(&ds)),
        ("LCA", LcaNumeric.infer_numeric(&ds)),
        ("CRH", CrhNumeric::default().infer_numeric(&ds)),
        ("CATD", Catd::default().infer_numeric(&ds)),
        ("VOTE", VoteNumeric.infer_numeric(&ds)),
        ("MEAN", MeanNumeric.infer_numeric(&ds)),
    ];
    for (name, est) in estimates {
        assert_eq!(est.len(), ds.n_objects(), "{name}");
        for o in ds.objects() {
            let has_claims = !by_obj[o.index()].is_empty();
            assert_eq!(
                est[o.index()].is_some(),
                has_claims,
                "{name}: object {o:?} (claims: {has_claims})"
            );
            if let Some(v) = est[o.index()] {
                assert!(v.is_finite(), "{name}: non-finite estimate");
            }
        }
    }
}

#[test]
fn tdh_estimate_is_always_a_claimed_value() {
    // Candidate selection (not averaging): the estimate is one of the
    // claimed values, exactly.
    let ds = stock(StockAttribute::OpenPrice, 9);
    let by_obj = ds.claims_by_object();
    let est = NumericTdh::default().infer(&ds);
    for o in ds.objects() {
        let Some(v) = est[o.index()] else { continue };
        assert!(
            by_obj[o.index()].iter().any(|&(_, c)| c == v),
            "estimate {v} for {o:?} is not among its claims"
        );
    }
}

#[test]
fn single_outlier_cannot_move_tdh() {
    let mut with = NumericDataset::new(1, 6);
    let mut without = NumericDataset::new(1, 5);
    for s in 0..5 {
        with.add_claim(ObjectId(0), SourceId(s), 123.45);
        without.add_claim(ObjectId(0), SourceId(s), 123.45);
    }
    with.add_claim(ObjectId(0), SourceId(5), 9.9e9);
    let a = NumericTdh::default().infer(&with)[0].unwrap();
    let b = NumericTdh::default().infer(&without)[0].unwrap();
    assert_eq!(a, b, "the outlier flipped TDH's estimate");
    assert_eq!(a, 123.45);
}
