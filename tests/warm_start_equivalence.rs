//! Warm-start contract: on **unchanged data**, a warm-started fit converges
//! to the same truths as a cold fit — in fewer EM iterations — and to the
//! same parameters within 1e-9. The parameter comparison drives both fits
//! to the numerical fixed point (`tol = 0`, exhausting `max_iters`): the
//! default objective-plateau rule stops with parameters still ~1e-8 from
//! the attractor, which would measure the stopping rule, not the seeding.

use tdh::core::{TdhConfig, TdhModel, TruthDiscovery};
use tdh::data::ObservationIndex;
use tdh::datagen::{generate_birthplaces, generate_heritages, BirthPlacesConfig, HeritagesConfig};

fn tight(n_threads: usize) -> TdhConfig {
    TdhConfig {
        tol: 1e-12,
        max_iters: 600,
        n_threads,
        ..Default::default()
    }
}

fn assert_warm_equivalence(ds: &tdh::data::Dataset, label: &str) {
    let idx = ObservationIndex::build(ds);

    // --- Truths + iteration count, at the production stopping rule. ---
    let mut cold = TdhModel::new(TdhConfig {
        warm_start: false,
        ..Default::default()
    });
    let est_cold = cold.infer(ds, &idx);
    let cold_iters = cold.fit_report().unwrap().iterations;
    let warm = cold.warm_start_params(&idx).expect("fitted model exports");
    let mut warm_model = TdhModel::new(TdhConfig::default());
    let est_warm = warm_model.infer_from(ds, &idx, &warm);
    let warm_iters = warm_model.fit_report().unwrap().iterations;

    assert_eq!(
        est_cold.truths, est_warm.truths,
        "{label}: warm start must predict the cold fit's truths"
    );
    assert!(
        warm_iters < cold_iters,
        "{label}: warm start took {warm_iters} iterations vs {cold_iters} cold"
    );

    // --- Parameters, at the numerical fixed point. ---
    let exhaust = TdhConfig {
        tol: 0.0,
        max_iters: 2000,
        warm_start: false,
        ..Default::default()
    };
    let mut deep_cold = TdhModel::new(exhaust);
    deep_cold.infer(ds, &idx);
    let deep_warm_seed = deep_cold.warm_start_params(&idx).unwrap();
    let mut deep_warm = TdhModel::new(TdhConfig {
        max_iters: 200,
        ..exhaust
    });
    deep_warm.infer_from(ds, &idx, &deep_warm_seed);

    for (s, (a, b)) in deep_cold
        .phi_table()
        .iter()
        .zip(deep_warm.phi_table())
        .enumerate()
    {
        for t in 0..3 {
            assert!(
                (a[t] - b[t]).abs() < 1e-9,
                "{label}: φ[{s}] diverged: {a:?} vs {b:?}"
            );
        }
    }
    for (w, (a, b)) in deep_cold
        .psi_table()
        .iter()
        .zip(deep_warm.psi_table())
        .enumerate()
    {
        for t in 0..3 {
            assert!(
                (a[t] - b[t]).abs() < 1e-9,
                "{label}: ψ[{w}] diverged: {a:?} vs {b:?}"
            );
        }
    }
    for (o, (a, b)) in deep_cold
        .mu_table()
        .iter()
        .zip(deep_warm.mu_table())
        .enumerate()
    {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{label}: μ[{o}] diverged: {x} vs {y}");
        }
    }
}

#[test]
fn warm_start_matches_cold_fit_on_birthplaces() {
    let cfg = BirthPlacesConfig {
        n_objects: 250,
        hierarchy_nodes: 400,
    };
    let corpus = generate_birthplaces(&cfg, 11);
    assert_warm_equivalence(&corpus.dataset, "birthplaces");
}

#[test]
fn warm_start_matches_cold_fit_on_heritages() {
    let cfg = HeritagesConfig {
        n_objects: 120,
        n_sources: 200,
        n_claims: 700,
        hierarchy_nodes: 250,
    };
    let corpus = generate_heritages(&cfg, 12);
    assert_warm_equivalence(&corpus.dataset, "heritages");
}

#[test]
fn warm_start_is_deterministic_and_thread_count_invariant() {
    let cfg = BirthPlacesConfig {
        n_objects: 150,
        hierarchy_nodes: 300,
    };
    let ds = generate_birthplaces(&cfg, 13).dataset;
    let idx = ObservationIndex::build(&ds);
    let mut base = TdhModel::new(tight(1));
    base.infer(&ds, &idx);
    let warm = base.warm_start_params(&idx).unwrap();

    let run = |n_threads: usize| {
        let mut m = TdhModel::new(tight(n_threads));
        let est = m.infer_from(&ds, &idx, &warm);
        (est, m.fit_report().unwrap().clone())
    };
    let (est_a, rep_a) = run(1);
    let (est_b, rep_b) = run(1);
    assert_eq!(est_a, est_b, "repeats are bitwise identical");
    assert_eq!(rep_a, rep_b);
    let (est_p, rep_p) = run(4);
    assert_eq!(
        est_a.truths, est_p.truths,
        "pooled warm start predicts the same truths"
    );
    assert_eq!(rep_a.iterations, rep_p.iterations);
}

#[test]
fn warm_start_resumes_exactly_at_the_previous_posterior() {
    // One more EM iteration from a converged state must not move the
    // objective downward — the warm seed is byte-compatible with the
    // previous fixed point, not an approximation of it.
    let cfg = BirthPlacesConfig {
        n_objects: 100,
        hierarchy_nodes: 200,
    };
    let ds = generate_birthplaces(&cfg, 14).dataset;
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(tight(1));
    model.infer(&ds, &idx);
    let obj_cold = model.fit_report().unwrap().objective.unwrap();
    let warm = model.warm_start_params(&idx).unwrap();
    let mut resumed = TdhModel::new(TdhConfig {
        max_iters: 1,
        ..tight(1)
    });
    resumed.infer_from(&ds, &idx, &warm);
    let obj_resume = resumed.fit_report().unwrap().objective.unwrap();
    let scale = obj_cold.abs().max(1.0);
    assert!(
        obj_resume >= obj_cold - 1e-9 * scale,
        "resumed objective {obj_resume} fell below converged {obj_cold}"
    );
}
