//! End-to-end serve smoke test, mirroring the CI leg: fit → snapshot to
//! disk → load into a fresh server → stream claim batches through the
//! incremental engine → warm refit → query (in-process and over TCP,
//! including the pipelined and `INGEST`-batched write paths).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use tdh::core::TdhConfig;
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh::serve::{serve_tcp, Claim, RefitPolicy, Snapshot, TruthServer};

fn record(object: &str, source: &str, value: &str) -> Claim {
    Claim::Record {
        object: object.into(),
        source: source.into(),
        value: value.into(),
    }
}

#[test]
fn save_load_append_refit_query() {
    let cfg = BirthPlacesConfig {
        n_objects: 150,
        hierarchy_nodes: 300,
    };
    let ds = generate_birthplaces(&cfg, 21).dataset;
    let first_obj = ds.object_name(tdh::data::ObjectId(0)).to_string();
    let a_source = ds.source_name(tdh::data::SourceId(0)).to_string();

    // Fit, snapshot to disk.
    let server = TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch);
    let bootstrap_iters = server.last_refit().unwrap().iterations;
    let before = server.truth(&first_obj).expect("fitted");
    let dir = std::env::temp_dir().join("tdh-serving-loop-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fitted.tdhsnap");
    server.snapshot().save(&path).unwrap();

    // Load into a fresh server: answers identical, no refit needed.
    let snap = Snapshot::load(&path).unwrap();
    let mut restored = TruthServer::from_snapshot(snap, RefitPolicy::EveryBatch).unwrap();
    assert_eq!(restored.truth(&first_obj), Some(before.clone()));
    assert_eq!(restored.stats().refits, 0);

    // Stream a claim batch: a brand-new object backed by a known source,
    // plus extra support for an existing object.
    let value_path_tail = before.value.clone();
    let report = restored
        .ingest(&[
            record("fresh-object", &a_source, &value_path_tail),
            record("fresh-object", "fresh-source", &value_path_tail),
            record(&first_obj, "fresh-source", &value_path_tail),
        ])
        .unwrap();
    assert_eq!(report.appended_records, 3);
    let refit = report.refit.expect("EveryBatch refits");
    assert!(refit.warm, "refit must warm-start from the snapshot params");
    assert!(
        refit.iterations < bootstrap_iters,
        "warm refit ({} iters) must beat the bootstrap fit ({bootstrap_iters})",
        refit.iterations
    );

    // Queries reflect the batch.
    let fresh = restored.truth("fresh-object").expect("ingested object");
    assert_eq!(fresh.value, value_path_tail);
    assert!(restored.source_reliability("fresh-source").is_some());
    assert!(!restored.top_uncertain(5).is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_round_trip_against_a_generated_corpus() {
    let cfg = BirthPlacesConfig {
        n_objects: 60,
        hierarchy_nodes: 150,
    };
    let ds = generate_birthplaces(&cfg, 22).dataset;
    let object = ds.object_name(tdh::data::ObjectId(3)).to_string();
    let server = TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch);
    let expected = server.truth(&object).unwrap();

    let handle = serve_tcp(server, "127.0.0.1:0").expect("bind ephemeral port");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim().to_string()
    };

    let reply = ask(&format!("TRUTH\t{object}"));
    assert!(
        reply.contains(&format!("\"confidence\":{}", expected.confidence)),
        "served confidence must match in-process answer: {reply}"
    );
    let stats = ask("STATS");
    assert!(stats.contains("\"objects\":60"), "{stats}");
    let topk = ask("TOPK\t3");
    assert!(topk.contains("\"uncertainty\":"), "{topk}");

    // Batched ingestion: INGEST ships its claim lines as one batch with a
    // single reply (one writer-lock take, one refit).
    let value = expected.value.clone();
    writer
        .write_all(
            format!(
                "INGEST\t2\nRECORD\tbatched-object\tbatched-source\t{value}\n\
                 RECORD\tbatched-object\tother-source\t{value}\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"appended_records\":2"), "{reply}");
    assert!(reply.contains("\"warm\":true"), "{reply}");

    // Pipelining: both queries in one write, two replies in order.
    writer.write_all(b"TRUTH\tbatched-object\nSTATS\n").unwrap();
    let mut truth = String::new();
    reader.read_line(&mut truth).unwrap();
    assert!(truth.contains(&format!("\"truth\":\"{value}\"")), "{truth}");
    let mut stats = String::new();
    reader.read_line(&mut stats).unwrap();
    assert!(stats.contains("\"objects\":61"), "{stats}");

    drop(writer);
    drop(reader);
    let shared = handle.shutdown();
    assert!(shared.lock().unwrap().truth(&object).is_some());
}
