//! Integration tests for the task-assignment layer: Algorithm 1's contract,
//! the exhaustive reference implementation, and cross-assigner behaviour.

use tdh::baselines::{MbAssigner, MeAssigner, Qasca};
use tdh::core::{
    assign_exhaustive, eai, ueai, EaiAssigner, ProbabilisticCrowdModel, TaskAssigner, TdhConfig,
    TdhModel, TruthDiscovery,
};
use tdh::crowd::WorkerPool;
use tdh::data::{Dataset, ObservationIndex, WorkerId};
use tdh::datagen::{generate_birthplaces, BirthPlacesConfig};

fn fitted() -> (Dataset, ObservationIndex, TdhModel, WorkerPool) {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 300,
            hierarchy_nodes: 500,
        },
        99,
    );
    let mut ds = corpus.dataset;
    let pool = WorkerPool::uniform(&mut ds, 8, 0.75, 99);
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx);
    (ds, idx, model, pool)
}

#[test]
fn all_assigners_obey_the_contract() {
    let (ds, idx, model, pool) = fitted();
    let k = 4;
    let mut assigners: Vec<Box<dyn TaskAssigner>> = vec![
        Box::new(EaiAssigner::new()),
        Box::new(Qasca::new(1)),
        Box::new(MeAssigner),
        Box::new(MbAssigner),
    ];
    for assigner in &mut assigners {
        let batches = assigner.assign(&model, &ds, &idx, pool.ids(), k);
        assert_eq!(batches.len(), pool.ids().len(), "{}", assigner.name());
        let mut seen = std::collections::HashSet::new();
        for b in &batches {
            assert!(
                b.objects.len() <= k,
                "{}: batch of {}",
                assigner.name(),
                b.objects.len()
            );
            for &o in &b.objects {
                assert!(seen.insert(o), "{}: duplicate object", assigner.name());
                assert!(
                    idx.view(o).n_candidates() >= 2,
                    "{}: unfixable object assigned",
                    assigner.name()
                );
            }
        }
    }
}

#[test]
fn heap_algorithm_matches_exhaustive_reference_quality() {
    let (ds, idx, model, pool) = fitted();
    let n = idx.n_objects();
    let mut heap = EaiAssigner::new();
    let heap_batches = heap.assign(&model, &ds, &idx, pool.ids(), 5);
    let (full_batches, full_evals) = assign_exhaustive(&model, &ds, &idx, pool.ids(), 5);
    let total = |batches: &[tdh::core::Assignment]| -> f64 {
        batches
            .iter()
            .flat_map(|b| {
                let (model, idx) = (&model, &idx);
                b.objects
                    .iter()
                    .map(move |&o| eai(model, idx, o, b.worker, n))
            })
            .sum()
    };
    let (hq, fq) = (total(&heap_batches), total(&full_batches));
    assert!(hq >= fq * 0.9, "heap quality {hq} vs exhaustive {fq}");
    assert!(
        heap.eai_evaluations <= full_evals,
        "pruning evaluated more pairs ({} vs {full_evals})",
        heap.eai_evaluations
    );
}

#[test]
fn ueai_decreases_with_evidence_and_bounds_eai() {
    let (mut ds, _, _, pool) = fitted();
    let n = ds.n_objects();
    // Take a contested object, add answers, and watch the bound shrink.
    let idx0 = ObservationIndex::build(&ds);
    let o = ds
        .objects()
        .find(|&o| idx0.view(o).n_candidates() >= 2)
        .expect("contested object exists");
    let v = idx0.view(o).candidates[0];

    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx0);
    let before = ueai(&model, o, n);

    for (i, &w) in pool.ids().iter().enumerate().take(5) {
        let _ = i;
        ds.add_answer(o, w, v);
    }
    let idx1 = ObservationIndex::build(&ds);
    let mut model1 = TdhModel::new(TdhConfig::default());
    model1.infer(&ds, &idx1);
    let after = ueai(&model1, o, n);
    assert!(
        after < before,
        "five unanimous answers must shrink UEAI: {before} -> {after}"
    );
    // And the bound holds after the update, too.
    for &w in pool.ids() {
        assert!(eai(&model1, &idx1, o, w, n) <= after + 1e-9);
    }
}

#[test]
fn k_larger_than_object_count_is_fine() {
    let (ds, idx, model, pool) = fitted();
    let mut assigner = EaiAssigner::new();
    let batches = assigner.assign(&model, &ds, &idx, pool.ids(), 10_000);
    // Each object still goes to at most one worker.
    let assigned: usize = batches.iter().map(|b| b.objects.len()).sum();
    assert!(assigned <= ds.n_objects());
    assert!(assigned > 0);
}

#[test]
fn workers_who_answered_everything_get_nothing_new() {
    let (mut ds, _, _, pool) = fitted();
    let w = pool.ids()[0];
    let idx = ObservationIndex::build(&ds);
    // Let worker 0 answer every fixable object.
    for o in ds.objects().collect::<Vec<_>>() {
        let view = idx.view(o);
        if view.n_candidates() >= 2 {
            ds.add_answer(o, w, view.candidates[0]);
        }
    }
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx);
    let mut assigner = EaiAssigner::new();
    let batches = assigner.assign(&model, &ds, &idx, &[w], 5);
    assert!(
        batches[0].objects.is_empty(),
        "worker has answered everything already"
    );
}

#[test]
fn eai_prefers_the_better_worker_when_it_matters() {
    // ψ-ordering: the first batch returned belongs to the highest-ψ1 worker.
    let (mut ds, _, _, _) = fitted();
    let good = ds.intern_worker("seeded-good");
    let bad = ds.intern_worker("seeded-bad");
    let idx = ObservationIndex::build(&ds);
    let fixable: Vec<_> = ds
        .objects()
        .filter(|&o| idx.view(o).n_candidates() >= 2 && idx.view(o).in_oh)
        .take(20)
        .collect();
    for &o in &fixable {
        let view = idx.view(o);
        // good agrees with the plurality, bad dissents.
        let top = (0..view.n_candidates())
            .max_by_key(|&v| view.source_count[v])
            .unwrap();
        let other = (0..view.n_candidates()).find(|&v| v != top).unwrap();
        ds.add_answer(o, good, view.candidates[top]);
        ds.add_answer(o, bad, view.candidates[other]);
    }
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx);
    assert!(model.worker_exact_prob(good) > model.worker_exact_prob(bad));
    let mut assigner = EaiAssigner::new();
    let batches = assigner.assign(&model, &ds, &idx, &[bad, good], 3);
    assert_eq!(batches[0].worker, good, "ψ-ordering puts good first");
}

#[test]
fn qasca_and_me_disagree_with_eai_sometimes() {
    // Sanity: the three measures are genuinely different policies, not
    // reskins of each other.
    let (ds, idx, model, pool) = fitted();
    let k = 5;
    let set_of = |batches: &[tdh::core::Assignment]| {
        batches
            .iter()
            .flat_map(|b| b.objects.iter().copied())
            .collect::<std::collections::HashSet<_>>()
    };
    let eai_set = set_of(&EaiAssigner::new().assign(&model, &ds, &idx, pool.ids(), k));
    let me_set = set_of(&MeAssigner.assign(&model, &ds, &idx, pool.ids(), k));
    assert_ne!(eai_set, me_set, "EAI must not degenerate to pure entropy");
}

#[test]
fn unknown_worker_gets_prior_psi() {
    let (_, _, model, _) = fitted();
    let p = model.worker_exact_prob(WorkerId(9_999));
    assert!((p - 1.0 / 3.0).abs() < 1e-9, "prior mean ψ1, got {p}");
}
