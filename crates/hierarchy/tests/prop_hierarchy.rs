//! Property-based tests for the hierarchy substrate.

use proptest::prelude::*;
use tdh_hierarchy::numeric::{self, NumericHierarchy};
use tdh_hierarchy::{Hierarchy, HierarchyBuilder, NodeId};

/// Build a random tree of `n` nodes where node `i`'s parent is drawn from
/// `0..=i` via the provided indices (clamped), guaranteeing acyclicity.
fn random_tree(parents: &[usize]) -> Hierarchy {
    let mut b = HierarchyBuilder::new();
    let mut ids = vec![NodeId::ROOT];
    for (i, &p) in parents.iter().enumerate() {
        let parent = ids[p % ids.len()];
        let id = b.add_child(parent, &format!("node-{i}")).unwrap();
        ids.push(id);
    }
    b.build()
}

fn arb_tree() -> impl Strategy<Value = Hierarchy> {
    proptest::collection::vec(0usize..usize::MAX, 1..60).prop_map(|v| random_tree(&v))
}

proptest! {
    #[test]
    fn invariants_hold(h in arb_tree()) {
        h.check_invariants().unwrap();
    }

    #[test]
    fn ancestor_iter_matches_strict_ancestor(h in arb_tree(), a in 0u32..60, b in 0u32..60) {
        let (a, b) = (NodeId(a % h.len() as u32), NodeId(b % h.len() as u32));
        let on_path = h.ancestors(b).any(|x| x == a);
        prop_assert_eq!(on_path, h.is_strict_ancestor(a, b));
    }

    #[test]
    fn ancestors_have_strictly_decreasing_depth(h in arb_tree(), v in 0u32..60) {
        let v = NodeId(v % h.len() as u32);
        let depths: Vec<u32> = h.ancestors(v).map(|a| h.depth(a)).collect();
        for w in depths.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
        if let Some(&last) = depths.last() {
            prop_assert_eq!(last, 0); // terminates at the root
        }
    }

    #[test]
    fn lca_is_common_ancestor_and_deepest(h in arb_tree(), a in 0u32..60, b in 0u32..60) {
        let (a, b) = (NodeId(a % h.len() as u32), NodeId(b % h.len() as u32));
        let l = h.lca(a, b);
        prop_assert!(h.is_ancestor_or_self(l, a));
        prop_assert!(h.is_ancestor_or_self(l, b));
        // No strictly deeper common ancestor exists.
        for c in h.nodes() {
            if h.is_ancestor_or_self(c, a) && h.is_ancestor_or_self(c, b) {
                prop_assert!(h.depth(c) <= h.depth(l));
            }
        }
    }

    #[test]
    fn lca_commutes(h in arb_tree(), a in 0u32..60, b in 0u32..60) {
        let (a, b) = (NodeId(a % h.len() as u32), NodeId(b % h.len() as u32));
        prop_assert_eq!(h.lca(a, b), h.lca(b, a));
    }

    #[test]
    fn distance_is_a_metric(h in arb_tree(), a in 0u32..60, b in 0u32..60, c in 0u32..60) {
        let n = h.len() as u32;
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        // Identity of indiscernibles.
        prop_assert_eq!(h.distance(a, a), 0);
        prop_assert_eq!(h.distance(a, b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(h.distance(a, b), h.distance(b, a));
        // Triangle inequality.
        prop_assert!(h.distance(a, c) <= h.distance(a, b) + h.distance(b, c));
    }

    #[test]
    fn subtree_contains_exactly_descendants(h in arb_tree(), v in 0u32..60) {
        let v = NodeId(v % h.len() as u32);
        let sub = h.subtree(v);
        for x in h.nodes() {
            let inside = sub.contains(&x);
            prop_assert_eq!(inside, h.is_ancestor_or_self(v, x));
        }
    }

    #[test]
    fn most_specific_ancestor_is_sound(h in arb_tree(), v in 0u32..60, picks in proptest::collection::vec(0u32..60, 0..10)) {
        let n = h.len() as u32;
        let truth = NodeId(v % n);
        let cands: Vec<NodeId> = picks.iter().map(|&p| NodeId(p % n)).collect();
        if let Some(best) = h.most_specific_ancestor_in(&cands, truth) {
            prop_assert!(h.is_ancestor_or_self(best, truth));
            for &c in &cands {
                if h.is_ancestor_or_self(c, truth) {
                    prop_assert!(h.depth(c) <= h.depth(best));
                }
            }
        } else {
            for &c in &cands {
                prop_assert!(!h.is_ancestor_or_self(c, truth));
            }
        }
    }
}

/// Strategy producing plausible claimed values: a base quantity reported at
/// 1–6 decimal places.
fn arb_claims() -> impl Strategy<Value = Vec<f64>> {
    (
        -1000.0f64..1000.0,
        proptest::collection::vec(0i32..6, 1..12),
    )
        .prop_map(|(base, places)| {
            places
                .into_iter()
                .map(|p| numeric::round_to_place(base, -p))
                .collect()
        })
}

proptest! {
    #[test]
    fn numeric_hierarchy_is_a_valid_tree(claims in arb_claims()) {
        let (nh, map) = NumericHierarchy::build(&claims);
        nh.hierarchy().check_invariants().unwrap();
        prop_assert_eq!(map.len(), claims.len());
        for (&v, &node) in claims.iter().zip(&map) {
            prop_assert_eq!(nh.node_of(v), Some(node));
        }
    }

    #[test]
    fn numeric_parents_are_coarser(claims in arb_claims()) {
        let (nh, map) = NumericHierarchy::build(&claims);
        let h = nh.hierarchy();
        for &node in &map {
            let p = h.parent(node);
            if p != NodeId::ROOT {
                prop_assert!(
                    numeric::place_of(nh.value(p)) > numeric::place_of(nh.value(node)),
                    "parent must have coarser precision"
                );
            }
        }
    }

    #[test]
    fn numeric_parent_is_direct_rounding(claims in arb_claims()) {
        let (nh, map) = NumericHierarchy::build(&claims);
        let h = nh.hierarchy();
        for &node in &map {
            let p = h.parent(node);
            if p != NodeId::ROOT {
                prop_assert!(numeric::is_rounding_ancestor(nh.value(p), nh.value(node)));
            }
        }
    }

    #[test]
    fn round_to_place_is_idempotent(x in -1.0e6f64..1.0e6, k in -6i32..6) {
        let once = numeric::round_to_place(x, k);
        let twice = numeric::round_to_place(once, k);
        prop_assert!((once - twice).abs() <= 1e-9 * once.abs().max(1.0));
    }
}
