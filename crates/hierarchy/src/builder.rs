//! Incremental construction of [`Hierarchy`] values.

use std::collections::HashMap;
use std::fmt;

use crate::tree::{Hierarchy, NodeId};

/// Errors raised while building a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A node was inserted twice with two different parents. The hierarchy is
    /// a tree: each value has exactly one parent.
    ConflictingParent {
        /// The offending node name.
        node: String,
        /// The name of the parent it was first registered under.
        existing_parent: String,
        /// The name of the conflicting new parent.
        new_parent: String,
    },
    /// The reserved root name was used for a regular node.
    ReservedRootName,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ConflictingParent {
                node,
                existing_parent,
                new_parent,
            } => write!(
                f,
                "node {node:?} already has parent {existing_parent:?}, cannot reparent under {new_parent:?}"
            ),
            BuildError::ReservedRootName => write!(f, "the name \"<root>\" is reserved"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Name reserved for the implicit root node.
pub(crate) const ROOT_NAME: &str = "<root>";

/// Builds a [`Hierarchy`] from edges or paths.
///
/// Nodes are interned by name: adding the same name twice under the same
/// parent is a no-op returning the existing id. The root exists implicitly
/// and is never added by the caller.
///
/// ```
/// use tdh_hierarchy::HierarchyBuilder;
/// let mut b = HierarchyBuilder::new();
/// let ny = b.add_child_of_root("NY");
/// let li = b.add_child(ny, "Liberty Island").unwrap();
/// let h = b.build();
/// assert!(h.is_strict_ancestor(ny, li));
/// ```
#[derive(Debug, Default, Clone)]
pub struct HierarchyBuilder {
    parent: Vec<NodeId>,
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
}

impl HierarchyBuilder {
    /// Fresh builder containing only the implicit root.
    pub fn new() -> Self {
        let mut b = HierarchyBuilder {
            parent: vec![NodeId::ROOT],
            names: vec![ROOT_NAME.to_string()],
            by_name: HashMap::new(),
        };
        b.by_name.insert(ROOT_NAME.to_string(), NodeId::ROOT);
        b
    }

    /// Number of nodes added so far, including the root.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff only the implicit root exists.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Id of a previously added node, by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Add `name` as a child of the root (a *top-level* value such as a
    /// country or a continent). Idempotent for an existing root child.
    ///
    /// # Panics
    /// Panics if `name` already exists under a non-root parent; use
    /// [`HierarchyBuilder::add_child`] and handle the error when that is a
    /// legitimate input condition.
    pub fn add_child_of_root(&mut self, name: &str) -> NodeId {
        self.add_child(NodeId::ROOT, name)
            .expect("conflicting parent for root child")
    }

    /// Add `name` as a child of `parent`. Returns the existing id if the node
    /// is already registered under the same parent; errors if it exists under
    /// a different parent.
    pub fn add_child(&mut self, parent: NodeId, name: &str) -> Result<NodeId, BuildError> {
        if name == ROOT_NAME {
            return Err(BuildError::ReservedRootName);
        }
        if let Some(&existing) = self.by_name.get(name) {
            let existing_parent = self.parent[existing.index()];
            if existing_parent == parent {
                return Ok(existing);
            }
            return Err(BuildError::ConflictingParent {
                node: name.to_string(),
                existing_parent: self.names[existing_parent.index()].clone(),
                new_parent: self.names[parent.index()].clone(),
            });
        }
        let id = NodeId(self.parent.len() as u32);
        self.parent.push(parent);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Add a full root-to-leaf path (e.g. `["USA", "California", "LA"]`),
    /// creating missing intermediate nodes, and return the id of the final
    /// (most specific) component.
    ///
    /// # Panics
    /// Panics if a component already exists under a different parent — paths
    /// fed to this convenience method are assumed to come from a consistent
    /// gold hierarchy (as the paper builds its geo hierarchy from IMDb
    /// places). Use [`HierarchyBuilder::add_child`] for untrusted input.
    pub fn add_path(&mut self, path: &[&str]) -> NodeId {
        assert!(!path.is_empty(), "path must have at least one component");
        let mut cur = NodeId::ROOT;
        for part in path {
            cur = self
                .add_child(cur, part)
                .unwrap_or_else(|e| panic!("inconsistent path {path:?}: {e}"));
        }
        cur
    }

    /// Finish building. Consumes the builder.
    pub fn build(self) -> Hierarchy {
        Hierarchy::from_parts(self.parent, self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_insertion() {
        let mut b = HierarchyBuilder::new();
        let a = b.add_child_of_root("USA");
        let a2 = b.add_child_of_root("USA");
        assert_eq!(a, a2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn conflicting_parent_rejected() {
        let mut b = HierarchyBuilder::new();
        let usa = b.add_child_of_root("USA");
        let uk = b.add_child_of_root("UK");
        b.add_child(usa, "Springfield").unwrap();
        let err = b.add_child(uk, "Springfield").unwrap_err();
        assert!(matches!(err, BuildError::ConflictingParent { .. }));
        assert!(err.to_string().contains("Springfield"));
    }

    #[test]
    fn reserved_root_name_rejected() {
        let mut b = HierarchyBuilder::new();
        assert_eq!(
            b.add_child(NodeId::ROOT, "<root>"),
            Err(BuildError::ReservedRootName)
        );
    }

    #[test]
    fn paths_share_prefixes() {
        let mut b = HierarchyBuilder::new();
        let la = b.add_path(&["USA", "CA", "LA"]);
        let sf = b.add_path(&["USA", "CA", "SF"]);
        let h = b.build();
        assert_eq!(h.parent(la), h.parent(sf));
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn lookup_before_build() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "CA"]);
        assert!(b.node("CA").is_some());
        assert!(b.node("NV").is_none());
    }
}
