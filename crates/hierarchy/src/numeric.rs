//! The *implicit* hierarchy over numeric claims (paper §3.2).
//!
//! Web sources report the same quantity at different measurement resolutions:
//! the area of Seoul (605.196 km²) appears as `605.2` or `605` depending on
//! the significant figures a page keeps. The paper models this by declaring
//! `v_a` an ancestor of `v_d` whenever `v_a` is obtained by *rounding off*
//! `v_d`, and then runs the ordinary TDH algorithm over the induced tree.
//!
//! This module derives that tree from a bag of claimed `f64` values:
//!
//! 1. Every value is canonicalised to its shortest round-trip decimal string.
//! 2. Its *place* — the power of ten of its least significant digit — is
//!    inferred from the canonical string (`605.196 → -3`, `605.2 → -1`,
//!    `605 → 0`, `600 → 2`).
//! 3. `v_a` is a direct-test ancestor of `v_d` iff `place(v_a) > place(v_d)`
//!    and rounding `v_d` to `place(v_a)` (half away from zero, the convention
//!    used when people truncate reported figures) yields exactly `v_a`.
//! 4. Each value's parent is its most specific (smallest-place) direct-test
//!    ancestor; values with no ancestor hang off the root.
//!
//! The direct test is not transitive at exact half-way boundaries
//! (`0.445 → 0.45 → 0.5` but `0.445 → 0.4` at one decimal), so the exported
//! tree's ancestor relation is the transitive closure of the *parent* edges,
//! which is a well-defined tree by construction.

use std::collections::HashMap;

use crate::builder::HierarchyBuilder;
use crate::tree::{Hierarchy, NodeId};

/// Relative tolerance used when comparing rounded values.
const REL_EPS: f64 = 1e-9;

/// Canonical (shortest round-trip) decimal representation of `x`.
///
/// Two claims are considered the *same* value iff their canonical strings
/// match; this is also the node name in the derived hierarchy.
pub fn canonical(x: f64) -> String {
    if x == 0.0 {
        // Normalise -0.0.
        return "0".to_string();
    }
    let s = format!("{x}");
    // `format!("{}")` already emits the shortest representation that
    // round-trips; it never prints a trailing ".0" for integers.
    s
}

/// The power of ten of the least significant digit of `x`, inferred from its
/// canonical decimal representation.
///
/// * `605.196` → `-3` (thousandths)
/// * `605.2` → `-1`
/// * `605` → `0`
/// * `600` → `2` (trailing integer zeros are treated as insignificant, i.e.
///   `600` is read as "rounded to hundreds")
/// * `0` → `0`
///
/// Values with exponents in their shortest representation (e.g. `1e300`) are
/// handled by falling back to the exponent.
pub fn place_of(x: f64) -> i32 {
    if x == 0.0 {
        return 0;
    }
    let s = canonical(x);
    let s = s.strip_prefix('-').unwrap_or(&s);
    if let Some(epos) = s.find(['e', 'E']) {
        // mantissa e exponent: place = exponent - fractional digits of mantissa
        let exp: i32 = s[epos + 1..].parse().unwrap_or(0);
        let mant = &s[..epos];
        let frac = mant.find('.').map_or(0, |d| (mant.len() - d - 1) as i32);
        return exp - frac;
    }
    if let Some(dot) = s.find('.') {
        // Fractional digits after the dot determine the place.
        -((s.len() - dot - 1) as i32)
    } else {
        // Count trailing zeros of the integer representation.
        s.chars().rev().take_while(|&c| c == '0').count() as i32
    }
}

/// Round `x` to decimal place `k` (the power of ten of the last kept digit),
/// rounding halves away from zero.
pub fn round_to_place(x: f64, k: i32) -> f64 {
    let scale = 10f64.powi(-k);
    let scaled = x * scale;
    if !scaled.is_finite() {
        return x;
    }
    scaled.round() / scale
}

/// `true` iff `a` is obtained by rounding off `d` — the paper's direct
/// ancestor test: `a` is coarser than `d` and rounding `d` to `a`'s place
/// yields `a`.
pub fn is_rounding_ancestor(a: f64, d: f64) -> bool {
    let (pa, pd) = (place_of(a), place_of(d));
    if pa <= pd {
        return false;
    }
    approx_eq(round_to_place(d, pa), a)
}

fn approx_eq(x: f64, y: f64) -> bool {
    if x == y {
        return true;
    }
    let scale = x.abs().max(y.abs()).max(1.0);
    (x - y).abs() <= REL_EPS * scale
}

/// The hierarchy induced by significant-figure rounding over a set of
/// claimed values (typically the candidate values of a single object).
#[derive(Debug, Clone)]
pub struct NumericHierarchy {
    hierarchy: Hierarchy,
    /// Distinct canonical values, indexed in step with node ids (offset by
    /// the root, which carries no value).
    node_value: Vec<f64>,
    node_of_canon: HashMap<String, NodeId>,
}

impl NumericHierarchy {
    /// Build the rounding hierarchy over `values`. Duplicate values (after
    /// canonicalisation) collapse to a single node.
    ///
    /// Returns the hierarchy together with the node each input value maps to.
    pub fn build(values: &[f64]) -> (Self, Vec<NodeId>) {
        // Deduplicate by canonical string, keeping first-seen order stable.
        let mut canon_of: Vec<String> = Vec::new();
        let mut distinct: Vec<f64> = Vec::new();
        let mut index_of: HashMap<String, usize> = HashMap::new();
        for &v in values {
            let c = canonical(v);
            index_of.entry(c.clone()).or_insert_with(|| {
                canon_of.push(c);
                distinct.push(v);
                distinct.len() - 1
            });
        }

        // Sort candidate parents coarse-to-fine so we can build the tree with
        // parents preceding children (required by HierarchyBuilder).
        let mut order: Vec<usize> = (0..distinct.len()).collect();
        order.sort_by(|&a, &b| {
            place_of(distinct[b])
                .cmp(&place_of(distinct[a]))
                .then_with(|| canon_of[a].cmp(&canon_of[b]))
        });

        let mut builder = HierarchyBuilder::new();
        let mut node_of: HashMap<usize, NodeId> = HashMap::new();
        let mut node_value: Vec<f64> = vec![f64::NAN]; // slot for the root
        for &i in &order {
            let v = distinct[i];
            // Most specific direct-test ancestor already placed in the tree.
            let parent = order
                .iter()
                .take_while(|&&j| j != i)
                .filter(|&&j| is_rounding_ancestor(distinct[j], v))
                .min_by_key(|&&j| place_of(distinct[j]))
                .and_then(|&j| node_of.get(&j).copied())
                .unwrap_or(NodeId::ROOT);
            let id = builder
                .add_child(parent, &canon_of[i])
                .expect("canonical strings are unique");
            node_of.insert(i, id);
            debug_assert_eq!(id.index(), node_value.len());
            node_value.push(v);
        }

        let hierarchy = builder.build();
        let node_of_canon = canon_of
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), node_of[&i]))
            .collect();
        let mapping = values
            .iter()
            .map(|&v| node_of[&index_of[&canonical(v)]])
            .collect();
        (
            NumericHierarchy {
                hierarchy,
                node_value,
                node_of_canon,
            },
            mapping,
        )
    }

    /// The underlying tree.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The numeric value carried by node `v`.
    ///
    /// # Panics
    /// Panics when asked for the root, which carries no value.
    pub fn value(&self, v: NodeId) -> f64 {
        assert!(v != NodeId::ROOT, "the root carries no numeric value");
        self.node_value[v.index()]
    }

    /// The node a claimed value maps to, if it was part of the input.
    pub fn node_of(&self, x: f64) -> Option<NodeId> {
        self.node_of_canon.get(&canonical(x)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_strings() {
        assert_eq!(canonical(605.196), "605.196");
        assert_eq!(canonical(605.2), "605.2");
        assert_eq!(canonical(605.0), "605");
        assert_eq!(canonical(0.0), "0");
        assert_eq!(canonical(-0.0), "0");
        assert_eq!(canonical(-3.5), "-3.5");
    }

    #[test]
    fn place_inference() {
        assert_eq!(place_of(605.196), -3);
        assert_eq!(place_of(605.2), -1);
        assert_eq!(place_of(605.0), 0);
        assert_eq!(place_of(600.0), 2);
        assert_eq!(place_of(0.0006), -4);
        assert_eq!(place_of(0.0), 0);
        assert_eq!(place_of(-42.5), -1);
    }

    #[test]
    fn rounding_half_away_from_zero() {
        assert_eq!(round_to_place(605.196, -1), 605.2);
        assert_eq!(round_to_place(605.196, 0), 605.0);
        assert_eq!(round_to_place(605.196, 2), 600.0);
        assert_eq!(round_to_place(0.45, -1), 0.5);
        assert_eq!(round_to_place(-0.45, -1), -0.5);
    }

    #[test]
    fn direct_ancestor_test() {
        // The paper's Seoul example: 605.196 generalises to 605.2 and 605.
        assert!(is_rounding_ancestor(605.2, 605.196));
        assert!(is_rounding_ancestor(605.0, 605.196));
        assert!(is_rounding_ancestor(605.0, 605.2));
        assert!(
            !is_rounding_ancestor(605.196, 605.2),
            "finer is no ancestor"
        );
        assert!(!is_rounding_ancestor(606.0, 605.196), "wrong rounding");
        assert!(!is_rounding_ancestor(605.2, 605.2), "never self");
    }

    #[test]
    fn build_seoul_chain() {
        let (nh, map) = NumericHierarchy::build(&[605.196, 605.2, 605.0]);
        let h = nh.hierarchy();
        assert_eq!(h.len(), 4); // root + 3
        let fine = map[0];
        let mid = map[1];
        let coarse = map[2];
        assert_eq!(h.parent(fine), mid);
        assert_eq!(h.parent(mid), coarse);
        assert_eq!(h.parent(coarse), NodeId::ROOT);
        assert_eq!(nh.value(fine), 605.196);
        assert_eq!(nh.node_of(605.2), Some(mid));
        h.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_collapse() {
        let (nh, map) = NumericHierarchy::build(&[42.0, 42.0, 42.0]);
        assert_eq!(nh.hierarchy().len(), 2);
        assert_eq!(map[0], map[1]);
        assert_eq!(map[1], map[2]);
    }

    #[test]
    fn unrelated_values_are_siblings() {
        let (nh, map) = NumericHierarchy::build(&[10.0, 77.7]);
        let h = nh.hierarchy();
        assert_eq!(h.parent(map[0]), NodeId::ROOT);
        assert_eq!(h.parent(map[1]), NodeId::ROOT);
    }

    #[test]
    fn outliers_do_not_capture_truth() {
        // An extreme outlier has no rounding relation to the cluster.
        let (nh, map) = NumericHierarchy::build(&[605.196, 605.2, 1.0e9]);
        let h = nh.hierarchy();
        assert_eq!(h.parent(map[2]), NodeId::ROOT);
        assert!(!h.is_strict_ancestor(map[2], map[0]));
    }

    #[test]
    fn negative_values() {
        let (nh, map) = NumericHierarchy::build(&[-3.14159, -3.14, -3.0]);
        let h = nh.hierarchy();
        assert_eq!(h.parent(map[0]), map[1]);
        assert_eq!(h.parent(map[1]), map[2]);
        assert_eq!(nh.value(map[0]), -3.14159);
    }

    #[test]
    fn parent_is_most_specific_ancestor() {
        // 0.123456 should attach to 0.1235 (4 dp), not directly to 0.1.
        let (nh, map) = NumericHierarchy::build(&[0.123456, 0.1235, 0.1]);
        let h = nh.hierarchy();
        assert_eq!(h.parent(map[0]), map[1]);
        assert_eq!(h.parent(map[1]), map[2]);
        let _ = nh;
    }
}
