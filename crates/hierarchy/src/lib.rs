//! Value hierarchies for hierarchical truth discovery.
//!
//! Truth discovery in the presence of hierarchies (Jung, Kim & Shim,
//! EDBT 2019) interprets a claimed value relative to a hierarchy tree `H`:
//! a claim can be *exactly correct* (equal to the truth), *hierarchically
//! correct* (a proper ancestor of the truth, i.e. a generalization such as
//! `"NY"` for `"Liberty Island"`), or *incorrect* (anything else).
//!
//! This crate provides the tree machinery every other crate in the workspace
//! builds on:
//!
//! * [`Hierarchy`] — an interned, immutable rooted tree with O(1) parent /
//!   depth lookups, ancestor iteration, subtree (descendant) queries,
//!   lowest-common-ancestor and tree-distance computations.
//! * [`HierarchyBuilder`] — incremental construction from `(child, parent)`
//!   edges or slash-separated paths (`"USA/California/LA"`), with duplicate
//!   detection and cycle rejection.
//! * [`numeric`] — the *implicit* hierarchy over numeric claims described in
//!   §3.2 of the paper: `v_a` is an ancestor of `v_d` iff `v_a` is obtained
//!   by rounding `v_d` to fewer significant digits.
//!
//! # Example
//!
//! ```
//! use tdh_hierarchy::HierarchyBuilder;
//!
//! let mut b = HierarchyBuilder::new();
//! let liberty = b.add_path(&["USA", "NY", "Liberty Island"]);
//! let la = b.add_path(&["USA", "CA", "LA"]);
//! let h = b.build();
//!
//! let ny = h.node_by_name("NY").unwrap();
//! assert!(h.is_strict_ancestor(ny, liberty));
//! assert!(!h.is_strict_ancestor(ny, la));
//! assert_eq!(h.distance(liberty, la), 4); // up 2 to USA, down 2 to LA
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod numeric;
mod tree;

pub use builder::{BuildError, HierarchyBuilder};
pub use tree::{AncestorIter, Hierarchy, NodeId};
