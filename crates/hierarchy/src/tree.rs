//! The immutable rooted tree at the heart of hierarchical truth discovery.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a node in a [`Hierarchy`].
///
/// Node ids are dense indices (`0..hierarchy.len()`); id `0` is always the
/// root. They are deliberately small (`u32`) because candidate sets, records
/// and confidence tables store millions of them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root of every hierarchy.
    pub const ROOT: NodeId = NodeId(0);

    /// The node id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable rooted tree over interned value names.
///
/// The tree is stored in parent-pointer form with per-node depth, plus a
/// first-child/next-sibling index for subtree traversal. All per-node queries
/// (`parent`, `depth`, `name`) are O(1); `is_strict_ancestor` is
/// O(depth difference); `lca` and `distance` are O(depth).
///
/// Construct via [`crate::HierarchyBuilder`].
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// `parent[i]` is the parent of node `i`; the root points to itself.
    parent: Vec<NodeId>,
    /// `depth[i]` is the number of edges from the root (root = 0).
    depth: Vec<u32>,
    /// Interned display names, indexed by node id.
    names: Vec<String>,
    /// Reverse lookup from name to node id.
    by_name: HashMap<String, NodeId>,
    /// Children adjacency (first-child / next-sibling flattened to ranges).
    children: Vec<Vec<NodeId>>,
    /// Height of the tree: max depth over all nodes.
    height: u32,
}

impl Hierarchy {
    pub(crate) fn from_parts(parent: Vec<NodeId>, names: Vec<String>) -> Self {
        debug_assert_eq!(parent.len(), names.len());
        debug_assert!(!parent.is_empty(), "hierarchy must contain a root");
        debug_assert_eq!(parent[0], NodeId::ROOT, "root must be its own parent");

        let n = parent.len();
        let mut depth = vec![0u32; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        // Builder guarantees parents precede children, so a single forward
        // pass computes depths.
        for i in 1..n {
            let p = parent[i];
            debug_assert!(p.index() < i, "parent must precede child");
            depth[i] = depth[p.index()] + 1;
            children[p.index()].push(NodeId(i as u32));
        }
        let height = depth.iter().copied().max().unwrap_or(0);
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), NodeId(i as u32)))
            .collect();
        Hierarchy {
            parent,
            depth,
            names,
            by_name,
            children,
            height,
        }
    }

    /// Number of nodes, including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff the hierarchy contains only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Height of the tree (max depth over all nodes; a lone root has height 0).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The parent of `v`. The root is its own parent.
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v.index()]
    }

    /// Depth of `v` (edges from the root).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Display name of `v`.
    #[inline]
    pub fn name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// Look a node up by its interned name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Direct children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// `true` iff `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.index()].is_empty()
    }

    /// Iterate over all node ids, root first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.parent.len() as u32).map(NodeId)
    }

    /// Iterate over the *proper* ancestors of `v`, nearest first, ending at
    /// (and including) the root. An empty iterator for the root itself.
    pub fn ancestors(&self, v: NodeId) -> AncestorIter<'_> {
        AncestorIter {
            hierarchy: self,
            current: v,
        }
    }

    /// `true` iff `a` is a *proper* ancestor of `v` (`a != v`, and `a` lies on
    /// the path from `v` to the root). The root is a proper ancestor of every
    /// other node.
    pub fn is_strict_ancestor(&self, a: NodeId, v: NodeId) -> bool {
        if self.depth[a.index()] >= self.depth[v.index()] {
            return false;
        }
        self.walk_up(v, self.depth[v.index()] - self.depth[a.index()]) == a
    }

    /// `true` iff `a == v` or `a` is a proper ancestor of `v`.
    pub fn is_ancestor_or_self(&self, a: NodeId, v: NodeId) -> bool {
        a == v || self.is_strict_ancestor(a, v)
    }

    /// Ascend `steps` edges from `v` (clamping at the root).
    fn walk_up(&self, mut v: NodeId, steps: u32) -> NodeId {
        for _ in 0..steps {
            v = self.parent[v.index()];
        }
        v
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut u, mut v) = (u, v);
        let (du, dv) = (self.depth[u.index()], self.depth[v.index()]);
        if du > dv {
            u = self.walk_up(u, du - dv);
        } else if dv > du {
            v = self.walk_up(v, dv - du);
        }
        while u != v {
            u = self.parent[u.index()];
            v = self.parent[v.index()];
        }
        u
    }

    /// Number of edges on the unique tree path between `u` and `v`.
    ///
    /// This is the `d(v*, t)` used by the paper's *AvgDistance* quality
    /// measure: `d(u,v) = depth(u) + depth(v) - 2*depth(lca(u,v))`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        let l = self.lca(u, v);
        self.depth[u.index()] + self.depth[v.index()] - 2 * self.depth[l.index()]
    }

    /// All nodes of the subtree rooted at `v` (including `v`), in preorder.
    pub fn subtree(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            out.push(x);
            // Reverse so preorder visits children left-to-right.
            stack.extend(self.children[x.index()].iter().rev().copied());
        }
        out
    }

    /// The ancestor of `v` at exactly `target_depth`, or `None` if `v` is
    /// shallower than that depth.
    pub fn ancestor_at_depth(&self, v: NodeId, target_depth: u32) -> Option<NodeId> {
        let d = self.depth[v.index()];
        if target_depth > d {
            return None;
        }
        Some(self.walk_up(v, d - target_depth))
    }

    /// The depth-1 ancestor of `v` — its *top-level branch*. Used by the
    /// DOCS baseline as a stand-in for knowledge-base domains. Returns `None`
    /// for the root.
    pub fn top_level_branch(&self, v: NodeId) -> Option<NodeId> {
        if v == NodeId::ROOT {
            None
        } else {
            self.ancestor_at_depth(v, 1)
        }
    }

    /// The most specific node among `candidates` that is an ancestor-or-self
    /// of `truth`, if any. Used to map a gold-standard value that is absent
    /// from an object's candidate set onto the candidate set (§5, "the most
    /// specific candidate value among the ancestors of the truth is assumed
    /// to be the truth").
    pub fn most_specific_ancestor_in(
        &self,
        candidates: &[NodeId],
        truth: NodeId,
    ) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| self.is_ancestor_or_self(c, truth))
            .max_by_key(|&c| self.depth(c))
    }

    /// Verify internal invariants. Debug/test helper; O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.parent.is_empty() {
            return Err("empty hierarchy".into());
        }
        if self.parent[0] != NodeId::ROOT {
            return Err("root is not its own parent".into());
        }
        for i in 1..self.parent.len() {
            let p = self.parent[i];
            if p.index() >= i {
                return Err(format!("node {i} has non-preceding parent {p:?}"));
            }
            if self.depth[i] != self.depth[p.index()] + 1 {
                return Err(format!("node {i} has inconsistent depth"));
            }
            if !self.children[p.index()].contains(&NodeId(i as u32)) {
                return Err(format!("node {i} missing from parent's child list"));
            }
        }
        Ok(())
    }
}

/// Iterator over the proper ancestors of a node, nearest first.
///
/// Yielded by [`Hierarchy::ancestors`]. The root terminates the iteration
/// (it is yielded last, unless the starting node *is* the root, in which case
/// nothing is yielded).
pub struct AncestorIter<'h> {
    hierarchy: &'h Hierarchy,
    current: NodeId,
}

impl Iterator for AncestorIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.current == NodeId::ROOT {
            return None;
        }
        self.current = self.hierarchy.parent(self.current);
        Some(self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyBuilder;

    /// Small geographic fixture mirroring the paper's running example.
    fn geo() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        b.add_path(&["UK", "London", "Westminster"]);
        b.add_path(&["UK", "Manchester"]);
        b.build()
    }

    #[test]
    fn construction_and_lookup() {
        let h = geo();
        assert_eq!(h.len(), 1 + 2 + 5 + 2); // root + {USA,UK} + ...
        assert_eq!(h.height(), 3);
        let usa = h.node_by_name("USA").unwrap();
        let ny = h.node_by_name("NY").unwrap();
        assert_eq!(h.parent(ny), usa);
        assert_eq!(h.depth(ny), 2);
        assert_eq!(h.name(ny), "NY");
        assert!(h.node_by_name("Atlantis").is_none());
        h.check_invariants().unwrap();
    }

    #[test]
    fn ancestor_queries() {
        let h = geo();
        let usa = h.node_by_name("USA").unwrap();
        let ny = h.node_by_name("NY").unwrap();
        let li = h.node_by_name("Liberty Island").unwrap();
        let la = h.node_by_name("LA").unwrap();

        assert!(h.is_strict_ancestor(usa, li));
        assert!(h.is_strict_ancestor(ny, li));
        assert!(h.is_strict_ancestor(NodeId::ROOT, li));
        assert!(!h.is_strict_ancestor(li, li), "not strict on self");
        assert!(h.is_ancestor_or_self(li, li));
        assert!(!h.is_strict_ancestor(ny, la));
        assert!(!h.is_strict_ancestor(li, ny), "child is not ancestor");

        let anc: Vec<_> = h.ancestors(li).collect();
        assert_eq!(anc, vec![ny, usa, NodeId::ROOT]);
        assert_eq!(h.ancestors(NodeId::ROOT).count(), 0);
    }

    #[test]
    fn lca_and_distance() {
        let h = geo();
        let usa = h.node_by_name("USA").unwrap();
        let ny = h.node_by_name("NY").unwrap();
        let li = h.node_by_name("Liberty Island").unwrap();
        let la = h.node_by_name("LA").unwrap();
        let west = h.node_by_name("Westminster").unwrap();

        assert_eq!(h.lca(li, la), usa);
        assert_eq!(h.lca(li, ny), ny);
        assert_eq!(h.lca(li, li), li);
        assert_eq!(h.lca(li, west), NodeId::ROOT);

        assert_eq!(h.distance(li, li), 0);
        assert_eq!(h.distance(li, ny), 1);
        assert_eq!(h.distance(li, la), 4);
        assert_eq!(h.distance(li, west), 6);
        // Symmetry.
        assert_eq!(h.distance(la, li), h.distance(li, la));
    }

    #[test]
    fn subtree_preorder() {
        let h = geo();
        let usa = h.node_by_name("USA").unwrap();
        let sub = h.subtree(usa);
        assert_eq!(sub.len(), 5); // USA, NY, Liberty Island, CA, LA
        assert_eq!(sub[0], usa);
        for &v in &sub[1..] {
            assert!(h.is_strict_ancestor(usa, v));
        }
    }

    #[test]
    fn ancestor_at_depth_and_branch() {
        let h = geo();
        let usa = h.node_by_name("USA").unwrap();
        let li = h.node_by_name("Liberty Island").unwrap();
        assert_eq!(h.ancestor_at_depth(li, 1), Some(usa));
        assert_eq!(h.ancestor_at_depth(li, 3), Some(li));
        assert_eq!(h.ancestor_at_depth(li, 4), None);
        assert_eq!(h.top_level_branch(li), Some(usa));
        assert_eq!(h.top_level_branch(NodeId::ROOT), None);
    }

    #[test]
    fn most_specific_ancestor_in_candidates() {
        let h = geo();
        let usa = h.node_by_name("USA").unwrap();
        let ny = h.node_by_name("NY").unwrap();
        let li = h.node_by_name("Liberty Island").unwrap();
        let la = h.node_by_name("LA").unwrap();

        // Truth = Liberty Island, candidates contain it: pick it.
        assert_eq!(h.most_specific_ancestor_in(&[usa, ny, li], li), Some(li));
        // Truth absent: pick the deepest candidate ancestor.
        assert_eq!(h.most_specific_ancestor_in(&[usa, ny, la], li), Some(ny));
        assert_eq!(h.most_specific_ancestor_in(&[usa, la], li), Some(usa));
        // No candidate on the truth's root path.
        assert_eq!(h.most_specific_ancestor_in(&[la], li), None);
    }

    #[test]
    fn single_root_hierarchy() {
        let h = HierarchyBuilder::new().build();
        assert!(h.is_empty());
        assert_eq!(h.len(), 1);
        assert_eq!(h.height(), 0);
        assert_eq!(h.lca(NodeId::ROOT, NodeId::ROOT), NodeId::ROOT);
        assert_eq!(h.distance(NodeId::ROOT, NodeId::ROOT), 0);
    }
}
