//! Online truth serving for fitted TDH models.
//!
//! The paper fits its model once over a static claim set; this crate turns
//! that one-shot fit into a long-lived service, following the
//! incremental-conditioning view of probabilistic-database maintenance:
//! persist the fitted posterior, answer queries from it without refitting,
//! and *condition* it on newly arriving evidence instead of recomputing
//! from scratch. Three layers:
//!
//! * [`Snapshot`] — a versioned, hand-rolled serialization (the workspace
//!   builds offline, so no serde; see `vendor/README.md`) of a complete
//!   problem instance: hierarchy, entity universes, records, answers, gold
//!   labels and — optionally — the fitted model parameters `φ`/`ψ`/`μ`
//!   with their [`tdh_core::TdhConfig`]. Round-trips are lossless (floats
//!   are written in shortest-round-trip form or raw little-endian bits and
//!   compared bit-for-bit by the `snapshot_roundtrip` / `snapshot_v2`
//!   property suites); every file opens with a `tdh-snapshot v<n>` header
//!   so formats coexist. v2 (the write format) stores the dominant μ
//!   tables in checksummed binary and decodes them streaming; v1 files
//!   remain readable.
//! * [`wal`] + [`TruthServer::open`] — the durability layer: a segmented,
//!   checksummed write-ahead claim log appended (and fsynced) before
//!   ingest acks, crash recovery that loads the newest snapshot and
//!   replays the uncovered log suffix with a single warm refit, and
//!   [`TruthServer::checkpoint`] compaction that drops log segments a
//!   snapshot now covers.
//! * [`TruthServer`] — the incremental engine and in-process query
//!   front-end: ingest batches of new [`Claim`]s (records and answers),
//!   keep the [`tdh_data::ObservationIndex`] current **in place** via
//!   `ObservationIndex::append_from` (no rebuild), and refit on a
//!   configurable [`RefitPolicy`] using **warm-start EM**
//!   ([`tdh_core::TdhModel::fit_from`]) seeded from the previous posterior
//!   — on realistic batches this converges in a fraction of a cold fit's
//!   iterations (the `tdh-bench` `serving` scenario measures both).
//!   Under [`RefitPolicy::StalenessBound`] small batches take the
//!   **incremental delta path** instead: [`tdh_core::TdhModel::fit_delta`]
//!   re-estimates only the touched objects and
//!   [`TruthServer::refit_delta_now`] publishes a structurally shared
//!   [`ServingState`] *patch* — per-batch work proportional to the delta,
//!   not the corpus, with a drift bound forcing a periodic full fit (the
//!   `tdh-bench` `incremental` scenario measures the flatness).
//!   [`TruthServer::ingest_group`] ingests several batches under one
//!   **group-commit** durability barrier: each batch's claims are WAL
//!   appended unsynced and a single fsync acknowledges the whole group.
//! * [`ServingState`] / [`StateReader`] — the **publish-on-refit** read
//!   path: every fit publishes an immutable snapshot of the queryable
//!   surface (truths + paths + confidences, `φ`/`ψ` keyed by name, the
//!   pre-ranked uncertainty list) behind an atomically swapped `Arc`, so
//!   any number of reader threads answer `truth`/`top_uncertain`-class
//!   queries without ever contending on the writer's lock.
//! * [`serve_tcp`] — a `std::net::TcpListener` endpoint speaking a
//!   tab-separated line protocol with JSON responses. Connections are
//!   handled by a fixed-size worker pool in which **each worker multiplexes
//!   many connections** via short read timeouts — idle clients never pin a
//!   worker, connection count may exceed the pool, and shutdown is prompt
//!   even with idle connections open. Buffered command lines are pipelined
//!   (drained and replied to in order), read commands are served from the
//!   published state without locking, and ingestion is batched:
//!   consecutive `RECORD`/`ANSWER` lines coalesce into one ingest call and
//!   the `INGEST\t<n>` command ships `n` claims as a single batch that is
//!   applied only once all `n` lines have arrived — a client that
//!   disconnects mid-batch applies nothing. A request that panics closes
//!   that one connection with a JSON error; the worker survives.
//! * [`shard`] / [`ShardedServer`] — horizontal scale: objects are
//!   partitioned across N single-writer [`TruthServer`] shards by a
//!   seedless FNV-1a hash of the object name ([`shard_of`] — stable across
//!   processes and restarts), each shard owning its own worker pool,
//!   `shard-<i>` WAL directory, and published [`ServingState`]. Key-routed
//!   calls touch one shard; `top_uncertain` runs a k-way merge over the
//!   pre-ranked per-shard lists under a total order (uncertainty, then
//!   object name) so merged rankings are deterministic. Ingest is atomic
//!   **per shard** (each sub-batch hits one single-writer WAL), not across
//!   shards — see [`ShardedIngestError`].
//! * [`Router`] / [`serve_router`] + [`Collections`] — the multi-tenant
//!   front: named collections (independent sharded datasets behind one
//!   endpoint) with `USE` / `CREATE` / `DROP` / `COLLECTIONS` wire
//!   commands and per-connection collection state, plus the same data
//!   plane as `serve_tcp` with every command routed by key to the right
//!   shard of the selected collection.
//!
//! # Example
//!
//! ```
//! use tdh_serve::{RefitPolicy, Snapshot, TruthServer};
//! use tdh_core::TdhConfig;
//! use tdh_datagen::{generate_birthplaces, BirthPlacesConfig};
//!
//! let cfg = BirthPlacesConfig { n_objects: 80, hierarchy_nodes: 200 };
//! let corpus = generate_birthplaces(&cfg, 7);
//!
//! // Fit once, snapshot, and bring a fresh server up from the snapshot.
//! let mut server = TruthServer::new(
//!     corpus.dataset,
//!     TdhConfig::default(),
//!     RefitPolicy::EveryBatch,
//! );
//! let snap = server.snapshot();
//! let restored = TruthServer::from_snapshot(snap, RefitPolicy::EveryBatch).unwrap();
//! let answer = restored.truth(restored.dataset().object_name(tdh_data::ObjectId(0)));
//! assert!(answer.is_some(), "restored server answers without refitting");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod collection;
mod crc;
mod metrics;
mod net;
mod router;
mod server;
pub mod shard;
mod snapshot;
pub mod state;
pub mod wal;

pub use collection::{CollectionError, Collections};
pub use metrics::ServerMetrics;
pub use net::{serve_tcp, serve_tcp_with, ServeHandle, DEFAULT_NET_WORKERS};
pub use router::{serve_router, serve_router_with, Router, RouterHandle};
pub use server::{
    CheckpointReport, Claim, DurableError, IngestReport, RecoveryReport, RefitKind, RefitPolicy,
    RefitSummary, ServeError, ServerStats, TruthAnswer, TruthServer, DELTA_MAX_DEBT,
};
pub use shard::{
    partition_dataset, shard_of, ShardedIngestError, ShardedIngestReport, ShardedServer,
};
pub use snapshot::{FittedParams, Snapshot, SnapshotError, FORMAT_VERSION};
pub use state::{ServingState, StateReader};
pub use wal::{Wal, WalBatch, WalError, WalOptions};
