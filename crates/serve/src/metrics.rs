//! Serving-side instrumentation: per-server and per-endpoint registries.
//!
//! Two levels, split so cross-shard merging stays meaningful:
//!
//! * [`ServerMetrics`] — one per [`crate::TruthServer`], mirroring every
//!   serving counter into lock-free atomics (so `STATS` never needs the
//!   writer lock) and feeding the ingest/WAL/refit histograms. A sharded
//!   server has one per shard; merging their registries sums counters and
//!   bucket-merges histograms, which is exactly right for every instrument
//!   kept here.
//! * `EndpointMetrics` — one per wire endpoint (a `serve_tcp` listener or a
//!   router), holding per-command request counters/latency histograms and
//!   the gauges whose cross-shard sum would be meaningless (uptime,
//!   publication age). These exist exactly once per scrape, never per
//!   shard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdh_obs::{Counter, Gauge, Histogram, Registry};

use crate::server::{RefitKind, ServerStats};

/// Lock-free mirrors of one [`crate::TruthServer`]'s serving counters, plus
/// its ingest/WAL/refit histograms, all living in a [`Registry`] the
/// `METRICS` command exposes.
///
/// The server updates these at the same points it updates its own fields;
/// readers (the `STATS`/`METRICS` commands, [`ServerMetrics::stats`]) never
/// take the writer lock. Counts are monitoring-grade: a reader racing a
/// writer may see a batch's records before its pending-claim update.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<Registry>,
    start: Instant,
    objects: Arc<Gauge>,
    sources: Arc<Gauge>,
    workers: Arc<Gauge>,
    pending: Arc<Gauge>,
    records: Arc<Counter>,
    answers: Arc<Counter>,
    batches: Arc<Counter>,
    /// `tdh_refits_total{warm, kind}` — indexed `[warm as usize][kind as
    /// usize]` with [`RefitKind::Full`] = 0, [`RefitKind::Delta`] = 1. The
    /// full `{warm} × {kind}` cross product is registered so either label
    /// can be aggregated over without double counting (the cold/delta cell
    /// stays zero — a delta refit always patches a warm baseline).
    refits: [[Arc<Counter>; 2]; 2],
    publications: Arc<Counter>,
    checkpoints: Arc<Counter>,
    batch_claims: Arc<Histogram>,
    refit_us: Arc<Histogram>,
    delta_refit_us: Arc<Histogram>,
    /// Milliseconds since `start` of the newest publication; `u64::MAX`
    /// until the first one.
    last_publication_ms: AtomicU64,
}

impl ServerMetrics {
    /// A fresh registry with every server-level instrument pre-registered.
    pub(crate) fn new() -> Arc<Self> {
        let registry = Registry::new();
        let m = ServerMetrics {
            objects: registry.gauge("tdh_objects", &[]),
            sources: registry.gauge("tdh_sources", &[]),
            workers: registry.gauge("tdh_workers", &[]),
            pending: registry.gauge("tdh_pending_claims", &[]),
            records: registry.counter("tdh_records_total", &[]),
            answers: registry.counter("tdh_answers_total", &[]),
            batches: registry.counter("tdh_ingest_batches_total", &[]),
            refits: {
                let cell = |warm, kind| {
                    registry.counter("tdh_refits_total", &[("warm", warm), ("kind", kind)])
                };
                [
                    [cell("false", "full"), cell("false", "delta")],
                    [cell("true", "full"), cell("true", "delta")],
                ]
            },
            publications: registry.counter("tdh_publications_total", &[]),
            checkpoints: registry.counter("tdh_checkpoints_total", &[]),
            batch_claims: registry.histogram("tdh_ingest_batch_claims", &[]),
            refit_us: registry.histogram("tdh_refit_duration_us", &[]),
            delta_refit_us: registry.histogram("tdh_delta_refit_duration_us", &[]),
            last_publication_ms: AtomicU64::new(u64::MAX),
            start: Instant::now(),
            registry,
        };
        Arc::new(m)
    }

    /// The registry holding this server's instruments (shared with the
    /// model's EM instrumentation).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Histogram/counter handles for the server's write-ahead log.
    pub(crate) fn wal_metrics(&self) -> crate::wal::WalMetrics {
        crate::wal::WalMetrics {
            append_us: self.registry.histogram("tdh_wal_append_us", &[]),
            fsync_us: self.registry.histogram("tdh_wal_fsync_us", &[]),
            appended_bytes: self.registry.counter("tdh_wal_appended_bytes_total", &[]),
            rotations: self.registry.counter("tdh_wal_rotations_total", &[]),
            syncs: self.registry.counter("tdh_wal_syncs_total", &[]),
        }
    }

    /// Refresh the population gauges after the dataset changed.
    pub(crate) fn set_population(&self, objects: usize, sources: usize, workers: usize) {
        self.objects.set(objects as f64);
        self.sources.set(sources as f64);
        self.workers.set(workers as f64);
    }

    /// Record an applied claim batch (or replayed WAL batch).
    pub(crate) fn on_applied(&self, records: usize, answers: usize, pending: usize) {
        self.records.add(records as u64);
        self.answers.add(answers as u64);
        self.pending.set(pending as f64);
    }

    /// Record one ingest (or replay) batch of `claims` claims.
    pub(crate) fn on_batch(&self, claims: usize) {
        self.batches.inc();
        self.batch_claims.record(claims as u64);
    }

    /// Record one refit (full or delta; the delta path additionally feeds
    /// its own latency histogram, whose scale is the delta's size rather
    /// than the corpus').
    pub(crate) fn on_refit(&self, warm: bool, kind: RefitKind, duration: Duration) {
        let kind_idx = match kind {
            RefitKind::Full => 0,
            RefitKind::Delta => 1,
        };
        self.refits[usize::from(warm)][kind_idx].inc();
        self.refit_us.record_duration(duration);
        if kind == RefitKind::Delta {
            self.delta_refit_us.record_duration(duration);
        }
        self.pending.set(0.0);
    }

    /// Record one [`crate::ServingState`] publication.
    pub(crate) fn on_publish(&self) {
        self.publications.inc();
        let ms = u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX - 1);
        self.last_publication_ms.store(ms, Ordering::Relaxed);
    }

    /// Record one checkpoint.
    pub(crate) fn on_checkpoint(&self) {
        self.checkpoints.inc();
    }

    /// Time since this server was constructed.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Age of the newest publication, `None` before the first one.
    pub fn publication_age(&self) -> Option<Duration> {
        let ms = self.last_publication_ms.load(Ordering::Relaxed);
        if ms == u64::MAX {
            return None;
        }
        Some(
            self.start
                .elapsed()
                .saturating_sub(Duration::from_millis(ms)),
        )
    }

    /// The serving counters, read entirely from atomics — no writer lock.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            n_objects: self.objects.get() as usize,
            n_sources: self.sources.get() as usize,
            n_workers: self.workers.get() as usize,
            n_records: self.records.get() as usize,
            n_answers: self.answers.get() as usize,
            pending_claims: self.pending.get() as usize,
            batches: self.batches.get(),
            refits: self.refits.iter().flatten().map(|c| c.get()).sum(),
            publications: self.publications.get(),
        }
    }
}

/// The per-command labels requests are accounted under.
const COMMANDS: &[&str] = &[
    "TRUTH",
    "SOURCE",
    "WORKER",
    "TOPK",
    "CLAIM",
    "INGEST",
    "REFIT",
    "CHECKPOINT",
    "STATS",
    "METRICS",
    "COLLECTION",
    "OTHER",
];

/// Maps a wire command line to its accounting label.
pub(crate) fn command_label(fields: &[&str]) -> &'static str {
    match fields.first().copied() {
        Some("TRUTH") => "TRUTH",
        Some("SOURCE") => "SOURCE",
        Some("WORKER") => "WORKER",
        Some("TOPK") => "TOPK",
        Some("REFIT") => "REFIT",
        Some("CHECKPOINT") => "CHECKPOINT",
        Some("STATS") => "STATS",
        Some("METRICS") => "METRICS",
        Some("USE") | Some("CREATE") | Some("DROP") | Some("COLLECTIONS") => "COLLECTION",
        _ => "OTHER",
    }
}

/// Per-endpoint instrumentation: request counters and latency histograms by
/// command, plus the scrape-time gauges (uptime, publication age) that must
/// exist exactly once per endpoint rather than once per shard.
#[derive(Debug)]
pub(crate) struct EndpointMetrics {
    registry: Arc<Registry>,
    start: Instant,
    uptime: Arc<Gauge>,
    publication_age: Arc<Gauge>,
    commands: Vec<(&'static str, Arc<Counter>, Arc<Histogram>)>,
}

impl EndpointMetrics {
    /// A fresh endpoint registry with every per-command series
    /// pre-registered (so the hot path is a slice scan plus atomics).
    pub(crate) fn new() -> Arc<Self> {
        let registry = Registry::new();
        let commands = COMMANDS
            .iter()
            .map(|&c| {
                (
                    c,
                    registry.counter("tdh_requests_total", &[("command", c)]),
                    registry.histogram("tdh_request_latency_us", &[("command", c)]),
                )
            })
            .collect();
        Arc::new(EndpointMetrics {
            uptime: registry.gauge("tdh_uptime_s", &[]),
            publication_age: registry.gauge("tdh_publication_age_s", &[]),
            commands,
            start: Instant::now(),
            registry,
        })
    }

    /// The endpoint's own registry.
    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Account `n` requests under `label`, with one latency observation.
    pub(crate) fn observe(&self, label: &'static str, n: u64, elapsed: Duration) {
        let (_, counter, hist) = self
            .commands
            .iter()
            .find(|(c, _, _)| *c == label)
            .unwrap_or_else(|| &self.commands[COMMANDS.len() - 1]);
        counter.add(n);
        hist.record_duration(elapsed);
    }

    /// The per-shard request counter `tdh_shard_requests_total{shard,kind}`.
    pub(crate) fn shard_counter(&self, shard: usize, kind: &'static str) -> Arc<Counter> {
        self.registry.counter(
            "tdh_shard_requests_total",
            &[("shard", &shard.to_string()), ("kind", kind)],
        )
    }

    /// Endpoint uptime in seconds.
    pub(crate) fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Refresh the scrape-time gauges just before rendering.
    pub(crate) fn refresh(&self, publication_age: Option<Duration>) {
        self.uptime.set(self.uptime_s());
        if let Some(age) = publication_age {
            self.publication_age.set(age.as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mirror_roundtrips() {
        let m = ServerMetrics::new();
        m.set_population(10, 3, 2);
        m.on_batch(5);
        m.on_applied(4, 1, 5);
        m.on_refit(true, RefitKind::Full, Duration::from_micros(250));
        m.on_refit(true, RefitKind::Delta, Duration::from_micros(50));
        m.on_publish();
        let s = m.stats();
        assert_eq!(s.n_objects, 10);
        assert_eq!(s.n_records, 4);
        assert_eq!(s.n_answers, 1);
        assert_eq!(s.pending_claims, 0);
        assert_eq!(s.batches, 1);
        assert_eq!(s.refits, 2);
        assert_eq!(s.publications, 1);
        assert!(m.publication_age().is_some());
        let text = m.registry().render();
        assert!(text.contains("kind=\"full\""));
        assert!(text.contains("kind=\"delta\""));
        assert!(text.contains("tdh_delta_refit_duration_us_count 1"));
    }

    #[test]
    fn endpoint_accounts_by_command() {
        let e = EndpointMetrics::new();
        e.observe("TRUTH", 1, Duration::from_micros(10));
        e.observe("TRUTH", 1, Duration::from_micros(20));
        e.observe("NOPE", 1, Duration::from_micros(5)); // falls into OTHER
        let text = e.registry().render();
        assert!(text.contains("tdh_requests_total{command=\"TRUTH\"} 2"));
        assert!(text.contains("tdh_requests_total{command=\"OTHER\"} 1"));
        assert!(text.contains("tdh_request_latency_us_count{command=\"TRUTH\"} 2"));
    }

    #[test]
    fn command_labels_cover_the_protocol() {
        assert_eq!(command_label(&["TRUTH", "x"]), "TRUTH");
        assert_eq!(command_label(&["USE", "c"]), "COLLECTION");
        assert_eq!(command_label(&["GIBBERISH"]), "OTHER");
        assert_eq!(command_label(&[]), "OTHER");
    }
}
