//! The immutable published read state behind lock-free serving queries.
//!
//! A [`TruthServer`](crate::TruthServer) is read-dominated in deployment:
//! truth lookups vastly outnumber claim batches. Instead of funnelling every
//! query through the writer's lock, the server follows a
//! **publish-on-refit** discipline — after every (re)fit it precomputes an
//! immutable [`ServingState`] (resolved truths with their paths and
//! confidences, `φ`/`ψ` reliability tables keyed by entity name, and the
//! full uncertainty ranking) and swaps it into a shared slot as one atomic
//! `Arc` replacement. Readers clone the `Arc` out of the slot (a
//! [`StateReader`] handle is cloneable and `Send`, so any number of threads
//! can hold one) and answer queries against a state that can never change
//! underneath them: every answer a reader derives from one `load()` comes
//! from the same publication.
//!
//! The slot is a `RwLock<Arc<ServingState>>` rather than an `AtomicPtr`
//! because the workspace builds offline against `std` only (see
//! `vendor/README.md`) and `Arc` cannot be swapped atomically without
//! either external crates (`arc-swap`) or `unsafe`; the read critical
//! section is a single refcount increment, and writers hold the write lock
//! only for the pointer assignment — the replacement state is fully
//! constructed before the lock is taken.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use tdh_core::{TdhModel, TruthEstimate};
use tdh_data::{Dataset, ObjectId};
use tdh_hierarchy::{Hierarchy, NodeId};

use crate::server::TruthAnswer;

/// One immutable publication of a fitted server's queryable surface.
///
/// Built by the writer after every fit and never mutated afterwards; all
/// lookups are by entity *name*, so readers need no access to the dataset's
/// interning tables (which the writer keeps mutating between publications).
#[derive(Debug)]
pub struct ServingState {
    version: u64,
    truths: HashMap<String, TruthAnswer>,
    phi: HashMap<String, [f64; 3]>,
    psi: HashMap<String, [f64; 3]>,
    /// `(object name, 1 − max μ)` over all objects with candidates, most
    /// uncertain first. Ties break by object **name** — a total order that
    /// does not depend on interning order, so identically ranked lists from
    /// different shards k-way-merge into the same sequence a single server
    /// would have produced.
    uncertain: Vec<(String, f64)>,
}

impl ServingState {
    /// Precompute the queryable surface from the fitted posterior.
    pub(crate) fn compute(
        ds: &Dataset,
        model: &TdhModel,
        est: &TruthEstimate,
        version: u64,
    ) -> Self {
        let h = ds.hierarchy();
        let mut truths = HashMap::with_capacity(est.truths.len());
        let mut scored: Vec<(String, f64)> = Vec::with_capacity(est.truths.len());
        for (oi, truth) in est.truths.iter().enumerate() {
            let mu = &est.confidences[oi];
            let top = mu.iter().copied().fold(0.0f64, f64::max);
            let name = ds.object_name(ObjectId::from_index(oi));
            if let Some(v) = truth {
                truths.insert(
                    name.to_string(),
                    TruthAnswer {
                        value: h.name(*v).to_string(),
                        path: value_path(h, *v),
                        confidence: top,
                    },
                );
            }
            if !mu.is_empty() {
                scored.push((name.to_string(), 1.0 - top));
            }
        }
        // Total order: uncertainty (total_cmp, so a degenerate NaN
        // confidence can never panic a publication), then object name. The
        // name tie-break — not interning order, which differs per shard —
        // makes the ranking merge-stable across shards.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let uncertain = scored;
        let phi = ds
            .sources()
            .filter_map(|s| {
                model
                    .phi_table()
                    .get(s.index())
                    .map(|&p| (ds.source_name(s).to_string(), p))
            })
            .collect();
        let psi = ds
            .workers()
            .map(|w| (ds.worker_name(w).to_string(), model.psi(w)))
            .collect();
        ServingState {
            version,
            truths,
            phi,
            psi,
            uncertain,
        }
    }

    /// The publication counter: `1` for the bootstrap/restore publication,
    /// incremented by every refit. Strictly increasing within one server,
    /// so readers can detect (and tests can assert) publication order.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The estimated truth for `object` as of this publication. `None` for
    /// objects unknown (or candidate-less) at publication time.
    pub fn truth(&self, object: &str) -> Option<&TruthAnswer> {
        self.truths.get(object)
    }

    /// `φ_s` for a source, by name. `None` for sources unknown to the
    /// published fit.
    pub fn source_reliability(&self, source: &str) -> Option<[f64; 3]> {
        self.phi.get(source).copied()
    }

    /// `ψ_w` for a worker, by name (the prior mean for workers the fit saw
    /// no answers from). `None` for workers that joined after publication.
    pub fn worker_reliability(&self, worker: &str) -> Option<[f64; 3]> {
        self.psi.get(worker).copied()
    }

    /// The `k` objects the published fit is least certain about, as
    /// `(object name, 1 − max μ)`, most uncertain first (pre-ranked at
    /// publication; this is a slice of the full ranking).
    pub fn top_uncertain(&self, k: usize) -> &[(String, f64)] {
        &self.uncertain[..k.min(self.uncertain.len())]
    }

    /// Objects with a resolved truth in this publication.
    pub fn n_resolved(&self) -> usize {
        self.truths.len()
    }
}

/// A cloneable, lock-free read handle onto a server's published state.
///
/// Obtained from [`TruthServer::reader`](crate::TruthServer::reader);
/// independent of the server's lifetime and of whatever lock the writer
/// lives behind. Each [`StateReader::load`] returns the newest publication
/// as an `Arc` the reader owns outright.
#[derive(Debug, Clone)]
pub struct StateReader {
    slot: Arc<RwLock<Arc<ServingState>>>,
}

impl StateReader {
    /// The current publication. Internally consistent by construction: all
    /// answers derived from the returned state come from one publication,
    /// no matter how many refits the writer publishes meanwhile.
    pub fn load(&self) -> Arc<ServingState> {
        // A poisoned slot still holds a complete publication (the Arc swap
        // is assignment of a fully built state), so recover instead of
        // propagating the writer's panic to every reader.
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The writer side of the publication slot.
pub(crate) struct StateSlot {
    slot: Arc<RwLock<Arc<ServingState>>>,
}

impl StateSlot {
    /// A slot holding `initial` as its first publication.
    pub(crate) fn new(initial: ServingState) -> Self {
        StateSlot {
            slot: Arc::new(RwLock::new(Arc::new(initial))),
        }
    }

    /// Atomically replace the published state.
    pub(crate) fn publish(&self, state: ServingState) {
        *self.slot.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(state);
    }

    /// The current publication.
    pub(crate) fn load(&self) -> Arc<ServingState> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// A read handle sharing this slot.
    pub(crate) fn reader(&self) -> StateReader {
        StateReader {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl std::fmt::Debug for StateSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateSlot")
            .field("version", &self.load().version())
            .finish()
    }
}

/// Slash-separated root path of a node (root excluded).
pub(crate) fn value_path(h: &Hierarchy, v: NodeId) -> String {
    let mut parts: Vec<&str> = h
        .ancestors(v)
        .filter(|&a| a != NodeId::ROOT)
        .map(|a| h.name(a))
        .collect();
    parts.reverse();
    parts.push(h.name(v));
    parts.join("/")
}
