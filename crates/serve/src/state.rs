//! The immutable published read state behind lock-free serving queries.
//!
//! A [`TruthServer`](crate::TruthServer) is read-dominated in deployment:
//! truth lookups vastly outnumber claim batches. Instead of funnelling every
//! query through the writer's lock, the server follows a
//! **publish-on-refit** discipline — after every (re)fit it precomputes an
//! immutable [`ServingState`] (resolved truths with their paths and
//! confidences, `φ`/`ψ` reliability tables keyed by entity name, and the
//! full uncertainty ranking) and swaps it into a shared slot as one atomic
//! `Arc` replacement. Readers clone the `Arc` out of the slot (a
//! [`StateReader`] handle is cloneable and `Send`, so any number of threads
//! can hold one) and answer queries against a state that can never change
//! underneath them: every answer a reader derives from one `load()` comes
//! from the same publication.
//!
//! Entity names and truth answers are stored behind `Arc`s so that a
//! publication derived from a small claim delta can **structurally share**
//! the untouched majority of the previous one: `ServingState::patch`
//! clones the maps (refcount bumps, not string copies), rebuilds only the
//! touched entries, and splices the re-scored objects back into the
//! uncertainty ranking with one sorted merge — work proportional to the
//! delta plus the map sizes' pointer width, never to the corpus' string
//! bytes.
//!
//! The slot is a `RwLock<Arc<ServingState>>` rather than an `AtomicPtr`
//! because the workspace builds offline against `std` only (see
//! `vendor/README.md`) and `Arc` cannot be swapped atomically without
//! either external crates (`arc-swap`) or `unsafe`; the read critical
//! section is a single refcount increment, and writers hold the write lock
//! only for the pointer assignment — the replacement state is fully
//! constructed before the lock is taken.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

use tdh_core::{TdhModel, TruthEstimate};
use tdh_data::{Dataset, DeltaSet, ObjectId};
use tdh_hierarchy::{Hierarchy, NodeId};

use crate::server::TruthAnswer;

/// One immutable publication of a fitted server's queryable surface.
///
/// Built by the writer after every fit and never mutated afterwards; all
/// lookups are by entity *name*, so readers need no access to the dataset's
/// interning tables (which the writer keeps mutating between publications).
#[derive(Debug)]
pub struct ServingState {
    version: u64,
    truths: HashMap<Arc<str>, Arc<TruthAnswer>>,
    phi: HashMap<Arc<str>, [f64; 3]>,
    psi: HashMap<Arc<str>, [f64; 3]>,
    /// `(object name, 1 − max μ)` over all objects with candidates, most
    /// uncertain first. Ties break by object **name** — a total order that
    /// does not depend on interning order, so identically ranked lists from
    /// different shards k-way-merge into the same sequence a single server
    /// would have produced.
    uncertain: Vec<(Arc<str>, f64)>,
}

/// The publication-wide ranking order: uncertainty descending (`total_cmp`,
/// so a degenerate NaN confidence can never panic a publication), ties by
/// object name. The name tie-break — not interning order, which differs per
/// shard — makes the ranking merge-stable across shards, and gives
/// [`ServingState::patch`] a total order to splice re-scored entries into.
fn rank_order(a: &(Arc<str>, f64), b: &(Arc<str>, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

impl ServingState {
    /// Precompute the queryable surface from the fitted posterior.
    pub(crate) fn compute(
        ds: &Dataset,
        model: &TdhModel,
        est: &TruthEstimate,
        version: u64,
    ) -> Self {
        let h = ds.hierarchy();
        let mut truths = HashMap::with_capacity(est.truths.len());
        let mut scored: Vec<(Arc<str>, f64)> = Vec::with_capacity(est.truths.len());
        for (oi, truth) in est.truths.iter().enumerate() {
            let mu = &est.confidences[oi];
            let top = mu.iter().copied().fold(0.0f64, f64::max);
            let name: Arc<str> = Arc::from(ds.object_name(ObjectId::from_index(oi)));
            if let Some(v) = truth {
                truths.insert(
                    Arc::clone(&name),
                    Arc::new(TruthAnswer {
                        value: h.name(*v).to_string(),
                        path: value_path(h, *v),
                        confidence: top,
                    }),
                );
            }
            if !mu.is_empty() {
                scored.push((name, 1.0 - top));
            }
        }
        scored.sort_by(rank_order);
        let uncertain = scored;
        let phi = ds
            .sources()
            .filter_map(|s| {
                model
                    .phi_table()
                    .get(s.index())
                    .map(|&p| (Arc::from(ds.source_name(s)), p))
            })
            .collect();
        let psi = ds
            .workers()
            .map(|w| (Arc::from(ds.worker_name(w)), model.psi(w)))
            .collect();
        ServingState {
            version,
            truths,
            phi,
            psi,
            uncertain,
        }
    }

    /// Derive the next publication from this one after a delta refit,
    /// rebuilding only what the `delta` touched.
    ///
    /// The untouched majority is shared structurally: the maps are cloned
    /// (per-entry `Arc` refcount bumps), then only the delta's objects get a
    /// fresh [`TruthAnswer`] and only the implicated sources/workers a fresh
    /// reliability row. The uncertainty ranking is patched by
    /// remove-and-reinsert — touched names are filtered out, the re-scored
    /// replacements sorted among themselves, and the two sorted runs merged
    /// in one pass — so the result is ordered exactly as [`Self::compute`]
    /// would have ordered it (same [`rank_order`] total order), in
    /// `O(|uncertain| + |delta| log |delta|)` comparisons and zero string
    /// allocations for untouched objects.
    pub(crate) fn patch(
        &self,
        ds: &Dataset,
        model: &TdhModel,
        est: &TruthEstimate,
        delta: &DeltaSet,
        version: u64,
    ) -> Self {
        let h = ds.hierarchy();
        let mut truths = self.truths.clone();
        let mut phi = self.phi.clone();
        let mut psi = self.psi.clone();

        // Rebuild the touched objects' answers and scores.
        let mut touched_names: HashSet<Arc<str>> = HashSet::with_capacity(delta.objects().len());
        let mut fresh: Vec<(Arc<str>, f64)> = Vec::with_capacity(delta.objects().len());
        for t in delta.objects() {
            let oi = t.object.index();
            let mu = &est.confidences[oi];
            let top = mu.iter().copied().fold(0.0f64, f64::max);
            // Reuse the previous publication's interned name when the
            // object was already ranked; intern once otherwise.
            let name: Arc<str> = match self.truths.get_key_value(ds.object_name(t.object)) {
                Some((k, _)) => Arc::clone(k),
                None => Arc::from(ds.object_name(t.object)),
            };
            match est.truths[oi] {
                Some(v) => {
                    truths.insert(
                        Arc::clone(&name),
                        Arc::new(TruthAnswer {
                            value: h.name(v).to_string(),
                            path: value_path(h, v),
                            confidence: top,
                        }),
                    );
                }
                None => {
                    truths.remove(&*name);
                }
            }
            if !mu.is_empty() {
                fresh.push((Arc::clone(&name), 1.0 - top));
            }
            touched_names.insert(name);
        }
        fresh.sort_by(rank_order);

        // Remove-and-reinsert: drop the touched objects' stale entries,
        // then merge the (still sorted) survivors with the re-scored run.
        let mut uncertain = Vec::with_capacity(self.uncertain.len() + fresh.len());
        let mut fresh = fresh.into_iter().peekable();
        for kept in self.uncertain.iter() {
            if touched_names.contains(&*kept.0) {
                continue;
            }
            while fresh
                .peek()
                .is_some_and(|f| rank_order(f, kept) == std::cmp::Ordering::Less)
            {
                uncertain.push(fresh.next().expect("peeked"));
            }
            uncertain.push(kept.clone());
        }
        uncertain.extend(fresh);

        // Refresh the implicated sources'/workers' reliability rows.
        for &s in delta.sources() {
            if let Some(&p) = model.phi_table().get(s.index()) {
                let name = ds.source_name(s);
                match phi.get_key_value(name) {
                    Some((k, _)) => {
                        let k = Arc::clone(k);
                        phi.insert(k, p);
                    }
                    None => {
                        phi.insert(Arc::from(name), p);
                    }
                }
            }
        }
        for &w in delta.workers() {
            let name = ds.worker_name(w);
            let row = model.psi(w);
            match psi.get_key_value(name) {
                Some((k, _)) => {
                    let k = Arc::clone(k);
                    psi.insert(k, row);
                }
                None => {
                    psi.insert(Arc::from(name), row);
                }
            }
        }

        ServingState {
            version,
            truths,
            phi,
            psi,
            uncertain,
        }
    }

    /// The publication counter: `1` for the bootstrap/restore publication,
    /// incremented by every refit. Strictly increasing within one server,
    /// so readers can detect (and tests can assert) publication order.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The estimated truth for `object` as of this publication. `None` for
    /// objects unknown (or candidate-less) at publication time.
    pub fn truth(&self, object: &str) -> Option<&TruthAnswer> {
        self.truths.get(object).map(|a| &**a)
    }

    /// `φ_s` for a source, by name. `None` for sources unknown to the
    /// published fit.
    pub fn source_reliability(&self, source: &str) -> Option<[f64; 3]> {
        self.phi.get(source).copied()
    }

    /// `ψ_w` for a worker, by name (the prior mean for workers the fit saw
    /// no answers from). `None` for workers that joined after publication.
    pub fn worker_reliability(&self, worker: &str) -> Option<[f64; 3]> {
        self.psi.get(worker).copied()
    }

    /// The `k` objects the published fit is least certain about, as
    /// `(object name, 1 − max μ)`, most uncertain first (pre-ranked at
    /// publication; this is a slice of the full ranking).
    pub fn top_uncertain(&self, k: usize) -> &[(Arc<str>, f64)] {
        &self.uncertain[..k.min(self.uncertain.len())]
    }

    /// Objects with a resolved truth in this publication.
    pub fn n_resolved(&self) -> usize {
        self.truths.len()
    }
}

/// A cloneable, lock-free read handle onto a server's published state.
///
/// Obtained from [`TruthServer::reader`](crate::TruthServer::reader);
/// independent of the server's lifetime and of whatever lock the writer
/// lives behind. Each [`StateReader::load`] returns the newest publication
/// as an `Arc` the reader owns outright.
#[derive(Debug, Clone)]
pub struct StateReader {
    slot: Arc<RwLock<Arc<ServingState>>>,
}

impl StateReader {
    /// The current publication. Internally consistent by construction: all
    /// answers derived from the returned state come from one publication,
    /// no matter how many refits the writer publishes meanwhile.
    pub fn load(&self) -> Arc<ServingState> {
        // A poisoned slot still holds a complete publication (the Arc swap
        // is assignment of a fully built state), so recover instead of
        // propagating the writer's panic to every reader.
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The writer side of the publication slot.
pub(crate) struct StateSlot {
    slot: Arc<RwLock<Arc<ServingState>>>,
}

impl StateSlot {
    /// A slot holding `initial` as its first publication.
    pub(crate) fn new(initial: ServingState) -> Self {
        StateSlot {
            slot: Arc::new(RwLock::new(Arc::new(initial))),
        }
    }

    /// Atomically replace the published state.
    pub(crate) fn publish(&self, state: ServingState) {
        *self.slot.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(state);
    }

    /// The current publication.
    pub(crate) fn load(&self) -> Arc<ServingState> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// A read handle sharing this slot.
    pub(crate) fn reader(&self) -> StateReader {
        StateReader {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl std::fmt::Debug for StateSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateSlot")
            .field("version", &self.load().version())
            .finish()
    }
}

/// Slash-separated root path of a node (root excluded).
pub(crate) fn value_path(h: &Hierarchy, v: NodeId) -> String {
    let mut parts: Vec<&str> = h
        .ancestors(v)
        .filter(|&a| a != NodeId::ROOT)
        .map(|a| h.name(a))
        .collect();
    parts.reverse();
    parts.push(h.name(v));
    parts.join("/")
}
