//! Named collections: many independent sharded datasets behind one
//! endpoint.
//!
//! The multi-tenant model (after KSdb's collections): a [`Collections`]
//! registry maps names to [`ShardedServer`]s, each a fully independent
//! tenant — its own hierarchy, shards, fits and (when durable) data
//! directories. Connections select a tenant with `USE <collection>` and
//! every data command then routes inside it; tenants never see each
//! other's objects, sources or workers. A registry built with a
//! **template** (a hierarchy plus fit configuration) additionally allows
//! `CREATE <collection>` over the wire: the new tenant starts from an
//! empty dataset on the template hierarchy and grows entirely by
//! ingestion.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use tdh_core::TdhConfig;
use tdh_data::Dataset;
use tdh_hierarchy::Hierarchy;

use crate::server::RefitPolicy;
use crate::shard::ShardedServer;

/// Errors from the [`Collections`] registry.
#[derive(Debug)]
pub enum CollectionError {
    /// The name is already registered.
    AlreadyExists(String),
    /// No collection of this name is registered.
    Unknown(String),
    /// `CREATE` on a registry built without a template.
    NoTemplate,
    /// Collection names are restricted to `[A-Za-z0-9._-]+` so they stay
    /// protocol-safe and usable as directory names.
    InvalidName(String),
}

impl fmt::Display for CollectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectionError::AlreadyExists(n) => write!(f, "collection {n:?} already exists"),
            CollectionError::Unknown(n) => write!(f, "unknown collection {n:?}"),
            CollectionError::NoTemplate => write!(
                f,
                "this endpoint has no collection template; collections must be registered \
                 server-side"
            ),
            CollectionError::InvalidName(n) => write!(
                f,
                "invalid collection name {n:?} (allowed: letters, digits, '.', '_', '-')"
            ),
        }
    }
}

impl std::error::Error for CollectionError {}

/// How a registry creates tenants on `CREATE`: every new collection is an
/// empty dataset on this hierarchy, sharded and fitted with these knobs.
#[derive(Debug, Clone)]
struct Template {
    hierarchy: Hierarchy,
    cfg: TdhConfig,
    policy: RefitPolicy,
    n_shards: usize,
}

/// A registry of named tenants, shared between the router endpoint and
/// the embedding process (both sides hold `Arc<Collections>`; the registry
/// is internally locked, so collections can be added or dropped while the
/// endpoint serves).
pub struct Collections {
    inner: RwLock<BTreeMap<String, Arc<ShardedServer>>>,
    template: Option<Template>,
}

impl Collections {
    /// An empty registry without a template: tenants can only be
    /// registered server-side via [`Collections::insert`] and wire
    /// `CREATE` is refused.
    pub fn new() -> Self {
        Collections {
            inner: RwLock::new(BTreeMap::new()),
            template: None,
        }
    }

    /// An empty registry whose `CREATE` (wire or [`Collections::create`])
    /// starts tenants as empty datasets on `hierarchy`, partitioned over
    /// `n_shards` shards and fitted with `cfg`/`policy`.
    pub fn with_template(
        hierarchy: Hierarchy,
        cfg: TdhConfig,
        policy: RefitPolicy,
        n_shards: usize,
    ) -> Self {
        Collections {
            inner: RwLock::new(BTreeMap::new()),
            template: Some(Template {
                hierarchy,
                cfg,
                policy,
                n_shards,
            }),
        }
    }

    fn validate(name: &str) -> Result<(), CollectionError> {
        let ok = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if ok {
            Ok(())
        } else {
            Err(CollectionError::InvalidName(name.to_string()))
        }
    }

    /// Register a pre-built tenant under `name`.
    pub fn insert(
        &self,
        name: &str,
        server: ShardedServer,
    ) -> Result<Arc<ShardedServer>, CollectionError> {
        Self::validate(name)?;
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(CollectionError::AlreadyExists(name.to_string()));
        }
        let server = Arc::new(server);
        map.insert(name.to_string(), Arc::clone(&server));
        Ok(server)
    }

    /// Create an empty tenant from the template (see
    /// [`Collections::with_template`]).
    pub fn create(&self, name: &str) -> Result<Arc<ShardedServer>, CollectionError> {
        Self::validate(name)?;
        let t = self.template.as_ref().ok_or(CollectionError::NoTemplate)?;
        // Build outside the lock (the cold fit of an empty dataset is
        // cheap but not free), then double-check the name on insert.
        let server = ShardedServer::new(
            Dataset::new(t.hierarchy.clone()),
            t.cfg.clone(),
            t.policy,
            t.n_shards,
        );
        self.insert(name, server)
    }

    /// Look up a tenant.
    pub fn get(&self, name: &str) -> Option<Arc<ShardedServer>> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Unregister a tenant. Existing `Arc` handles (including connections
    /// that `USE`d it) keep the shards alive until dropped, but the name
    /// is immediately free and new lookups miss.
    pub fn drop_collection(&self, name: &str) -> Result<(), CollectionError> {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| CollectionError::Unknown(name.to_string()))
    }

    /// Registered names, sorted.
    pub fn list(&self) -> Vec<String> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Collections {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Collections {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collections")
            .field("names", &self.list())
            .field("has_template", &self.template.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn small_hierarchy() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        b.build()
    }

    #[test]
    fn registry_crud_and_name_validation() {
        let c = Collections::with_template(
            small_hierarchy(),
            TdhConfig::default(),
            RefitPolicy::EveryBatch,
            2,
        );
        assert!(c.is_empty());
        let t = c.create("tenant-a").expect("create");
        assert_eq!(t.n_shards(), 2);
        assert!(matches!(
            c.create("tenant-a"),
            Err(CollectionError::AlreadyExists(_))
        ));
        assert!(matches!(
            c.create("has space"),
            Err(CollectionError::InvalidName(_))
        ));
        assert!(matches!(c.create(""), Err(CollectionError::InvalidName(_))));
        c.create("tenant-b").expect("create b");
        assert_eq!(
            c.list(),
            vec!["tenant-a".to_string(), "tenant-b".to_string()]
        );
        c.drop_collection("tenant-a").expect("drop");
        assert!(c.get("tenant-a").is_none());
        assert!(matches!(
            c.drop_collection("tenant-a"),
            Err(CollectionError::Unknown(_))
        ));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn create_without_template_is_refused() {
        let c = Collections::new();
        assert!(matches!(c.create("x"), Err(CollectionError::NoTemplate)));
        // But server-side registration still works.
        let server = ShardedServer::new(
            Dataset::new(small_hierarchy()),
            TdhConfig::default(),
            RefitPolicy::EveryBatch,
            1,
        );
        c.insert("x", server).expect("insert");
        assert!(c.get("x").is_some());
    }

    #[test]
    fn dropped_collection_stays_alive_for_holders() {
        let c = Collections::with_template(
            small_hierarchy(),
            TdhConfig::default(),
            RefitPolicy::EveryBatch,
            1,
        );
        let held = c.create("t").expect("create");
        c.drop_collection("t").expect("drop");
        // The handle still answers; the name is free for reuse.
        assert_eq!(held.n_shards(), 1);
        c.create("t").expect("recreate");
    }
}
