//! Horizontal partitioning: one logical truth server over N shard
//! [`TruthServer`]s.
//!
//! One `TruthServer` is one dataset with one writer lock and one EM fit —
//! fine for a tenant, a ceiling for "heavy traffic from millions of
//! users". A [`ShardedServer`] splits the **object universe** across `N`
//! independent shards by a stable hash of the object *name*
//! ([`shard_of`]): every claim, truth lookup and uncertainty entry for an
//! object lives on exactly one shard, so shards share nothing — each owns
//! its own dataset, fitted model (and therefore its own EM thread pool),
//! published [`ServingState`], and, when durable, its own WAL directory
//! (`<dir>/shard-<i>`), closing the per-shard-WAL follow-up from the
//! durability PR. Writers on different shards proceed in parallel; readers
//! stay lock-free per shard through the usual [`StateReader`] publications.
//!
//! Cross-shard queries are merges:
//!
//! * `TOPK` — every shard publishes its uncertainty ranking pre-sorted by
//!   the **total** order (uncertainty desc, then object name), so the
//!   router's k-way merge is deterministic and — because each object is on
//!   exactly one shard — reproduces the ranking a single unsharded server
//!   would publish, whenever the per-shard fits agree on the scores.
//! * `SOURCE`/`WORKER` — a source or worker may have claims on several
//!   shards; its reliability is reported as the **mean** of the per-shard
//!   tables over the shards that know the entity.
//!
//! # What sharding trades away
//!
//! Each shard fits its model on its own objects only, so reliability
//! estimates condition on a subset of each source's/worker's claims: φ/ψ
//! (and through them, confidences) can differ from a joint fit. Truth
//! *decisions* are typically insensitive to this — the equivalence suite
//! pins `TRUTH`/`TOPK` agreement across shard counts on a fixed corpus —
//! but the fits are independent by construction. Likewise, an ingest batch
//! spanning shards is atomic **per shard**, not across shards: there is no
//! cross-shard transaction, and a rejected sub-batch on one shard does not
//! roll back the sub-batches other shards already applied (the error
//! reply says which shard rejected and what had landed).

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use tdh_core::TdhConfig;
use tdh_data::Dataset;

use crate::metrics::ServerMetrics;
use crate::server::{
    CheckpointReport, Claim, DurableError, RefitPolicy, RefitSummary, ServeError, ServerStats,
    TruthAnswer, TruthServer,
};
use crate::state::{ServingState, StateReader};

/// The shard an object name routes to: FNV-1a over the name's bytes,
/// reduced mod `n_shards`.
///
/// The hash is a fixed pure function — no per-process seeding (unlike
/// `std`'s default `RandomState`) — so routing is stable across process
/// restarts and across machines: a recovered [`ShardedServer`] finds every
/// object exactly where the pre-crash process put it. Every name routes to
/// exactly one shard by construction; `n_shards == 0` is treated as 1.
pub fn shard_of(object: &str, n_shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in object.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % n_shards.max(1) as u64) as usize
}

/// Split `ds` into `n_shards` disjoint per-shard datasets by [`shard_of`]
/// on object names. Each shard clones the hierarchy and re-interns only
/// the objects routed to it (plus the sources/workers with claims there);
/// gold labels follow their objects.
pub fn partition_dataset(ds: &Dataset, n_shards: usize) -> Vec<Dataset> {
    let n_shards = n_shards.max(1);
    let h = ds.hierarchy();
    let mut shards: Vec<Dataset> = (0..n_shards).map(|_| Dataset::new(h.clone())).collect();
    // Objects first (including claim-less ones), so gold labels and
    // interning survive even for objects no record mentions.
    for o in ds.objects() {
        let name = ds.object_name(o);
        let shard = &mut shards[shard_of(name, n_shards)];
        let so = shard.intern_object(name);
        if let Some(g) = ds.gold(o) {
            shard.set_gold(so, g);
        }
    }
    for r in ds.records() {
        let name = ds.object_name(r.object);
        let shard = &mut shards[shard_of(name, n_shards)];
        let o = shard.intern_object(name);
        let s = shard.intern_source(ds.source_name(r.source));
        shard.add_record(o, s, r.value);
    }
    for a in ds.answers() {
        let name = ds.object_name(a.object);
        let shard = &mut shards[shard_of(name, n_shards)];
        let o = shard.intern_object(name);
        let w = shard.intern_worker(ds.worker_name(a.worker));
        shard.add_answer(o, w, a.value);
    }
    shards
}

/// The outcome of one [`ShardedServer::ingest`] batch, summed over the
/// shards it touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedIngestReport {
    /// Records appended across all shards.
    pub appended_records: usize,
    /// Answers appended across all shards.
    pub appended_answers: usize,
    /// Claims pending (unfitted) across all shards after the batch.
    pub pending: usize,
    /// Shards that received a non-empty sub-batch.
    pub shards_touched: usize,
    /// Refits the batch triggered (per shard's [`RefitPolicy`]).
    pub refits: usize,
}

/// A shard rejected its sub-batch. Atomicity is **per shard**: the failed
/// shard applied nothing of its sub-batch (and nothing past the offending
/// claim), but sub-batches already applied on other shards stay applied —
/// `applied` reports what landed before and despite the failure.
#[derive(Debug)]
pub struct ShardedIngestError {
    /// The shard that rejected its sub-batch.
    pub shard: usize,
    /// The shard-local rejection.
    pub error: ServeError,
    /// What the batch as a whole had applied when the error surfaced.
    pub applied: ShardedIngestReport,
}

impl std::fmt::Display for ShardedIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: {} (cross-shard batches are atomic per shard: {} records and {} answers \
             on other shards stay applied)",
            self.shard, self.error, self.applied.appended_records, self.applied.appended_answers
        )
    }
}

impl std::error::Error for ShardedIngestError {}

/// N share-nothing [`TruthServer`] shards behind one logical surface.
///
/// Writers lock one shard at a time (each shard sits behind its own
/// `Mutex`), readers go through per-shard [`StateReader`]s without any
/// lock. See the [module docs](self) for the partitioning and merge
/// semantics.
pub struct ShardedServer {
    shards: Vec<Mutex<TruthServer>>,
    readers: Vec<StateReader>,
    metrics: Vec<Arc<ServerMetrics>>,
}

impl ShardedServer {
    /// Partition `ds` across `n_shards` shards ([`partition_dataset`]) and
    /// cold-fit one [`TruthServer`] per shard. `n_shards == 0` is treated
    /// as 1.
    pub fn new(ds: Dataset, cfg: TdhConfig, policy: RefitPolicy, n_shards: usize) -> Self {
        let servers: Vec<TruthServer> = partition_dataset(&ds, n_shards)
            .into_iter()
            .map(|shard_ds| TruthServer::new(shard_ds, cfg.clone(), policy))
            .collect();
        Self::from_servers(servers)
    }

    /// [`ShardedServer::new`] with durability: shard `i` journals under
    /// `dir/shard-<i>` — its own WAL segments and snapshot, recoverable
    /// independently of every other shard.
    pub fn create_durable(
        dir: &Path,
        ds: Dataset,
        cfg: TdhConfig,
        policy: RefitPolicy,
        n_shards: usize,
    ) -> Result<Self, DurableError> {
        let mut servers = Vec::with_capacity(n_shards.max(1));
        for (i, shard_ds) in partition_dataset(&ds, n_shards).into_iter().enumerate() {
            servers.push(TruthServer::create_durable(
                &dir.join(format!("shard-{i}")),
                shard_ds,
                cfg.clone(),
                policy,
            )?);
        }
        Ok(Self::from_servers(servers))
    }

    /// Recover a durable sharded server from a directory written by
    /// [`ShardedServer::create_durable`]: shard count is discovered from
    /// the `shard-<i>` subdirectories and each shard recovers through
    /// [`TruthServer::open`] (snapshot + WAL-suffix replay + one warm
    /// refit). Routing is identical to the writing process because
    /// [`shard_of`] is seedless.
    pub fn open(dir: &Path, policy: RefitPolicy) -> Result<Self, DurableError> {
        let mut servers = Vec::new();
        while dir.join(format!("shard-{}", servers.len())).exists() {
            let shard_dir = dir.join(format!("shard-{}", servers.len()));
            servers.push(TruthServer::open(&shard_dir, policy)?);
        }
        if servers.is_empty() {
            return Err(DurableError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no shard directories (shard-0, …) under {}", dir.display()),
            )));
        }
        Ok(Self::from_servers(servers))
    }

    fn from_servers(servers: Vec<TruthServer>) -> Self {
        let readers = servers.iter().map(TruthServer::reader).collect();
        let metrics = servers.iter().map(TruthServer::metrics).collect();
        ShardedServer {
            shards: servers.into_iter().map(Mutex::new).collect(),
            readers,
            metrics,
        }
    }

    /// How many shards this server partitions over.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `object` routes to.
    pub fn shard_for(&self, object: &str) -> usize {
        shard_of(object, self.shards.len())
    }

    /// Lock-free read handles, one per shard, in shard order. Cloneable
    /// and independent of the server's lifetime, like
    /// [`TruthServer::reader`].
    pub fn readers(&self) -> Vec<StateReader> {
        self.readers.clone()
    }

    /// Shard `i`'s writer, recovering from poison (a panic on a previous
    /// request must not condemn the shard; batch application keeps its
    /// state consistent at claim granularity).
    pub(crate) fn locked(&self, i: usize) -> MutexGuard<'_, TruthServer> {
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Group `claims` by destination shard, preserving in-shard order.
    /// Returns `(shard, claims)` pairs for non-empty groups only, in shard
    /// order.
    pub(crate) fn group_by_shard<'c>(&self, claims: &'c [Claim]) -> Vec<(usize, Vec<&'c Claim>)> {
        let mut groups: Vec<Vec<&Claim>> = vec![Vec::new(); self.shards.len()];
        for claim in claims {
            let object = match claim {
                Claim::Record { object, .. } | Claim::Answer { object, .. } => object,
            };
            groups[self.shard_for(object)].push(claim);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect()
    }

    /// Ingest a batch, routing each claim to its object's shard; each
    /// shard receives its sub-batch in one [`TruthServer::ingest`] call
    /// (WAL-acked and refit-policed shard-locally). Per-shard atomic, not
    /// cross-shard — see [`ShardedIngestError`].
    pub fn ingest(&self, claims: &[Claim]) -> Result<ShardedIngestReport, ShardedIngestError> {
        let mut total = ShardedIngestReport::default();
        for (shard, group) in self.group_by_shard(claims) {
            let owned: Vec<Claim> = group.into_iter().cloned().collect();
            match self.locked(shard).ingest(&owned) {
                Ok(report) => {
                    total.appended_records += report.appended_records;
                    total.appended_answers += report.appended_answers;
                    total.pending += report.pending;
                    total.shards_touched += 1;
                    total.refits += usize::from(report.refit.is_some());
                }
                Err(error) => {
                    return Err(ShardedIngestError {
                        shard,
                        error,
                        applied: total,
                    })
                }
            }
        }
        Ok(total)
    }

    /// Ingest several batches with per-shard **group commit**: every
    /// batch is split along shard lines, then each shard receives all of
    /// its sub-batches in one [`TruthServer::ingest_group`] call — one
    /// fsync per shard for the whole group instead of one per
    /// (batch × shard). Result `i` mirrors what [`ShardedServer::ingest`]
    /// would have reported for `batches[i]`, except that a failed group
    /// sync marks every batch that touched the failing shard
    /// unacknowledged and per-shard refits are policy-checked once at the
    /// group boundary (counted on the group's last batch touching the
    /// shard).
    pub fn ingest_group(
        &self,
        batches: &[Vec<Claim>],
    ) -> Vec<Result<ShardedIngestReport, ShardedIngestError>> {
        // Split every batch along shard lines up front, remembering which
        // batch each sub-batch came from.
        let mut per_shard: Vec<Vec<(usize, Vec<Claim>)>> = vec![Vec::new(); self.shards.len()];
        for (bi, batch) in batches.iter().enumerate() {
            for (shard, group) in self.group_by_shard(batch) {
                let owned: Vec<Claim> = group.into_iter().cloned().collect();
                per_shard[shard].push((bi, owned));
            }
        }

        let mut totals: Vec<ShardedIngestReport> =
            (0..batches.len()).map(|_| Default::default()).collect();
        let mut failures: Vec<Option<(usize, ServeError)>> =
            (0..batches.len()).map(|_| None).collect();
        for (shard, subs) in per_shard.into_iter().enumerate() {
            if subs.is_empty() {
                continue;
            }
            let owned: Vec<Vec<Claim>> = subs.iter().map(|(_, claims)| claims.clone()).collect();
            let reports = self.locked(shard).ingest_group(&owned);
            for ((bi, _), result) in subs.iter().zip(reports) {
                match result {
                    Ok(report) => {
                        let total = &mut totals[*bi];
                        total.appended_records += report.appended_records;
                        total.appended_answers += report.appended_answers;
                        total.pending += report.pending;
                        total.shards_touched += 1;
                        total.refits += usize::from(report.refit.is_some());
                    }
                    Err(error) => {
                        if failures[*bi].is_none() {
                            failures[*bi] = Some((shard, error));
                        }
                    }
                }
            }
        }
        totals
            .into_iter()
            .zip(failures)
            .map(|(applied, failure)| match failure {
                // `applied` reflects every shard that accepted the batch,
                // including those processed after the failing one.
                Some((shard, error)) => Err(ShardedIngestError {
                    shard,
                    error,
                    applied,
                }),
                None => Ok(applied),
            })
            .collect()
    }

    /// Refit every shard now (shard `i`'s summary at index `i`). Shards
    /// refit one after another under their own locks; readers keep
    /// answering from each shard's previous publication until its refit
    /// publishes.
    pub fn refit_now(&self) -> Vec<RefitSummary> {
        (0..self.shards.len())
            .map(|i| self.locked(i).refit_now())
            .collect()
    }

    /// Checkpoint every durable shard (snapshot + WAL compaction), shard
    /// `i`'s report at index `i`.
    pub fn checkpoint(&self) -> Result<Vec<CheckpointReport>, DurableError> {
        (0..self.shards.len())
            .map(|i| self.locked(i).checkpoint())
            .collect()
    }

    /// The estimated truth for `object`, answered lock-free from its
    /// shard's newest publication.
    pub fn truth(&self, object: &str) -> Option<TruthAnswer> {
        self.readers[self.shard_for(object)]
            .load()
            .truth(object)
            .cloned()
    }

    /// `φ_s` for a source, averaged element-wise over the shards whose fit
    /// knows the source (each shard conditions on its own objects' claims
    /// only). `None` if no shard knows it.
    pub fn source_reliability(&self, source: &str) -> Option<[f64; 3]> {
        mean_tables(
            self.readers
                .iter()
                .filter_map(|r| r.load().source_reliability(source)),
        )
    }

    /// `ψ_w` for a worker, averaged like
    /// [`ShardedServer::source_reliability`].
    pub fn worker_reliability(&self, worker: &str) -> Option<[f64; 3]> {
        mean_tables(
            self.readers
                .iter()
                .filter_map(|r| r.load().worker_reliability(worker)),
        )
    }

    /// The `k` objects the shard fits are least certain about: a k-way
    /// merge of the per-shard pre-ranked lists under the same total order
    /// every shard sorts by (uncertainty desc, then object name), so the
    /// result is deterministic and — objects living on exactly one shard
    /// each — agrees with an unsharded ranking whenever the per-shard
    /// scores do.
    pub fn top_uncertain(&self, k: usize) -> Vec<(String, f64)> {
        let states: Vec<Arc<ServingState>> = self.readers.iter().map(StateReader::load).collect();
        merge_topk(states.iter().map(|s| s.top_uncertain(k)), k)
    }

    /// Each shard's [`ServerMetrics`], in shard order — lock-free mirrors
    /// of the shard counters plus the per-shard WAL/refit/EM instruments
    /// (the router merges these registries for its `METRICS` reply).
    pub fn shard_metrics(&self) -> &[Arc<ServerMetrics>] {
        &self.metrics
    }

    /// Age of the newest publication across all shards (the freshest
    /// shard wins), `None` before any shard has published.
    pub fn publication_age(&self) -> Option<std::time::Duration> {
        self.metrics
            .iter()
            .filter_map(|m| m.publication_age())
            .min()
    }

    /// Serving counters summed over shards, read lock-free from each
    /// shard's atomic mirrors ([`ServerMetrics::stats`]) — a held writer
    /// lock on any shard never delays this. Objects/records/answers
    /// partition cleanly (each lives on one shard); a source or worker
    /// with claims on several shards is counted once **per shard**.
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats {
            n_objects: 0,
            n_sources: 0,
            n_workers: 0,
            n_records: 0,
            n_answers: 0,
            pending_claims: 0,
            batches: 0,
            refits: 0,
            publications: 0,
        };
        for m in &self.metrics {
            let s = m.stats();
            total.n_objects += s.n_objects;
            total.n_sources += s.n_sources;
            total.n_workers += s.n_workers;
            total.n_records += s.n_records;
            total.n_answers += s.n_answers;
            total.pending_claims += s.pending_claims;
            total.batches += s.batches;
            total.refits += s.refits;
            total.publications += s.publications;
        }
        total
    }
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("n_shards", &self.shards.len())
            .finish()
    }
}

/// Element-wise mean of reliability triples; `None` on an empty iterator.
fn mean_tables(tables: impl Iterator<Item = [f64; 3]>) -> Option<[f64; 3]> {
    let mut sum = [0.0f64; 3];
    let mut n = 0usize;
    for t in tables {
        for (acc, x) in sum.iter_mut().zip(t) {
            *acc += x;
        }
        n += 1;
    }
    (n > 0).then(|| sum.map(|x| x / n as f64))
}

/// Merge pre-ranked `(object, uncertainty)` lists into the top `k` under
/// the shared total order (uncertainty desc via `total_cmp`, then name).
pub(crate) fn merge_topk<'a, S: AsRef<str> + 'a>(
    lists: impl Iterator<Item = &'a [(S, f64)]>,
    k: usize,
) -> Vec<(String, f64)> {
    let mut all: Vec<(String, f64)> = Vec::new();
    for list in lists {
        // Each input is already sorted and an object is on exactly one
        // shard, so its own top-k is all a shard can contribute.
        all.extend(
            list[..k.min(list.len())]
                .iter()
                .map(|(o, u)| (o.as_ref().to_string(), *u)),
        );
    }
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_datagen::{generate_birthplaces, BirthPlacesConfig};

    fn corpus() -> Dataset {
        generate_birthplaces(
            &BirthPlacesConfig {
                n_objects: 60,
                hierarchy_nodes: 150,
            },
            11,
        )
        .dataset
    }

    #[test]
    fn partitioner_is_total_and_stable() {
        let names = ["", "a", "Statue of Liberty", "obj-42", "ümlaut"];
        for n in [1usize, 2, 3, 4, 7] {
            for name in names {
                let s = shard_of(name, n);
                assert!(s < n, "{name:?} routed to {s} of {n}");
                assert_eq!(s, shard_of(name, n), "routing must be deterministic");
            }
        }
        // Seedless FNV-1a: pin exact values so any change to the hash —
        // which would strand every existing durable shard layout — fails
        // loudly. (Stability across *process restarts* is exactly what
        // these constants witness.)
        assert_eq!(shard_of("Statue of Liberty", 4), 1);
        assert_eq!(shard_of("Big Ben", 4), 0);
        assert_eq!(shard_of("obj-0", 2), 1);
    }

    #[test]
    fn partition_covers_every_claim_exactly_once() {
        let ds = corpus();
        for n in [1usize, 2, 4] {
            let shards = partition_dataset(&ds, n);
            assert_eq!(shards.len(), n);
            let records: usize = shards.iter().map(|s| s.records().len()).sum();
            let answers: usize = shards.iter().map(|s| s.answers().len()).sum();
            let objects: usize = shards.iter().map(Dataset::n_objects).sum();
            assert_eq!(records, ds.records().len());
            assert_eq!(answers, ds.answers().len());
            assert_eq!(objects, ds.n_objects(), "objects partition disjointly");
            // Every object's claims are on the shard its name hashes to.
            for (i, shard) in shards.iter().enumerate() {
                for o in shard.objects() {
                    assert_eq!(shard_of(shard.object_name(o), n), i);
                }
            }
        }
    }

    #[test]
    fn sharded_truths_match_the_unsharded_server() {
        let ds = corpus();
        let single = TruthServer::new(ds.clone(), TdhConfig::default(), RefitPolicy::Manual);
        for n in [1usize, 2, 4] {
            let sharded =
                ShardedServer::new(ds.clone(), TdhConfig::default(), RefitPolicy::Manual, n);
            assert_eq!(sharded.n_shards(), n);
            let mut agree = 0usize;
            let mut total = 0usize;
            for o in ds.objects() {
                let name = ds.object_name(o);
                let s = single.truth(name).map(|t| t.value);
                let m = sharded.truth(name).map(|t| t.value);
                total += 1;
                agree += usize::from(s == m);
            }
            // Per-shard fits are independent (documented), so demand near-
            // but not bit-agreement at N > 1 and exact agreement at N = 1.
            if n == 1 {
                assert_eq!(agree, total, "N=1 sharding must be the identity");
            } else {
                assert!(
                    agree * 10 >= total * 9,
                    "truth agreement too low at {n} shards: {agree}/{total}"
                );
            }
        }
    }

    #[test]
    fn merge_topk_equals_single_sort() {
        let a = vec![("b".to_string(), 0.9), ("d".to_string(), 0.5)];
        let b = vec![
            ("a".to_string(), 0.9),
            ("c".to_string(), 0.5),
            ("e".to_string(), 0.1),
        ];
        let merged = merge_topk([a.as_slice(), b.as_slice()].into_iter(), 4);
        // Ties (0.9, 0.9) and (0.5, 0.5) break by name: a total order.
        assert_eq!(
            merged,
            vec![
                ("a".to_string(), 0.9),
                ("b".to_string(), 0.9),
                ("c".to_string(), 0.5),
                ("d".to_string(), 0.5),
            ]
        );
    }

    #[test]
    fn cross_shard_ingest_routes_and_reports() {
        let ds = corpus();
        let sharded = ShardedServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch, 3);
        let before = sharded.stats();
        let claims = vec![
            Claim::Record {
                object: "fresh object A".into(),
                source: "src-x".into(),
                value: "L1-0".into(),
            },
            Claim::Record {
                object: "fresh object B".into(),
                source: "src-x".into(),
                value: "L1-1".into(),
            },
            Claim::Record {
                object: "fresh object C".into(),
                source: "src-y".into(),
                value: "L1-2".into(),
            },
        ];
        let report = sharded.ingest(&claims).expect("ingest");
        assert_eq!(report.appended_records, 3);
        assert!(report.shards_touched >= 1);
        assert_eq!(sharded.stats().n_records, before.n_records + 3);
        for claim in &claims {
            let Claim::Record { object, .. } = claim else {
                unreachable!()
            };
            assert!(
                sharded.truth(object).is_some(),
                "{object:?} must be answerable after its shard refit"
            );
        }
    }

    #[test]
    fn cross_shard_ingest_group_reports_per_batch() {
        let ds = corpus();
        let sharded = ShardedServer::new(
            ds,
            TdhConfig::default(),
            RefitPolicy::StalenessBound {
                max_touched_frac: 0.5,
            },
            2,
        );
        let batches: Vec<Vec<Claim>> = (0..3)
            .map(|i| {
                vec![Claim::Record {
                    object: format!("grouped object {i}"),
                    source: "src-g".into(),
                    value: format!("L1-{i}"),
                }]
            })
            .collect();
        let results = sharded.ingest_group(&batches);
        assert_eq!(results.len(), 3);
        let mut records = 0;
        let mut refits = 0;
        for r in &results {
            let r = r.as_ref().expect("all batches apply");
            records += r.appended_records;
            refits += r.refits;
        }
        assert_eq!(records, 3);
        assert!(
            refits >= 1,
            "each touched shard refits once at its group boundary"
        );
        for i in 0..3 {
            let name = format!("grouped object {i}");
            assert!(sharded.truth(&name).is_some(), "{name} answerable");
        }
        assert_eq!(sharded.stats().pending_claims, 0);
    }

    #[test]
    fn cross_shard_ingest_failure_is_per_shard_atomic() {
        let ds = corpus();
        let sharded = ShardedServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch, 2);
        let claims = vec![
            Claim::Record {
                object: "good one".into(),
                source: "s".into(),
                value: "L1-0".into(),
            },
            Claim::Record {
                object: "bad object".into(),
                source: "s".into(),
                value: "Atlantis (not a node)".into(),
            },
        ];
        // The two objects land on different shards of two (pinned by the
        // seedless hash, like the routing constants above).
        assert_ne!(
            sharded.shard_for("good one"),
            sharded.shard_for("bad object")
        );
        let err = sharded.ingest(&claims).expect_err("bad value must reject");
        assert_eq!(err.shard, sharded.shard_for("bad object"));
        assert!(err.error.to_string().contains("not a hierarchy node"));
        // The failed shard applied nothing; the other shard's sub-batch
        // stays applied (documented per-shard atomicity).
        assert!(sharded.truth("bad object").is_none());
        assert_eq!(err.applied.appended_records, 1);
        assert!(sharded.truth("good one").is_some());
    }
}
