//! The segmented write-ahead claim log behind durable ingestion.
//!
//! A [`TruthServer`](crate::TruthServer) with durability attached appends
//! every **accepted** claim batch here — and syncs it to disk — *before*
//! [`ingest`](crate::TruthServer::ingest) returns, so an acknowledged claim
//! survives a crash: on restart, recovery loads the latest snapshot as a
//! checkpoint and replays the log suffix the snapshot does not cover (the
//! transactional-update discipline of DB-nets — an accepted batch is an
//! atomic, durable transition, never a partially applied one).
//!
//! # On-disk format
//!
//! The log lives in a directory of **segment files** named by the sequence
//! number of the first batch they hold (`<seq:020>.wal`). Appends go to the
//! newest segment; once it exceeds [`WalOptions::segment_bytes`] a fresh
//! segment is started, so [compaction](Wal::truncate_covered) can drop
//! whole files once a snapshot covers their batches — the log never needs
//! to be rewritten in place.
//!
//! Each batch is one length-prefixed, checksummed, binary record:
//!
//! ```text
//! [payload_len: u32 LE] [crc32(payload): u32 LE] [payload]
//! payload = [seq: u64 LE] [n_claims: u32 LE] claim*
//! claim   = [kind: u8 (0 = record, 1 = answer)] str str str   // object, source/worker, value
//! str     = [len: u32 LE] [UTF-8 bytes]
//! ```
//!
//! Sequence numbers start at 1 and are contiguous across segments, so a
//! missing or reordered segment is detected on open. Because the payload is
//! checksummed and the batch is framed as one record, recovery applies a
//! batch **fully or not at all**: a torn or corrupt *final* record — the
//! signature of a crash mid-append — is skipped with a warning and the
//! segment is truncated back to its last good record; corruption anywhere
//! *before* the tail is not a crash artifact and surfaces as
//! [`WalError::Corrupt`] instead of being silently dropped.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use tdh_obs::{Counter, Histogram, Level};

use crate::crc::crc32;
use crate::server::Claim;

/// Instrument handles a server attaches to its log (see
/// [`crate::ServerMetrics`]): append/fsync latency histograms plus byte and
/// rotation counters, all recorded inside [`Wal::append`] where the write
/// and sync actually happen.
#[derive(Debug)]
pub(crate) struct WalMetrics {
    pub(crate) append_us: Arc<Histogram>,
    pub(crate) fsync_us: Arc<Histogram>,
    pub(crate) appended_bytes: Arc<Counter>,
    pub(crate) rotations: Arc<Counter>,
    /// Physical fsyncs issued ([`Wal::sync`] with fsync enabled). Under
    /// group commit this grows once per *group*, not per batch — the
    /// coalescing win in one number.
    pub(crate) syncs: Arc<Counter>,
}

/// Hard cap on one record's payload, so a corrupt length prefix cannot ask
/// recovery to allocate arbitrarily much.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Hard cap on one encoded string field (entity names are short in
/// practice; this only bounds hostile decodes).
const MAX_STR: u32 = 16 * 1024 * 1024;

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Start a new segment once the current one reaches this many bytes
    /// (checked before each append; a single batch may exceed it).
    pub segment_bytes: u64,
    /// Sync every append to disk before acknowledging (`fsync`). Turning
    /// this off trades the durability guarantee for append speed — only do
    /// so in tests and benchmarks.
    pub fsync: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            fsync: true,
        }
    }
}

/// One replayed log entry: the batch's sequence number and its claims in
/// application order (records before answers, each in batch order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// The batch's log sequence number (1-based, contiguous).
    pub seq: u64,
    /// The accepted claims, exactly as appended.
    pub claims: Vec<Claim>,
}

/// Errors raised while opening, appending to, or compacting a log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// A structurally invalid log: corruption before the final record, a
    /// sequence gap, or a segment file that contradicts its name.
    Corrupt {
        /// The offending segment file name.
        segment: String,
        /// Byte offset of the bad record within the segment.
        offset: u64,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                message,
            } => write!(
                f,
                "corrupt wal segment {segment} at byte {offset}: {message}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One segment file and the sequence number of its first batch.
#[derive(Debug)]
struct Segment {
    first_seq: u64,
    path: PathBuf,
}

/// An open, appendable write-ahead claim log. See the [module
/// docs](crate::wal) for the format and the recovery contract.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    /// All live segments, oldest first; the last one is the append target.
    segments: Vec<Segment>,
    /// Append handle on the last segment.
    file: File,
    /// Byte length of the last segment.
    len: u64,
    /// The sequence number the next appended batch will get.
    next_seq: u64,
    /// Optional instrument handles (attached by a durable server).
    metrics: Option<WalMetrics>,
}

impl Wal {
    /// Open (or create) the log in `dir`, replaying every intact batch.
    ///
    /// Returns the appendable log positioned after its last good record,
    /// plus all recovered batches in sequence order. A torn or corrupt
    /// final record is skipped with a warning on stderr and truncated away;
    /// corruption before the tail is a [`WalError::Corrupt`].
    pub fn open(dir: &Path, options: WalOptions) -> Result<(Wal, Vec<WalBatch>), WalError> {
        fs::create_dir_all(dir)?;
        let mut found: Vec<Segment> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".wal") else {
                continue;
            };
            let Ok(first_seq) = stem.parse::<u64>() else {
                continue;
            };
            found.push(Segment { first_seq, path });
        }
        found.sort_by_key(|s| s.first_seq);

        let mut batches: Vec<WalBatch> = Vec::new();
        let mut last_len = 0u64;
        if found.is_empty() {
            let seg = Segment {
                first_seq: 1,
                path: dir.join(segment_name(1)),
            };
            let file = create_segment(&seg.path, dir, options.fsync)?;
            return Ok((
                Wal {
                    dir: dir.to_path_buf(),
                    options,
                    segments: vec![seg],
                    file,
                    len: 0,
                    next_seq: 1,
                    metrics: None,
                },
                batches,
            ));
        }
        // Compaction drops the oldest segments, so the log may legitimately
        // start past seq 1: the first surviving segment sets the origin and
        // everything after it must be contiguous.
        let mut next_seq = found[0].first_seq;
        for (si, seg) in found.iter().enumerate() {
            let is_last = si + 1 == found.len();
            if seg.first_seq != next_seq {
                return Err(WalError::Corrupt {
                    segment: display_name(&seg.path),
                    offset: 0,
                    message: format!(
                        "segment starts at seq {} but the log's next seq is {next_seq} \
                         (missing or reordered segment)",
                        seg.first_seq
                    ),
                });
            }
            let (seg_batches, good_len, torn) = read_segment(seg, next_seq, is_last)?;
            next_seq += seg_batches.len() as u64;
            batches.extend(seg_batches);
            if is_last {
                last_len = good_len;
                if torn {
                    // Repair the tail so future appends extend a clean log.
                    let f = OpenOptions::new().write(true).open(&seg.path)?;
                    f.set_len(good_len)?;
                    if options.fsync {
                        f.sync_all()?;
                    }
                }
            }
        }
        let last = found.last().expect("non-empty");
        let mut file = OpenOptions::new().append(true).open(&last.path)?;
        // `append` positions at EOF; after a tail repair that IS good_len.
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                options,
                segments: found,
                file,
                len: last_len,
                next_seq,
                metrics: None,
            },
            batches,
        ))
    }

    /// Append one accepted claim batch as a single atomic record and (per
    /// [`WalOptions::fsync`]) sync it to disk. Returns the batch's sequence
    /// number. Empty batches are legal but callers normally skip them.
    pub fn append(&mut self, claims: &[Claim]) -> Result<u64, WalError> {
        let seq = self.append_unsynced(claims)?;
        self.sync()?;
        Ok(seq)
    }

    /// Append one batch record **without** syncing — the group-commit half
    /// of [`Wal::append`]. The record is in the OS page cache only until
    /// the next [`Wal::sync`] (or rotation); a caller coalescing fsyncs
    /// appends every batch of a group through here and issues one `sync()`
    /// to acknowledge them all.
    pub fn append_unsynced(&mut self, claims: &[Claim]) -> Result<u64, WalError> {
        if self.len >= self.options.segment_bytes && self.len > 0 {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let payload = encode_payload(seq, claims);
        debug_assert!(payload.len() as u64 <= u64::from(MAX_PAYLOAD));
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let t_append = Instant::now();
        self.file.write_all(&record)?;
        if let Some(m) = &self.metrics {
            m.append_us.record_duration(t_append.elapsed());
            m.appended_bytes.add(record.len() as u64);
        }
        tdh_obs::log_event!(
            Level::Debug,
            "wal",
            "append",
            seq = seq,
            bytes = record.len()
        );
        self.len += record.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Sync the live segment to disk (no-op when [`WalOptions::fsync`] is
    /// off, mirroring what [`Wal::append`] has always done). Durability
    /// barrier for every record appended since the previous sync.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if !self.options.fsync {
            return Ok(());
        }
        let t_fsync = Instant::now();
        self.file.sync_data()?;
        if let Some(m) = &self.metrics {
            m.fsync_us.record_duration(t_fsync.elapsed());
            m.syncs.inc();
        }
        Ok(())
    }

    /// Attach instrument handles; subsequent appends and rotations record
    /// into them.
    pub(crate) fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Drop every segment whose batches are all `<= covered` (a snapshot
    /// now checkpoints them). Whole files only — the live tail segment is
    /// first rotated away when it too is fully covered, so a checkpoint of
    /// the complete log empties it. Returns the number of segments removed.
    pub fn truncate_covered(&mut self, covered: u64) -> Result<usize, WalError> {
        let live = self.segments.last().expect("a wal always has a segment");
        if live.first_seq < self.next_seq && covered + 1 >= self.next_seq {
            // The live segment holds records and all of them are covered:
            // rotate so it becomes droppable like any sealed segment.
            self.rotate()?;
        }
        let mut dropped = 0;
        while self.segments.len() > 1 && self.segments[1].first_seq <= covered + 1 {
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path)?;
            dropped += 1;
        }
        if dropped > 0 && self.options.fsync {
            sync_dir(&self.dir)?;
        }
        Ok(dropped)
    }

    /// The sequence number the next appended batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of live segment files.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes across live segments.
    pub fn total_bytes(&self) -> u64 {
        let sealed: u64 = self.segments[..self.segments.len() - 1]
            .iter()
            .map(|s| fs::metadata(&s.path).map(|m| m.len()).unwrap_or(0))
            .sum();
        sealed + self.len
    }

    /// Seal the current segment and start a fresh one at `next_seq`.
    fn rotate(&mut self) -> Result<(), WalError> {
        if let Some(m) = &self.metrics {
            m.rotations.inc();
        }
        tdh_obs::log_event!(Level::Info, "wal", "rotate", next_seq = self.next_seq);
        if self.options.fsync {
            self.file.sync_data()?;
        }
        let path = self.dir.join(segment_name(self.next_seq));
        self.file = create_segment(&path, &self.dir, self.options.fsync)?;
        self.len = 0;
        self.segments.push(Segment {
            first_seq: self.next_seq,
            path,
        });
        Ok(())
    }
}

/// `<seq:020>.wal` — zero-padded so lexicographic order is numeric order.
fn segment_name(first_seq: u64) -> String {
    format!("{first_seq:020}.wal")
}

fn display_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Create a fresh segment file and make its directory entry durable.
fn create_segment(path: &Path, dir: &Path, fsync: bool) -> Result<File, WalError> {
    let file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .append(true)
        .open(path)?;
    if fsync {
        file.sync_all()?;
        sync_dir(dir)?;
    }
    Ok(file)
}

/// Flush a directory's entry table (segment creations and deletions must
/// survive a crash, not just the file contents).
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Read one segment's batches. Returns the batches, the byte offset just
/// past the last good record, and whether a torn/corrupt tail was skipped.
/// In a non-final segment any imperfection is an error — only the log's
/// very tail can legitimately be torn by a crash.
fn read_segment(
    seg: &Segment,
    mut expect_seq: u64,
    is_last: bool,
) -> Result<(Vec<WalBatch>, u64, bool), WalError> {
    let data = fs::read(&seg.path)?;
    let mut batches = Vec::new();
    let mut off = 0usize;
    let corrupt = |off: usize, message: String| WalError::Corrupt {
        segment: display_name(&seg.path),
        offset: off as u64,
        message,
    };
    while off < data.len() {
        let record_start = off;
        let tail = &data[off..];
        let header_ok = tail.len() >= 8;
        let (len, stored_crc) = if header_ok {
            (
                u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes")),
            )
        } else {
            (0, 0)
        };
        let frame_ok = header_ok && len <= MAX_PAYLOAD && tail.len() >= 8 + len as usize;
        let payload = if frame_ok {
            &tail[8..8 + len as usize]
        } else {
            &[][..]
        };
        if !frame_ok || crc32(payload) != stored_crc {
            if is_last {
                eprintln!(
                    "tdh-serve wal: dropping torn/corrupt tail of {} at byte {record_start} \
                     ({} unreplayable byte(s)); the unacknowledged batch is discarded",
                    display_name(&seg.path),
                    data.len() - record_start,
                );
                return Ok((batches, record_start as u64, true));
            }
            return Err(corrupt(
                record_start,
                if frame_ok {
                    "record checksum mismatch before the log tail".into()
                } else {
                    "truncated record before the log tail".into()
                },
            ));
        }
        let batch = decode_payload(payload).map_err(|m| {
            corrupt(
                record_start,
                format!("checksummed payload undecodable: {m}"),
            )
        })?;
        if batch.seq != expect_seq {
            return Err(corrupt(
                record_start,
                format!("batch seq {} where {expect_seq} was expected", batch.seq),
            ));
        }
        expect_seq += 1;
        off += 8 + len as usize;
        batches.push(batch);
    }
    Ok((batches, off as u64, false))
}

/// Encode one batch payload (`seq`, claim count, claims).
fn encode_payload(seq: u64, claims: &[Claim]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + claims.len() * 32);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(claims.len() as u32).to_le_bytes());
    for claim in claims {
        let (kind, object, who, value) = match claim {
            Claim::Record {
                object,
                source,
                value,
            } => (0u8, object, source, value),
            Claim::Answer {
                object,
                worker,
                value,
            } => (1u8, object, worker, value),
        };
        out.push(kind);
        for s in [object, who, value] {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

/// Inverse of [`encode_payload`]. Errors describe why a checksummed payload
/// still failed to decode (a writer-version skew, never random corruption —
/// that is caught by the CRC).
fn decode_payload(payload: &[u8]) -> Result<WalBatch, String> {
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
        let end = off
            .checked_add(n)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| "payload shorter than its fields".to_string())?;
        let slice = &payload[*off..end];
        *off = end;
        Ok(slice)
    };
    let seq = u64::from_le_bytes(take(&mut off, 8)?.try_into().expect("8 bytes"));
    let n_claims = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes"));
    let mut claims = Vec::with_capacity(n_claims.min(1024) as usize);
    for _ in 0..n_claims {
        let kind = take(&mut off, 1)?[0];
        if kind > 1 {
            return Err(format!("unknown claim kind {kind}"));
        }
        let mut strs = Vec::with_capacity(3);
        for _ in 0..3 {
            let len = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes"));
            if len > MAX_STR {
                return Err(format!("string field of {len} bytes exceeds the cap"));
            }
            let bytes = take(&mut off, len as usize)?;
            strs.push(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| "non-UTF-8 string field".to_string())?,
            );
        }
        let value = strs.pop().expect("3 fields");
        let who = strs.pop().expect("2 fields");
        let object = strs.pop().expect("1 field");
        claims.push(if kind == 0 {
            Claim::Record {
                object,
                source: who,
                value,
            }
        } else {
            Claim::Answer {
                object,
                worker: who,
                value,
            }
        });
    }
    if off != payload.len() {
        return Err(format!(
            "{} trailing byte(s) after the last claim",
            payload.len() - off
        ));
    }
    Ok(WalBatch { seq, claims })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tdh-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(o: &str, s: &str, v: &str) -> Claim {
        Claim::Record {
            object: o.into(),
            source: s.into(),
            value: v.into(),
        }
    }

    fn opts() -> WalOptions {
        WalOptions {
            segment_bytes: 128,
            fsync: false,
        }
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let (mut wal, replayed) = Wal::open(&dir, opts()).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.append(&[rec("o1", "s\tweird", "v\nname")]).unwrap(), 1);
        assert_eq!(wal.append(&[]).unwrap(), 2);
        assert_eq!(
            wal.append(&[rec("o2", "s", "v"), rec("o3", "s", "v")])
                .unwrap(),
            3
        );
        drop(wal);
        let (wal, replayed) = Wal::open(&dir, opts()).unwrap();
        assert_eq!(wal.next_seq(), 4);
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].seq, 1);
        assert_eq!(replayed[0].claims, vec![rec("o1", "s\tweird", "v\nname")]);
        assert!(replayed[1].claims.is_empty());
        assert_eq!(replayed[2].claims.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_compaction() {
        let dir = tmp_dir("rotate");
        let (mut wal, _) = Wal::open(&dir, opts()).unwrap();
        for i in 0..20 {
            wal.append(&[rec(&format!("obj-{i}"), "a source name", "some value")])
                .unwrap();
        }
        assert!(wal.n_segments() > 1, "128-byte segments must rotate");
        let n_before = wal.n_segments();
        // Covering seq 10 drops only segments fully at-or-below it.
        let dropped = wal.truncate_covered(10).unwrap();
        assert!(dropped > 0 && dropped < n_before);
        drop(wal);
        let (mut wal, replayed) = Wal::open(&dir, opts()).unwrap();
        assert_eq!(wal.next_seq(), 21);
        assert!(replayed.iter().all(|b| b.seq <= 20));
        assert!(replayed.iter().any(|b| b.seq == 20), "tail survives");
        assert!(
            replayed
                .iter()
                .all(|b| b.seq > 10 || b.seq == replayed[0].seq || b.seq >= replayed[0].seq),
            "only whole covered segments dropped"
        );
        // Covering everything empties the log (the live segment rotates away).
        wal.truncate_covered(20).unwrap();
        drop(wal);
        let (wal, replayed) = Wal::open(&dir, opts()).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.next_seq(), 21, "sequence numbers survive compaction");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_with_truncation() {
        let dir = tmp_dir("torn");
        let (mut wal, _) = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 1 << 20,
                fsync: false,
            },
        )
        .unwrap();
        wal.append(&[rec("acked", "s", "v")]).unwrap();
        wal.append(&[rec("torn", "s", "v")]).unwrap();
        drop(wal);
        let seg = dir.join(segment_name(1));
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap(); // tear the last record
        drop(f);
        let (mut wal, replayed) = Wal::open(&dir, opts()).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact batch survives");
        assert_eq!(replayed[0].claims, vec![rec("acked", "s", "v")]);
        assert_eq!(wal.next_seq(), 2, "the torn batch's seq is reusable");
        // The tail was repaired: appending and reopening is clean.
        wal.append(&[rec("after", "s", "v")]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir, opts()).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].claims, vec![rec("after", "s", "v")]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let dir = tmp_dir("midcorrupt");
        let (mut wal, _) = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 1 << 20,
                fsync: false,
            },
        )
        .unwrap();
        wal.append(&[rec("first", "s", "v")]).unwrap();
        wal.append(&[rec("second", "s", "v")]).unwrap();
        drop(wal);
        let seg = dir.join(segment_name(1));
        let mut data = fs::read(&seg).unwrap();
        data[10] ^= 0xFF; // inside the first record's payload
        fs::write(&seg, &data).unwrap();
        // A second segment makes the corrupt one non-final.
        fs::write(dir.join(segment_name(3)), []).unwrap();
        let err = Wal::open(&dir, opts()).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gaps_are_detected() {
        let dir = tmp_dir("gap");
        let (mut wal, _) = Wal::open(&dir, opts()).unwrap();
        for i in 0..20 {
            wal.append(&[rec(&format!("obj-{i}"), "a source name", "some value")])
                .unwrap();
        }
        assert!(wal.n_segments() >= 3);
        let victim = wal.segments[1].path.clone();
        drop(wal);
        fs::remove_file(victim).unwrap();
        let err = Wal::open(&dir, opts()).unwrap_err();
        assert!(err.to_string().contains("missing or reordered"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
