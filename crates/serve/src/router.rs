//! The router front: one TCP endpoint serving many named, sharded
//! tenants.
//!
//! A [`Router`] plugs a [`Collections`] registry into the same
//! connection-sweep machinery [`crate::serve_tcp`] uses (`net.rs` — the
//! read-timeout multiplexing, pipelining, `INGEST` framing and panic
//! containment are shared). On top of the single-server protocol it
//! speaks the **collection** commands:
//!
//! | command | reply |
//! |---------|-------|
//! | `USE\t<collection>` | select the tenant for this connection |
//! | `CREATE\t<collection>[\t<shards>]` | create an empty tenant from the registry template |
//! | `DROP\t<collection>` | unregister a tenant |
//! | `COLLECTIONS` | `{"collections":[…]}` |
//!
//! Data commands resolve the connection's `USE`d collection (or the
//! router's default) and then route **by key**: `TRUTH`/`RECORD`/`ANSWER`
//! go to the one shard the object's name hashes to, `SOURCE`/`WORKER`
//! average over the shards that know the entity, `TOPK` fans out to every
//! shard and k-way-merges the pre-ranked lists, and `INGEST` splits its
//! batch into per-shard sub-batches (atomic per shard). Reads are
//! lock-free per shard; claim writes lock only the shards they touch, so
//! tenants — and shards within a tenant — never contend with each other.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use crate::collection::Collections;
use crate::metrics::{command_label, EndpointMetrics};
use crate::net::{
    claim_group_replies, dispatch_read, exposition_reply, json_error, json_f64, json_str,
    reliability_reply, serve_engine, topk_reply, Engine, ListenerCore, Session,
};
use crate::server::{Claim, RefitSummary};
use crate::shard::ShardedServer;

/// Configuration for a router endpoint: the tenant registry plus an
/// optional default collection for connections that never send `USE`.
pub struct Router {
    collections: Arc<Collections>,
    default: Option<String>,
}

impl Router {
    /// A router over `collections` with no default: every connection must
    /// `USE` a collection before data commands.
    pub fn new(collections: Collections) -> Self {
        Router {
            collections: Arc::new(collections),
            default: None,
        }
    }

    /// Serve connections that sent no `USE` from `name` (which should be
    /// registered before traffic arrives; resolution is by name at
    /// command time, so a later `CREATE`/`insert` of the name also
    /// works).
    pub fn with_default(mut self, name: &str) -> Self {
        self.default = Some(name.to_string());
        self
    }

    /// The shared registry (register tenants server-side through this
    /// before or after serving starts).
    pub fn collections(&self) -> Arc<Collections> {
        Arc::clone(&self.collections)
    }
}

/// Handle to a running [`serve_router`] listener.
pub struct RouterHandle {
    core: ListenerCore,
    collections: Arc<Collections>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// The live registry behind the endpoint.
    pub fn collections(&self) -> Arc<Collections> {
        Arc::clone(&self.collections)
    }

    /// Stop accepting, join every connection worker (prompt — the same
    /// read-timeout sweep as [`crate::ServeHandle::shutdown`]), and return
    /// the registry.
    pub fn shutdown(self) -> Arc<Collections> {
        self.core.stop();
        self.collections
    }
}

/// Serve `router` on `addr` with [`crate::DEFAULT_NET_WORKERS`] connection
/// workers.
pub fn serve_router(router: Router, addr: &str) -> io::Result<RouterHandle> {
    serve_router_with(router, addr, crate::DEFAULT_NET_WORKERS)
}

/// [`serve_router`] with an explicit worker count (see
/// [`crate::serve_tcp_with`] for what the pool bounds).
pub fn serve_router_with(router: Router, addr: &str, n_workers: usize) -> io::Result<RouterHandle> {
    let collections = Arc::clone(&router.collections);
    let engine = Arc::new(RouterEngine {
        collections: Arc::clone(&router.collections),
        default: router.default,
        net: EndpointMetrics::new(),
    });
    let core = serve_engine(engine, addr, n_workers)?;
    Ok(RouterHandle { core, collections })
}

/// The [`Engine`] behind a router endpoint.
struct RouterEngine {
    collections: Arc<Collections>,
    default: Option<String>,
    /// Per-command request accounting plus the
    /// `tdh_shard_requests_total{shard,kind}` routing counters for this
    /// endpoint.
    net: Arc<EndpointMetrics>,
}

impl RouterEngine {
    /// The tenant this connection's data commands address: its `USE`d
    /// collection, else the router default. Errors (as a ready-to-send
    /// reply) when neither names a live collection.
    fn resolve(&self, session: &Session) -> Result<Arc<ShardedServer>, String> {
        let name = session
            .collection
            .as_deref()
            .or(self.default.as_deref())
            .ok_or_else(|| json_error("no collection selected; USE <collection> first"))?;
        self.collections
            .get(name)
            .ok_or_else(|| json_error(&format!("collection {name:?} does not exist")))
    }
}

impl Engine for RouterEngine {
    fn command(&self, session: &mut Session, fields: &[&str]) -> String {
        let t0 = Instant::now();
        let reply = self.dispatch(session, fields);
        self.net.observe(command_label(fields), 1, t0.elapsed());
        reply
    }

    fn claim_group(&self, session: &mut Session, claims: &[Claim]) -> Vec<String> {
        let t0 = Instant::now();
        let replies = self.claim_group_inner(session, claims);
        self.net.observe("CLAIM", claims.len() as u64, t0.elapsed());
        replies
    }

    fn ingest_batch(&self, session: &mut Session, claims: &[Claim]) -> String {
        let t0 = Instant::now();
        let reply = self.ingest_batch_inner(session, claims);
        self.net.observe("INGEST", 1, t0.elapsed());
        reply
    }
}

impl RouterEngine {
    /// [`Engine::command`] semantics, separated from its request
    /// accounting.
    fn dispatch(&self, session: &mut Session, fields: &[&str]) -> String {
        match fields {
            ["USE", name] => match self.collections.get(name) {
                Some(server) => {
                    session.collection = Some((*name).to_string());
                    format!(
                        "{{\"ok\":true,\"collection\":{},\"shards\":{}}}",
                        json_str(name),
                        server.n_shards()
                    )
                }
                None => json_error(&format!("collection {name:?} does not exist")),
            },
            ["CREATE", name] => match self.collections.create(name) {
                Ok(server) => format!(
                    "{{\"ok\":true,\"created\":{},\"shards\":{}}}",
                    json_str(name),
                    server.n_shards()
                ),
                Err(e) => json_error(&e.to_string()),
            },
            ["DROP", name] => match self.collections.drop_collection(name) {
                Ok(()) => {
                    if session.collection.as_deref() == Some(*name) {
                        session.collection = None;
                    }
                    format!("{{\"ok\":true,\"dropped\":{}}}", json_str(name))
                }
                Err(e) => json_error(&e.to_string()),
            },
            ["COLLECTIONS"] => {
                let names: Vec<String> = self
                    .collections
                    .list()
                    .iter()
                    .map(|n| json_str(n))
                    .collect();
                format!("{{\"collections\":[{}]}}", names.join(","))
            }
            ["METRICS"] => match self.resolve(session) {
                // Router exposition = this endpoint's request metrics
                // merged with every shard's registry: counters sum,
                // histograms bucket-merge, so latency/refit/WAL
                // distributions aggregate exactly across shards.
                Ok(server) => {
                    self.net.refresh(server.publication_age());
                    let mut registries: Vec<&tdh_obs::Registry> =
                        Vec::with_capacity(server.n_shards() + 1);
                    registries.push(self.net.registry());
                    for m in server.shard_metrics() {
                        registries.push(m.registry());
                    }
                    exposition_reply(tdh_obs::render_merged(&registries))
                }
                Err(reply) => reply,
            },
            ["STATS"] => match self.resolve(session) {
                Ok(server) => router_stats_json(&server, session, &self.net),
                Err(reply) => reply,
            },
            _ => {
                let server = match self.resolve(session) {
                    Ok(server) => server,
                    Err(reply) => return reply,
                };
                route_command(&server, &self.net, fields)
            }
        }
    }

    /// [`Engine::claim_group`] semantics, separated from its request
    /// accounting.
    fn claim_group_inner(&self, session: &mut Session, claims: &[Claim]) -> Vec<String> {
        let server = match self.resolve(session) {
            Ok(server) => server,
            Err(reply) => return vec![reply; claims.len()],
        };
        // Scatter the (same-kind) run to its shards, reuse the per-line
        // accurate single-server reply logic per shard, and gather the
        // replies back into original line order.
        let mut replies: Vec<Option<String>> = vec![None; claims.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); server.n_shards()];
        for (i, claim) in claims.iter().enumerate() {
            let object = match claim {
                Claim::Record { object, .. } | Claim::Answer { object, .. } => object,
            };
            by_shard[server.shard_for(object)].push(i);
        }
        for (shard, indices) in by_shard.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let sub: Vec<Claim> = indices.iter().map(|&i| claims[i].clone()).collect();
            self.net
                .shard_counter(shard, "ingest")
                .add(sub.len() as u64);
            let sub_replies = claim_group_replies(&mut server.locked(shard), &sub);
            for (&i, reply) in indices.iter().zip(sub_replies) {
                replies[i] = Some(reply);
            }
        }
        replies
            .into_iter()
            .map(|r| r.unwrap_or_else(|| json_error("claim was not routed")))
            .collect()
    }

    /// [`Engine::ingest_batch`] semantics, separated from its request
    /// accounting.
    fn ingest_batch_inner(&self, session: &mut Session, claims: &[Claim]) -> String {
        let server = match self.resolve(session) {
            Ok(server) => server,
            Err(reply) => return reply,
        };
        for (shard, group) in server.group_by_shard(claims) {
            self.net
                .shard_counter(shard, "ingest")
                .add(group.len() as u64);
        }
        match server.ingest(claims) {
            Ok(report) => format!(
                "{{\"ok\":true,\"appended_records\":{},\"appended_answers\":{},\
                 \"pending\":{},\"shards\":{},\"refits\":{}}}",
                report.appended_records,
                report.appended_answers,
                report.pending,
                report.shards_touched,
                report.refits
            ),
            Err(e) => json_error(&e.to_string()),
        }
    }
}

/// Route one resolved non-claim data command inside a tenant.
fn route_command(server: &ShardedServer, net: &EndpointMetrics, fields: &[&str]) -> String {
    match fields {
        // Key-routed: one shard's publication answers.
        ["TRUTH", object] => {
            let shard = server.shard_for(object);
            net.shard_counter(shard, "query").inc();
            let state = server.readers()[shard].load();
            dispatch_read(&state, fields)
        }
        // Cross-shard means (documented per-shard fit independence).
        ["SOURCE", name] => {
            reliability_reply("source", name, "phi", server.source_reliability(name))
        }
        ["WORKER", name] => {
            reliability_reply("worker", name, "psi", server.worker_reliability(name))
        }
        // Fan-out + deterministic k-way merge (touches every shard).
        ["TOPK", k] => match k.parse::<usize>() {
            Ok(k) => {
                for shard in 0..server.n_shards() {
                    net.shard_counter(shard, "query").inc();
                }
                topk_reply(&server.top_uncertain(k))
            }
            Err(_) => json_error("TOPK takes an integer"),
        },
        ["REFIT"] => refits_reply(&server.refit_now()),
        ["CHECKPOINT"] => match server.checkpoint() {
            Ok(reports) => {
                let bytes: u64 = reports.iter().map(|r| r.snapshot_bytes).sum();
                let dropped: usize = reports.iter().map(|r| r.segments_dropped).sum();
                format!(
                    "{{\"ok\":true,\"shards\":{},\"snapshot_bytes\":{bytes},\
                     \"segments_dropped\":{dropped}}}",
                    reports.len()
                )
            }
            Err(e) => json_error(&e.to_string()),
        },
        _ => json_error("unknown command"),
    }
}

/// Render the router `STATS` reply from the shard metrics' atomic mirrors
/// — no shard lock. Keeps the original `collection`/`shards` + nine
/// counter keys and extends them with `uptime_s` (this endpoint's), the
/// crate `version`, and `last_publication_age_s` (the freshest shard's;
/// `null` before any publication).
fn router_stats_json(server: &ShardedServer, session: &Session, net: &EndpointMetrics) -> String {
    let s = server.stats();
    format!(
        "{{\"collection\":{},\"shards\":{},\"objects\":{},\"sources\":{},\
         \"workers\":{},\"records\":{},\"answers\":{},\"pending\":{},\"batches\":{},\
         \"refits\":{},\"publications\":{},\
         \"uptime_s\":{},\"version\":{},\"last_publication_age_s\":{}}}",
        match &session.collection {
            Some(name) => json_str(name),
            None => "null".to_string(),
        },
        server.n_shards(),
        s.n_objects,
        s.n_sources,
        s.n_workers,
        s.n_records,
        s.n_answers,
        s.pending_claims,
        s.batches,
        s.refits,
        s.publications,
        json_f64(net.uptime_s()),
        json_str(env!("CARGO_PKG_VERSION")),
        match server.publication_age() {
            Some(age) => json_f64(age.as_secs_f64()),
            None => "null".to_string(),
        }
    )
}

/// Render an all-shard refit as one aggregate reply (iterations summed,
/// `warm`/`converged` true only if every shard's was, delta-path refits
/// counted across shards).
fn refits_reply(summaries: &[RefitSummary]) -> String {
    let iterations: usize = summaries.iter().map(|r| r.iterations).sum();
    let seconds: f64 = summaries.iter().map(|r| r.duration.as_secs_f64()).sum();
    let delta_refits = summaries
        .iter()
        .filter(|r| r.kind == crate::server::RefitKind::Delta)
        .count();
    format!(
        "{{\"ok\":true,\"shards\":{},\"iterations\":{iterations},\"converged\":{},\
         \"warm\":{},\"delta_refits\":{delta_refits},\"seconds\":{}}}",
        summaries.len(),
        summaries.iter().all(|r| r.converged),
        summaries.iter().all(|r| r.warm),
        json_f64(seconds)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RefitPolicy;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use tdh_core::TdhConfig;
    use tdh_hierarchy::{Hierarchy, HierarchyBuilder};

    fn places() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        b.add_path(&["UK", "London", "Westminster"]);
        b.build()
    }

    fn templated_router() -> Router {
        Router::new(Collections::with_template(
            places(),
            TdhConfig::default(),
            RefitPolicy::EveryBatch,
            2,
        ))
    }

    struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .unwrap();
            Client {
                writer: stream.try_clone().unwrap(),
                reader: BufReader::new(stream),
            }
        }

        fn send(&mut self, line: &str) -> String {
            self.writer.write_all(line.as_bytes()).unwrap();
            self.writer.write_all(b"\n").unwrap();
            let mut reply = String::new();
            self.reader.read_line(&mut reply).unwrap();
            reply.trim().to_string()
        }
    }

    #[test]
    fn collections_lifecycle_over_the_wire() {
        let handle = serve_router_with(templated_router(), "127.0.0.1:0", 2).expect("bind");
        let mut c = Client::connect(handle.addr());

        // No collection yet: data commands are refused, management works.
        assert!(c.send("TRUTH\tanything").contains("no collection selected"));
        assert_eq!(c.send("COLLECTIONS"), "{\"collections\":[]}");
        assert!(c
            .send("CREATE\tlandmarks")
            .contains("\"created\":\"landmarks\""));
        assert!(c.send("CREATE\tlandmarks").contains("already exists"));
        assert!(c
            .send("CREATE\tbad name")
            .contains("invalid collection name"));
        assert!(c.send("USE\tlandmarks").contains("\"shards\":2"));

        // Ingest into the empty tenant and read the published truth back.
        let r = c.send("RECORD\tStatue of Liberty\tUNESCO\tLiberty Island");
        assert!(r.contains("\"ok\":true"), "{r}");
        let t = c.send("TRUTH\tStatue of Liberty");
        assert!(t.contains("\"truth\":\"Liberty Island\""), "{t}");
        assert!(t.contains("\"path\":\"USA/NY/Liberty Island\""), "{t}");
        let s = c.send("STATS");
        assert!(s.contains("\"collection\":\"landmarks\""), "{s}");
        assert!(s.contains("\"shards\":2"), "{s}");
        assert!(s.contains("\"records\":1"), "{s}");

        // DROP frees the name and deselects it on this connection.
        assert!(c.send("DROP\tlandmarks").contains("\"dropped\""));
        assert!(c
            .send("TRUTH\tStatue of Liberty")
            .contains("no collection selected"));
        assert!(c.send("DROP\tlandmarks").contains("unknown collection"));
        handle.shutdown();
    }

    #[test]
    fn tenants_are_isolated() {
        let handle = serve_router_with(templated_router(), "127.0.0.1:0", 2).expect("bind");
        let mut a = Client::connect(handle.addr());
        let mut b = Client::connect(handle.addr());
        a.send("CREATE\ttenant-a");
        b.send("CREATE\ttenant-b");
        a.send("USE\ttenant-a");
        b.send("USE\ttenant-b");
        // The same object name carries different truths per tenant.
        a.send("RECORD\tBig Ben\tSourceA\tLA");
        b.send("RECORD\tBig Ben\tSourceB\tWestminster");
        let ta = a.send("TRUTH\tBig Ben");
        let tb = b.send("TRUTH\tBig Ben");
        assert!(ta.contains("\"truth\":\"LA\""), "{ta}");
        assert!(tb.contains("\"truth\":\"Westminster\""), "{tb}");
        // And neither tenant's stats see the other's claims.
        assert!(a.send("STATS").contains("\"records\":1"));
        assert!(b.send("STATS").contains("\"records\":1"));
        handle.shutdown();
    }

    #[test]
    fn default_collection_serves_use_less_connections() {
        let router = templated_router().with_default("main");
        router.collections().create("main").expect("create main");
        let handle = serve_router_with(router, "127.0.0.1:0", 1).expect("bind");
        let mut c = Client::connect(handle.addr());
        let r = c.send("RECORD\tStatue of Liberty\tUNESCO\tLiberty Island");
        assert!(r.contains("\"ok\":true"), "{r}");
        let t = c.send("TRUTH\tStatue of Liberty");
        assert!(t.contains("\"truth\":\"Liberty Island\""), "{t}");
        // The registry handle sees the same tenant the wire wrote to.
        let tenant = handle.collections().get("main").unwrap();
        assert_eq!(tenant.stats().n_records, 1);
        handle.shutdown();
    }

    #[test]
    fn ingest_batch_routes_across_shards() {
        let router = templated_router().with_default("main");
        router.collections().create("main").expect("create main");
        let handle = serve_router_with(router, "127.0.0.1:0", 2).expect("bind");
        let mut c = Client::connect(handle.addr());
        // Objects chosen to span both shards of two (seedless hash):
        // "Statue of Liberty" → shard 1, "Big Ben" → shard 0.
        self::assert_spans_shards();
        c.writer
            .write_all(
                b"INGEST\t3\nRECORD\tStatue of Liberty\tUNESCO\tLiberty Island\n\
                  RECORD\tBig Ben\tUNESCO\tWestminster\n\
                  ANSWER\tBig Ben\tEmma\tWestminster\n",
            )
            .unwrap();
        let mut reply = String::new();
        c.reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"appended_records\":2"), "{reply}");
        assert!(reply.contains("\"appended_answers\":1"), "{reply}");
        assert!(reply.contains("\"shards\":2"), "{reply}");
        let t = c.send("TRUTH\tBig Ben");
        assert!(t.contains("\"truth\":\"Westminster\""), "{t}");
        // TOPK fans out and merges both shards' rankings.
        let top = c.send("TOPK\t5");
        assert!(top.contains("Statue of Liberty"), "{top}");
        assert!(top.contains("Big Ben"), "{top}");
        handle.shutdown();
    }

    fn assert_spans_shards() {
        use crate::shard::shard_of;
        assert_ne!(shard_of("Statue of Liberty", 2), shard_of("Big Ben", 2));
    }

    #[test]
    fn coalesced_claims_route_with_per_line_replies() {
        let router = templated_router().with_default("main");
        router.collections().create("main").expect("create main");
        let handle = serve_router_with(router, "127.0.0.1:0", 1).expect("bind");
        let mut c = Client::connect(handle.addr());
        // One write, three pipelined RECORDs across both shards; the bad
        // middle one errors without sinking its shard-mates.
        c.writer
            .write_all(
                b"RECORD\tStatue of Liberty\tUNESCO\tLiberty Island\n\
                  RECORD\tBig Ben\tUNESCO\tAtlantis\n\
                  RECORD\tBig Ben\tWikipedia\tWestminster\n",
            )
            .unwrap();
        let mut replies = Vec::new();
        for _ in 0..3 {
            let mut reply = String::new();
            c.reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim().to_string());
        }
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(
            replies[1].contains("not a hierarchy node"),
            "{}",
            replies[1]
        );
        // Same shard as the offender, behind it in the sub-batch: dropped.
        assert!(replies[2].contains("dropped"), "{}", replies[2]);
        let t = c.send("TRUTH\tStatue of Liberty");
        assert!(t.contains("\"truth\":\"Liberty Island\""), "{t}");
        handle.shutdown();
    }
}
