//! Versioned persistence for datasets, hierarchies and fitted parameters.
//!
//! Two formats coexist, hand-rolled in the same no-crates.io idiom as the
//! bench harness's JSON emitter (the build environment is offline —
//! `vendor/README.md`). Every file opens with a version header so an
//! unknown revision is detected instead of misparsed.
//!
//! **v1** is a sectioned, line-oriented text file:
//!
//! ```text
//! tdh-snapshot v1
//! hierarchy <n_nodes>
//! <parent_id>\t<escaped name>          // nodes 1..n in id order
//! objects <n>
//! <gold node id | -> \t <escaped name>
//! sources <n> / workers <n>            // one escaped name per line
//! records <n> / answers <n>            // <obj>\t<src|wrk>\t<value> id triples
//! params <0|1>                         // fitted parameters present?
//! config \t α \t β \t γ \t …           // TdhConfig of the fit
//! phi <n> / psi <n>                    // three floats per line
//! mu <n>                               // one μ row per object
//! end
//! ```
//!
//! **v2** — the format [`Snapshot::save`] writes — keeps the text sections
//! but adds durability metadata and swaps the dominant μ table (one float
//! per candidate per object) to raw little-endian binary:
//!
//! ```text
//! tdh-snapshot v2
//! wal <covered_seq>                    // WAL batches ≤ this are checkpointed
//! … hierarchy/objects/…/phi/psi exactly as in v1 …
//! mubin <n>
//! [row_len: u32 LE] [row_len × f64 LE]   // one binary row per object
//! end
//! crc <8 hex digits>                   // CRC-32 of every byte through "end\n"
//! ```
//!
//! Floats are written with Rust's shortest-round-trip `Display` (v1, and
//! v2's φ/ψ) or as raw IEEE-754 bits (v2's μ) and load back
//! **bit-for-bit**, so a save → load cycle is lossless (pinned by the
//! `snapshot_roundtrip` and `snapshot_v2` property suites). Names are
//! escaped (`\t`, `\n`, `\r`, `\\`) so arbitrary entity names survive the
//! line orientation. Decoding is **streaming** for both versions — v2's μ
//! rows go straight from the reader into their final `Vec<f64>`s, so a
//! restore never holds a second full copy of the table — and v2's trailing
//! checksum turns a flipped byte into a [`SnapshotError::Parse`] instead
//! of a silently different model.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use tdh_core::{TdhConfig, TdhModel};
use tdh_data::{Dataset, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh_hierarchy::{HierarchyBuilder, NodeId};

use crate::crc::Crc32;

/// The newest format version: what [`Snapshot::save`] writes. Older
/// versions (v1) remain readable forever.
pub const FORMAT_VERSION: u32 = 2;

/// The header line opening a v1 snapshot file.
const HEADER_V1: &str = "tdh-snapshot v1";

/// The header line opening a v2 snapshot file.
const HEADER_V2: &str = "tdh-snapshot v2";

/// Cap on one binary μ row's length (candidate count per object), so a
/// corrupt length prefix cannot ask the loader for an absurd allocation.
const MAX_MU_ROW: u32 = 1 << 24;

/// Fitted model parameters as persisted in a [`Snapshot`]: everything
/// needed to answer queries and warm-start a refit without rerunning EM.
///
/// `mu` rows are aligned with the candidate order of the
/// [`ObservationIndex`] built from the snapshot's dataset — the index build
/// is deterministic, so the alignment survives the round trip without
/// storing candidate lists.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedParams {
    /// The configuration the parameters were fitted with.
    pub config: TdhConfig,
    /// `φ_s` per source.
    pub phi: Vec<[f64; 3]>,
    /// `ψ_w` per worker.
    pub psi: Vec<[f64; 3]>,
    /// `μ_o` per object, in the dataset index's candidate order.
    pub mu: Vec<Vec<f64>>,
}

/// A complete, persistable problem instance: the dataset (hierarchy, entity
/// universes, records, answers, gold labels) plus, optionally, the fitted
/// model parameters.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The truth-discovery problem instance.
    pub dataset: Dataset,
    /// Fitted parameters, when the snapshot was taken from a fitted model.
    pub params: Option<FittedParams>,
    /// The highest write-ahead-log sequence number this snapshot covers
    /// (`0` = none): recovery replays only WAL batches *after* it, and
    /// compaction may drop segments at or below it. Persisted by v2;
    /// a v1 file loads as `0` (replay everything still in the log).
    pub wal_seq: u64,
}

/// Errors raised while loading or decoding a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// The file does not start with a known format header.
    Version {
        /// The first line actually found.
        found: String,
    },
    /// A structurally invalid line (or, in v2, a checksum mismatch).
    Parse {
        /// 1-based line number (binary sections report their header line).
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::Version { found } => write!(
                f,
                "unsupported snapshot header {found:?} \
                 (this build reads {HEADER_V1:?} and {HEADER_V2:?})"
            ),
            SnapshotError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Escape an entity name for one line-field (`\` `\t` `\n` `\r`).
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            // A trailing or unknown escape round-trips as written; the
            // encoder never produces it.
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

impl Snapshot {
    /// A snapshot of an (un)fitted problem instance without parameters.
    pub fn new(dataset: Dataset) -> Self {
        Snapshot {
            dataset,
            params: None,
            wal_seq: 0,
        }
    }

    /// Capture a dataset together with `model`'s fitted parameters.
    ///
    /// The model must have been fitted against (an index of) `dataset`;
    /// shape mismatches surface when the snapshot is loaded into a
    /// [`crate::TruthServer`].
    pub fn fitted(dataset: Dataset, model: &TdhModel) -> Self {
        let params = FittedParams {
            config: *model.config(),
            phi: model.phi_table().to_vec(),
            psi: model.psi_table().to_vec(),
            mu: model.mu_table().to_vec(),
        };
        Snapshot {
            dataset,
            params: Some(params),
            wal_seq: 0,
        }
    }

    /// The common text sections (hierarchy through φ/ψ), shared verbatim by
    /// both format versions.
    fn encode_body(&self, out: &mut String) {
        let ds = &self.dataset;
        let h = ds.hierarchy();

        out.push_str(&format!("hierarchy {}\n", h.len()));
        for v in h.nodes().skip(1) {
            out.push_str(&format!("{}\t{}\n", h.parent(v).index(), escape(h.name(v))));
        }

        out.push_str(&format!("objects {}\n", ds.n_objects()));
        for o in ds.objects() {
            match ds.gold(o) {
                Some(g) => out.push_str(&format!("{}\t{}\n", g.index(), escape(ds.object_name(o)))),
                None => out.push_str(&format!("-\t{}\n", escape(ds.object_name(o)))),
            }
        }
        out.push_str(&format!("sources {}\n", ds.n_sources()));
        for s in ds.sources() {
            out.push_str(&escape(ds.source_name(s)));
            out.push('\n');
        }
        out.push_str(&format!("workers {}\n", ds.n_workers()));
        for w in ds.workers() {
            out.push_str(&escape(ds.worker_name(w)));
            out.push('\n');
        }

        out.push_str(&format!("records {}\n", ds.records().len()));
        for r in ds.records() {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                r.object.index(),
                r.source.index(),
                r.value.index()
            ));
        }
        out.push_str(&format!("answers {}\n", ds.answers().len()));
        for a in ds.answers() {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                a.object.index(),
                a.worker.index(),
                a.value.index()
            ));
        }

        match &self.params {
            None => out.push_str("params 0\n"),
            Some(p) => {
                out.push_str("params 1\n");
                let c = &p.config;
                out.push_str(&format!(
                    "config\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    c.alpha[0],
                    c.alpha[1],
                    c.alpha[2],
                    c.beta[0],
                    c.beta[1],
                    c.beta[2],
                    c.gamma,
                    c.max_iters,
                    c.tol,
                    u8::from(c.ablation.hierarchy_aware),
                    u8::from(c.ablation.worker_popularity),
                    u8::from(c.warm_start),
                ));
                out.push_str(&format!("phi {}\n", p.phi.len()));
                for row in &p.phi {
                    out.push_str(&format!("{}\t{}\t{}\n", row[0], row[1], row[2]));
                }
                out.push_str(&format!("psi {}\n", p.psi.len()));
                for row in &p.psi {
                    out.push_str(&format!("{}\t{}\t{}\n", row[0], row[1], row[2]));
                }
            }
        }
    }

    /// Encode to the v1 text format. `wal_seq` is not representable in v1
    /// and is dropped (it loads back as `0`); use [`Snapshot::encode_v2`]
    /// or [`Snapshot::save`] to persist it.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER_V1);
        out.push('\n');
        self.encode_body(&mut out);
        if let Some(p) = &self.params {
            out.push_str(&format!("mu {}\n", p.mu.len()));
            for row in &p.mu {
                let fields: Vec<String> = row.iter().map(f64::to_string).collect();
                out.push_str(&fields.join("\t"));
                out.push('\n');
            }
        }
        out.push_str("end\n");
        out
    }

    /// Encode to the v2 format: text sections, binary μ table, trailing
    /// CRC-32. This is what [`Snapshot::save`] writes.
    pub fn encode_v2(&self) -> Vec<u8> {
        let mut text = String::new();
        self.encode_body(&mut text);
        let mut out: Vec<u8> = Vec::with_capacity(text.len() + 64);
        out.extend_from_slice(HEADER_V2.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(format!("wal {}\n", self.wal_seq).as_bytes());
        out.extend_from_slice(text.as_bytes());
        if let Some(p) = &self.params {
            out.extend_from_slice(format!("mubin {}\n", p.mu.len()).as_bytes());
            for row in &p.mu {
                out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                for &x in row {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(b"end\n");
        let mut digest = Crc32::new();
        digest.update(&out);
        out.extend_from_slice(format!("crc {:08x}\n", digest.value()).as_bytes());
        out
    }

    /// Decode either format from a string (handy for v1, which is pure
    /// text). A v2 file with binary μ content is generally not valid UTF-8;
    /// decode those with [`Snapshot::decode_bytes`] or [`Snapshot::load`].
    pub fn decode(text: &str) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode_from(text.as_bytes())
    }

    /// Decode either format from raw bytes.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode_from(bytes)
    }

    /// Decode either format from a buffered reader, streaming: v2's binary
    /// μ rows go straight into their final vectors, so loading never holds
    /// a second full copy of the dominant table.
    pub fn decode_from<R: BufRead>(reader: R) -> Result<Snapshot, SnapshotError> {
        let mut lines = ByteLines::new(reader);
        let header = lines.next_line()?;
        let v2 = match header.as_str() {
            HEADER_V1 => false,
            HEADER_V2 => true,
            _ => return Err(SnapshotError::Version { found: header }),
        };

        // --- Durability metadata (v2 only) ---
        let mut wal_seq = 0u64;
        if v2 {
            let line = lines.next_line()?;
            let seq = line
                .strip_prefix("wal ")
                .ok_or_else(|| lines.err("expected `wal <seq>`"))?;
            wal_seq = seq
                .parse()
                .map_err(|_| lines.err("unparsable wal sequence number"))?;
        }

        // --- Hierarchy ---
        let n_nodes = lines.section("hierarchy")?;
        if n_nodes == 0 {
            return Err(lines.err("hierarchy must contain at least the root"));
        }
        let mut builder = HierarchyBuilder::new();
        for i in 1..n_nodes {
            let line = lines.next_line()?;
            let (parent, name) = line
                .split_once('\t')
                .ok_or_else(|| lines.err("expected <parent>\\t<name>"))?;
            let parent: usize = parent
                .parse()
                .map_err(|_| lines.err("unparsable parent id"))?;
            if parent >= i {
                return Err(lines.err("parent must precede child"));
            }
            let id = builder
                .add_child(NodeId(parent as u32), &unescape(name))
                .map_err(|e| lines.err(&e.to_string()))?;
            if id.index() != i {
                return Err(lines.err("duplicate node name"));
            }
        }
        let mut ds = Dataset::new(builder.build());

        // --- Entities ---
        let n_objects = lines.section("objects")?;
        let mut gold = Vec::with_capacity(n_objects);
        for i in 0..n_objects {
            let line = lines.next_line()?;
            let (g, name) = line
                .split_once('\t')
                .ok_or_else(|| lines.err("expected <gold>\\t<name>"))?;
            let o = ds.intern_object(&unescape(name));
            if o.index() != i {
                return Err(lines.err("duplicate object name"));
            }
            if g != "-" {
                let g: usize = g.parse().map_err(|_| lines.err("unparsable gold id"))?;
                if g >= n_nodes {
                    return Err(lines.err("gold id out of range"));
                }
                gold.push(Some(NodeId(g as u32)));
            } else {
                gold.push(None);
            }
        }
        let n_sources = lines.section("sources")?;
        for i in 0..n_sources {
            let name = unescape(&lines.next_line()?);
            if ds.intern_source(&name).index() != i {
                return Err(lines.err("duplicate source name"));
            }
        }
        let n_workers = lines.section("workers")?;
        for i in 0..n_workers {
            let name = unescape(&lines.next_line()?);
            if ds.intern_worker(&name).index() != i {
                return Err(lines.err("duplicate worker name"));
            }
        }
        for (i, g) in gold.into_iter().enumerate() {
            if let Some(g) = g {
                ds.set_gold(ObjectId::from_index(i), g);
            }
        }

        // --- Evidence ---
        let n_records = lines.section("records")?;
        for _ in 0..n_records {
            let (o, s, v) = lines.id_triple(n_objects, n_sources, n_nodes)?;
            if v == 0 {
                return Err(lines.err("root claims carry no information"));
            }
            ds.add_record(
                ObjectId::from_index(o),
                SourceId::from_index(s),
                NodeId(v as u32),
            );
        }
        // Answers must select among their object's candidates (§2.1) — a
        // tampered file failing that would otherwise panic deep inside the
        // index build instead of erroring here.
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_objects];
        for r in ds.records() {
            cands[r.object.index()].push(r.value);
        }
        for c in &mut cands {
            c.sort_unstable();
            c.dedup();
        }
        let n_answers = lines.section("answers")?;
        for _ in 0..n_answers {
            let (o, w, v) = lines.id_triple(n_objects, n_workers, n_nodes)?;
            if v == 0 {
                return Err(lines.err("root answers carry no information"));
            }
            let value = NodeId(v as u32);
            if cands[o].binary_search(&value).is_err() {
                return Err(lines.err(&format!(
                    "answer value {v} is not a candidate of object {o}"
                )));
            }
            ds.add_answer(ObjectId::from_index(o), WorkerId::from_index(w), value);
        }

        // --- Fitted parameters ---
        let has_params = lines.section("params")?;
        let params = match has_params {
            0 => None,
            1 => {
                let cfg_line = lines.next_line()?;
                let f: Vec<&str> = cfg_line.split('\t').collect();
                if f.len() != 13 || f[0] != "config" {
                    return Err(lines.err("expected a 12-field config line"));
                }
                let num = |lines: &ByteLines<R>, s: &str| -> Result<f64, SnapshotError> {
                    s.parse().map_err(|_| lines.err("unparsable config float"))
                };
                let flag = |lines: &ByteLines<R>, s: &str| -> Result<bool, SnapshotError> {
                    match s {
                        "0" => Ok(false),
                        "1" => Ok(true),
                        _ => Err(lines.err("config flag must be 0 or 1")),
                    }
                };
                let config = TdhConfig {
                    alpha: [num(&lines, f[1])?, num(&lines, f[2])?, num(&lines, f[3])?],
                    beta: [num(&lines, f[4])?, num(&lines, f[5])?, num(&lines, f[6])?],
                    gamma: num(&lines, f[7])?,
                    max_iters: f[8]
                        .parse()
                        .map_err(|_| lines.err("unparsable max_iters"))?,
                    tol: num(&lines, f[9])?,
                    ablation: tdh_core::AblationFlags {
                        hierarchy_aware: flag(&lines, f[10])?,
                        worker_popularity: flag(&lines, f[11])?,
                    },
                    // Thread counts are machine-specific and deliberately
                    // not persisted; the loader re-resolves `0` locally.
                    n_threads: 0,
                    warm_start: flag(&lines, f[12])?,
                };
                let phi = lines.float_table("phi", n_sources)?;
                let psi = lines.float_table("psi", n_workers)?;
                let mu = if v2 {
                    lines.mu_binary(n_objects)?
                } else {
                    lines.mu_text(n_objects)?
                };
                Some(FittedParams {
                    config,
                    phi,
                    psi,
                    mu,
                })
            }
            _ => return Err(lines.err("params flag must be 0 or 1")),
        };

        let end = lines.next_line()?;
        if end != "end" {
            return Err(lines.err("missing end marker"));
        }
        if v2 {
            // Everything through "end\n" is covered by the trailing CRC;
            // capture the digest before consuming the crc line itself.
            let computed = lines.digest_value();
            let line = lines.next_line()?;
            let stored = line
                .strip_prefix("crc ")
                .ok_or_else(|| lines.err("expected trailing `crc <hex>` line"))?;
            let stored =
                u32::from_str_radix(stored, 16).map_err(|_| lines.err("unparsable crc value"))?;
            if stored != computed {
                return Err(lines.err(&format!(
                    "snapshot checksum mismatch (stored {stored:08x}, computed {computed:08x})"
                )));
            }
        }
        Ok(Snapshot {
            dataset: ds,
            params,
            wal_seq,
        })
    }

    /// Atomically write the snapshot to `path` in the v2 format: encode to
    /// a sibling temp file, fsync it, rename over `path`, fsync the
    /// directory — a crash mid-save leaves either the old snapshot or the
    /// new one, never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.encode_v2())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Load a snapshot (either format version) previously written by
    /// [`Snapshot::save`]. Streams from disk — see [`Snapshot::decode_from`].
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode_from(BufReader::new(File::open(path)?))
    }

    /// The observation index of the snapshot's dataset (deterministic, so
    /// `params.mu` rows align with its candidate order).
    pub fn build_index(&self, n_threads: usize) -> ObservationIndex {
        ObservationIndex::build_threaded(&self.dataset, n_threads.max(1))
    }
}

/// Streaming line/byte cursor with 1-based positions for error reporting
/// and a running CRC-32 over every byte consumed (v2's trailing checksum).
struct ByteLines<R: BufRead> {
    reader: R,
    lineno: usize,
    digest: Crc32,
}

impl<R: BufRead> ByteLines<R> {
    fn new(reader: R) -> Self {
        ByteLines {
            reader,
            lineno: 0,
            digest: Crc32::new(),
        }
    }

    fn err(&self, message: &str) -> SnapshotError {
        SnapshotError::Parse {
            line: self.lineno,
            message: message.to_string(),
        }
    }

    /// The checksum of every byte consumed so far.
    fn digest_value(&self) -> u32 {
        self.digest.value()
    }

    fn next_line(&mut self) -> Result<String, SnapshotError> {
        self.lineno += 1;
        let mut buf = Vec::new();
        let n = self.reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Err(SnapshotError::Parse {
                line: self.lineno,
                message: "unexpected end of file".into(),
            });
        }
        self.digest.update(&buf);
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        String::from_utf8(buf).map_err(|_| self.err("non-UTF-8 text line"))
    }

    /// Read exactly `buf.len()` raw bytes (v2's binary μ section).
    fn read_binary(&mut self, buf: &mut [u8]) -> Result<(), SnapshotError> {
        self.reader
            .read_exact(buf)
            .map_err(|_| self.err("unexpected end of file in binary μ section"))?;
        self.digest.update(buf);
        Ok(())
    }

    /// Read a `<tag> <count>` section header.
    fn section(&mut self, tag: &str) -> Result<usize, SnapshotError> {
        let line = self.next_line()?;
        let (found, count) = line
            .split_once(' ')
            .ok_or_else(|| self.err(&format!("expected `{tag} <count>`")))?;
        if found != tag {
            return Err(self.err(&format!("expected section {tag:?}, found {found:?}")));
        }
        count
            .parse()
            .map_err(|_| self.err(&format!("unparsable {tag} count")))
    }

    /// Read a tab-separated id triple, checking each id against its range.
    fn id_triple(
        &mut self,
        max_a: usize,
        max_b: usize,
        max_v: usize,
    ) -> Result<(usize, usize, usize), SnapshotError> {
        let line = self.next_line()?;
        let lineno = self.lineno;
        let mut parts = line.split('\t');
        let mut field = |max: usize, what: &str| -> Result<usize, SnapshotError> {
            let id: usize = parts
                .next()
                .ok_or(SnapshotError::Parse {
                    line: lineno,
                    message: format!("missing {what} id"),
                })?
                .parse()
                .map_err(|_| SnapshotError::Parse {
                    line: lineno,
                    message: format!("unparsable {what} id"),
                })?;
            if id >= max {
                return Err(SnapshotError::Parse {
                    line: lineno,
                    message: format!("{what} id {id} out of range (< {max})"),
                });
            }
            Ok(id)
        };
        let a = field(max_a, "first")?;
        let b = field(max_b, "second")?;
        let v = field(max_v, "value")?;
        Ok((a, b, v))
    }

    /// Read a `<tag> <n>` section of `[f64; 3]` rows; `n` must equal `want`.
    fn float_table(&mut self, tag: &str, want: usize) -> Result<Vec<[f64; 3]>, SnapshotError> {
        let n = self.section(tag)?;
        if n != want {
            return Err(self.err(&format!("{tag} table must have {want} rows, found {n}")));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let line = self.next_line()?;
            let lineno = self.lineno;
            let mut parts = line.split('\t');
            let mut field = || -> Result<f64, SnapshotError> {
                parts
                    .next()
                    .ok_or(SnapshotError::Parse {
                        line: lineno,
                        message: format!("{tag} row needs 3 fields"),
                    })?
                    .parse()
                    .map_err(|_| SnapshotError::Parse {
                        line: lineno,
                        message: format!("unparsable {tag} value"),
                    })
            };
            rows.push([field()?, field()?, field()?]);
        }
        Ok(rows)
    }

    /// Read v1's text `mu <n>` section.
    fn mu_text(&mut self, n_objects: usize) -> Result<Vec<Vec<f64>>, SnapshotError> {
        let n_mu = self.section("mu")?;
        if n_mu != n_objects {
            return Err(self.err("μ table must cover every object"));
        }
        let mut mu = Vec::with_capacity(n_mu);
        for _ in 0..n_mu {
            let line = self.next_line()?;
            if line.is_empty() {
                mu.push(Vec::new());
                continue;
            }
            let row: Result<Vec<f64>, _> = line.split('\t').map(str::parse::<f64>).collect();
            mu.push(row.map_err(|_| self.err("unparsable μ value"))?);
        }
        Ok(mu)
    }

    /// Read v2's binary `mubin <n>` section, one length-prefixed row of
    /// little-endian `f64`s per object, streamed into place.
    fn mu_binary(&mut self, n_objects: usize) -> Result<Vec<Vec<f64>>, SnapshotError> {
        let n_mu = self.section("mubin")?;
        if n_mu != n_objects {
            return Err(self.err("μ table must cover every object"));
        }
        let mut mu = Vec::with_capacity(n_mu);
        let mut word = [0u8; 8];
        for _ in 0..n_mu {
            let mut len4 = [0u8; 4];
            self.read_binary(&mut len4)?;
            let len = u32::from_le_bytes(len4);
            if len > MAX_MU_ROW {
                return Err(self.err(&format!("μ row of {len} values exceeds the cap")));
            }
            let mut row = Vec::with_capacity(len as usize);
            for _ in 0..len {
                self.read_binary(&mut word)?;
                row.push(f64::from_le_bytes(word));
            }
            mu.push(row);
        }
        Ok(mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn table1() -> Dataset {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["UK", "London"]);
        let mut ds = Dataset::new(b.build());
        let sol = ds.intern_object("Statue of Liberty");
        let s = ds.intern_source("Wiki\tpedia"); // hostile name
        let w = ds.intern_worker("Emma\nStone");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.add_record(sol, s, ny);
        ds.add_record(sol, s, li);
        ds.add_answer(sol, w, li);
        ds.set_gold(sol, li);
        ds
    }

    #[test]
    fn dataset_roundtrip_with_hostile_names() {
        let ds = table1();
        let snap = Snapshot::new(ds);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        let (a, b) = (&snap.dataset, &decoded.dataset);
        assert_eq!(a.n_objects(), b.n_objects());
        assert_eq!(a.source_name(SourceId(0)), b.source_name(SourceId(0)));
        assert_eq!(a.worker_name(WorkerId(0)), b.worker_name(WorkerId(0)));
        assert_eq!(a.records(), b.records());
        assert_eq!(a.answers(), b.answers());
        assert_eq!(a.gold(ObjectId(0)), b.gold(ObjectId(0)));
        assert!(decoded.params.is_none());
    }

    #[test]
    fn fitted_roundtrip_is_bitwise() {
        let ds = table1();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let snap = Snapshot::fitted(ds, &model);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        let (a, b) = (snap.params.unwrap(), decoded.params.unwrap());
        assert_eq!(a.phi, b.phi, "φ must round-trip bit-for-bit");
        assert_eq!(a.psi, b.psi);
        assert_eq!(a.mu, b.mu);
        assert_eq!(a.config.alpha, b.config.alpha);
        assert_eq!(a.config.tol, b.config.tol);
    }

    #[test]
    fn v2_fitted_roundtrip_is_bitwise() {
        let ds = table1();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let mut snap = Snapshot::fitted(ds, &model);
        snap.wal_seq = 42;
        let decoded = Snapshot::decode_bytes(&snap.encode_v2()).unwrap();
        assert_eq!(decoded.wal_seq, 42, "wal coverage must survive v2");
        let (a, b) = (snap.params.unwrap(), decoded.params.unwrap());
        assert_eq!(a.phi, b.phi);
        assert_eq!(a.psi, b.psi);
        assert_eq!(a.mu, b.mu, "binary μ must round-trip bit-for-bit");
        assert_eq!(a.config.tol, b.config.tol);
    }

    #[test]
    fn v2_checksum_catches_flipped_bytes() {
        let ds = table1();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let bytes = Snapshot::fitted(ds, &model).encode_v2();
        for at in [20, bytes.len() / 2, bytes.len() - 8] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                Snapshot::decode_bytes(&bad).is_err(),
                "flip at byte {at} must not decode"
            );
        }
    }

    #[test]
    fn v1_files_load_with_zero_wal_seq() {
        let snap = Snapshot::new(table1());
        let decoded = Snapshot::decode_bytes(snap.encode().as_bytes()).unwrap();
        assert_eq!(decoded.wal_seq, 0);
        assert_eq!(decoded.dataset.records(), snap.dataset.records());
    }

    #[test]
    fn version_header_is_checked() {
        let err = Snapshot::decode("tdh-snapshot v99\n").unwrap_err();
        assert!(matches!(err, SnapshotError::Version { .. }), "{err}");
        assert!(err.to_string().contains("v99"));
    }

    #[test]
    fn truncation_and_bad_ids_are_reported_with_lines() {
        let snap = Snapshot::new(table1());
        let text = snap.encode();
        // Drop the trailing end marker.
        let truncated = text.rsplit_once("end\n").unwrap().0;
        let err = Snapshot::decode(truncated).unwrap_err();
        assert!(err.to_string().contains("unexpected end"), "{err}");
        // Corrupt a record id far out of range.
        let bad = text.replace("records 2\n0\t0\t", "records 2\n99\t0\t");
        let err = Snapshot::decode(&bad).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn non_candidate_answer_is_a_decode_error_not_a_panic() {
        // Node ids: root=0, USA=1, NY=2, Liberty Island=3, UK=4, London=5.
        // The answer selects Liberty Island (3); retarget it to London (5),
        // a valid hierarchy node no source ever claimed for the object.
        let text = Snapshot::new(table1()).encode();
        let tampered = text.replace("answers 1\n0\t0\t3", "answers 1\n0\t0\t5");
        assert_ne!(text, tampered, "fixture drifted: answer line not found");
        let err = Snapshot::decode(&tampered).unwrap_err();
        assert!(err.to_string().contains("not a candidate"), "{err}");
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let snap = Snapshot::new(ds);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.dataset.n_objects(), 0);
        assert_eq!(decoded.dataset.hierarchy().len(), 1);
        let decoded = Snapshot::decode_bytes(&snap.encode_v2()).unwrap();
        assert_eq!(decoded.dataset.n_objects(), 0);
    }

    #[test]
    fn save_is_v2_and_load_reads_both() {
        let ds = table1();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let snap = Snapshot::fitted(ds, &model);
        let dir = std::env::temp_dir().join(format!("tdh-snapv2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p2 = dir.join("two.tdhsnap");
        snap.save(&p2).unwrap();
        let head = std::fs::read(&p2).unwrap();
        assert!(head.starts_with(HEADER_V2.as_bytes()), "save writes v2");
        assert_eq!(Snapshot::load(&p2).unwrap().params, snap.params);
        let p1 = dir.join("one.tdhsnap");
        std::fs::write(&p1, snap.encode()).unwrap();
        assert_eq!(Snapshot::load(&p1).unwrap().params, snap.params);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escape_unescape_roundtrip() {
        for s in ["plain", "tab\tnew\nline\rback\\slash", "", "\\t", "end\\"] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }
}
