//! The incremental serving engine: claim ingestion, warm-start refits and
//! the in-process query API.
//!
//! The server is split along its read/write asymmetry. The **writer side**
//! — [`TruthServer::ingest`] and [`TruthServer::refit_now`] — owns the
//! dataset, the in-place observation index and the model, and needs `&mut
//! self` (callers that share a server across threads put it behind their
//! own lock). The **read side** — [`TruthServer::truth`],
//! [`TruthServer::source_reliability`], [`TruthServer::worker_reliability`]
//! and [`TruthServer::top_uncertain`] — never touches any of that: after
//! every fit the server *publishes* an immutable
//! [`ServingState`](crate::ServingState) (see [`crate::state`] for the
//! discipline), and reads answer from the newest publication via one `Arc`
//! clone. [`TruthServer::reader`] hands out a [`StateReader`] that keeps
//! answering — lock-free, from whatever publication is current — even
//! while the writer sits behind a contended mutex ingesting and refitting.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdh_core::{DeltaFitReport, TdhConfig, TdhModel, TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, DeltaSet, ObjectId, ObservationIndex};
use tdh_hierarchy::NodeId;
use tdh_obs::Level;

use crate::metrics::ServerMetrics;
use crate::snapshot::{FittedParams, Snapshot, SnapshotError};
use crate::state::{ServingState, StateReader, StateSlot};
use crate::wal::{Wal, WalError, WalOptions};

/// The snapshot file a durable server keeps inside its data directory.
const SNAPSHOT_FILE: &str = "snapshot.tdhsnap";

/// The write-ahead-log subdirectory of a durable data directory.
const WAL_DIR: &str = "wal";

/// Drift-debt budget [`TruthServer::refit_delta_now`] hands to
/// [`TdhModel::fit_delta`]: the summed touched fractions delta refits may
/// accumulate before the next one is forced through a full fit. Half a
/// corpus worth of frozen-neighbour approximation is a conservative point —
/// the equivalence suite pins delta-vs-full posterior agreement well inside
/// it.
pub const DELTA_MAX_DEBT: f64 = 0.5;

/// When the server refits after ingesting claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefitPolicy {
    /// Refit at the end of every [`TruthServer::ingest`] batch.
    EveryBatch,
    /// Refit once at least this many claims accumulated since the last fit
    /// (checked at batch boundaries; a huge batch still refits once).
    ClaimThreshold(usize),
    /// Refit at the end of every batch, like [`RefitPolicy::EveryBatch`],
    /// but route the refit by *staleness*: when the pending claims touch at
    /// most `max_touched_frac` of the corpus' objects, run an incremental
    /// delta refit ([`TruthServer::refit_delta_now`]) whose cost is
    /// proportional to the delta; otherwise (or when the delta path rejects
    /// — drift budget spent, no warm baseline) run a full fit. `0.0` sends
    /// every non-empty batch to the full path; `1.0` attempts the delta
    /// path for every batch.
    StalenessBound {
        /// Largest fraction of objects a pending delta may touch and still
        /// take the incremental path.
        max_touched_frac: f64,
    },
    /// Never refit automatically; the caller drives
    /// [`TruthServer::refit_now`].
    Manual,
}

/// One incoming claim, by entity name. Unknown objects, sources and workers
/// are interned on ingestion; **values must name existing hierarchy nodes**
/// — the value hierarchy is part of the problem definition and is fixed at
/// snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claim {
    /// A source claim `(object, source, value)` — may introduce a new
    /// candidate value for the object.
    Record {
        /// Object name (interned if new).
        object: String,
        /// Source name (interned if new).
        source: String,
        /// Hierarchy node name of the claimed value.
        value: String,
    },
    /// A crowd answer `(object, worker, value)` — workers select among the
    /// object's existing candidates (§2.1), so the value must already be
    /// claimed by some record.
    Answer {
        /// Object name (must exist and have candidates).
        object: String,
        /// Worker name (interned if new).
        worker: String,
        /// Hierarchy node name of the selected candidate.
        value: String,
    },
}

/// Which fit path a refit took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitKind {
    /// A full EM fit over the whole corpus, publishing a freshly computed
    /// [`ServingState`](crate::ServingState).
    Full,
    /// An incremental [`TdhModel::fit_delta`] over the pending delta's
    /// objects, publishing a structurally shared patch of the previous
    /// state.
    Delta,
}

/// What one refit did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitSummary {
    /// EM iterations the refit ran.
    pub iterations: usize,
    /// Whether the stopping rule fired before `max_iters`.
    pub converged: bool,
    /// Whether the fit was warm-started from previous parameters.
    pub warm: bool,
    /// Whether this was a full fit or an incremental delta refit.
    pub kind: RefitKind,
    /// Wall-clock time of the refit (EM only; the index was already
    /// current).
    pub duration: Duration,
    /// Wall-clock time spent building and swapping the publication
    /// ([`ServingState`](crate::ServingState) compute for full fits, patch
    /// for delta refits).
    pub publish: Duration,
    /// The delta-path report, when [`RefitSummary::kind`] is
    /// [`RefitKind::Delta`] (touched-object count, drift debt).
    pub delta: Option<DeltaFitReport>,
}

/// The outcome of one [`TruthServer::ingest`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Records appended by the batch.
    pub appended_records: usize,
    /// Answers appended by the batch.
    pub appended_answers: usize,
    /// The refit triggered by the batch per [`RefitPolicy`], if any.
    pub refit: Option<RefitSummary>,
    /// Claims ingested but not yet folded into the posterior (0 right after
    /// a refit).
    pub pending: usize,
    /// Wall-clock time spent making the batch durable (WAL append + sync).
    /// `None` when the server has no durability attached or the batch
    /// appended nothing.
    pub wal: Option<Duration>,
}

/// What [`TruthServer::open`] recovered from a durable data directory.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The WAL sequence number the loaded snapshot covered.
    pub snapshot_wal_seq: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Claims those batches re-applied.
    pub replayed_claims: usize,
    /// Wall-clock time of the replay (applying claims; excludes snapshot
    /// load and the final refit).
    pub replay: Duration,
    /// The single post-replay refit, if anything was replayed.
    pub refit: Option<RefitSummary>,
}

/// What one [`TruthServer::checkpoint`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointReport {
    /// The WAL sequence number the new snapshot covers.
    pub wal_seq: u64,
    /// Size of the snapshot file written, in bytes.
    pub snapshot_bytes: u64,
    /// WAL segments dropped by compaction (their batches are now covered).
    pub segments_dropped: usize,
    /// Wall-clock time of the whole checkpoint (snapshot + compaction, and
    /// the refit that folds pending claims first, if one was needed).
    pub duration: Duration,
}

/// A truth lookup result.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthAnswer {
    /// The estimated truth's node name.
    pub value: String,
    /// The estimated truth's full root path, slash-separated.
    pub path: String,
    /// The model's confidence `max_v μ_{o,v}` in the estimate.
    pub confidence: f64,
}

/// Serving counters for monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Objects currently tracked.
    pub n_objects: usize,
    /// Sources currently tracked.
    pub n_sources: usize,
    /// Workers currently tracked.
    pub n_workers: usize,
    /// Records ingested in total.
    pub n_records: usize,
    /// Answers ingested in total.
    pub n_answers: usize,
    /// Claims not yet folded into the posterior.
    pub pending_claims: usize,
    /// Ingest batches processed.
    pub batches: u64,
    /// Refits run (cold + warm).
    pub refits: u64,
    /// [`ServingState`] publications (1 at bootstrap/restore, +1 per refit).
    pub publications: u64,
}

/// Errors raised by ingestion and snapshot loading.
#[derive(Debug)]
pub enum ServeError {
    /// A claimed value does not name a hierarchy node.
    UnknownValue(String),
    /// A claim named the hierarchy root, which carries no information.
    RootValue,
    /// An answer referenced an object with no records (no candidate set).
    UnknownObject(String),
    /// An answer selected a value that no source ever claimed for the
    /// object.
    NotACandidate {
        /// The object the answer was about.
        object: String,
        /// The non-candidate value.
        value: String,
    },
    /// A snapshot's fitted parameters do not match its dataset (e.g. a μ
    /// row disagreeing with the object's candidate count).
    CorruptSnapshot(String),
    /// The batch was applied in memory but could not be made durable (WAL
    /// append or sync failed) — the server no longer guarantees the batch
    /// survives a crash, so the ingest is not acknowledged.
    Durability(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownValue(v) => write!(f, "value {v:?} is not a hierarchy node"),
            ServeError::RootValue => write!(f, "root claims carry no information"),
            ServeError::UnknownObject(o) => {
                write!(f, "object {o:?} has no candidate values to answer about")
            }
            ServeError::NotACandidate { object, value } => {
                write!(
                    f,
                    "value {value:?} is not a candidate for object {object:?}"
                )
            }
            ServeError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            ServeError::Durability(m) => write!(f, "batch not made durable: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Errors raised by the durability layer ([`TruthServer::open`],
/// [`TruthServer::attach_durability`], [`TruthServer::checkpoint`]).
#[derive(Debug)]
pub enum DurableError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// The data directory's snapshot failed to load or save.
    Snapshot(SnapshotError),
    /// The write-ahead log failed to open, append or compact.
    Wal(WalError),
    /// A logged batch that was once accepted no longer applies cleanly —
    /// the snapshot and the log disagree (a tampered or mixed-up data
    /// directory).
    Replay {
        /// The WAL sequence number of the failing batch.
        seq: u64,
        /// Why it failed to re-apply.
        error: ServeError,
    },
    /// The snapshot loaded but could not be served (shape mismatches).
    Serve(ServeError),
    /// The operation needs durability but none is attached.
    NotDurable,
    /// [`TruthServer::open`] found no snapshot in the data directory — it
    /// was never initialized with [`TruthServer::create_durable`] /
    /// [`TruthServer::attach_durability`].
    NoSnapshot,
    /// [`TruthServer::attach_durability`] refused a data directory that
    /// already holds a snapshot or logged batches: attaching would
    /// silently shadow the prior server's durable state. Recover it with
    /// [`TruthServer::open`] instead.
    AlreadyInitialized,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store i/o error: {e}"),
            DurableError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            DurableError::Wal(e) => write!(f, "{e}"),
            DurableError::Replay { seq, error } => {
                write!(f, "wal batch {seq} no longer applies: {error}")
            }
            DurableError::Serve(e) => write!(f, "{e}"),
            DurableError::NotDurable => write!(f, "server has no durability attached"),
            DurableError::NoSnapshot => {
                write!(f, "data directory holds no snapshot to recover from")
            }
            DurableError::AlreadyInitialized => write!(
                f,
                "data directory already holds durable state; open it instead of attaching"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

/// A durable server's attachment: its data directory and open log.
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    wal: Wal,
}

/// An online truth-serving instance: a dataset, its (incrementally
/// maintained) observation index, a fitted model and the current estimate.
///
/// Queries are answered from the **last fitted posterior**; claims ingested
/// since then are counted as pending until the next refit folds them in
/// (the [`RefitPolicy`] decides when). Refits are warm-started from the
/// previous parameters whenever the model allows it, so serving-time
/// refits cost a fraction of the bootstrap fit.
///
/// Every fit ends by publishing an immutable [`ServingState`]; the read
/// methods (and any [`StateReader`] from [`TruthServer::reader`]) answer
/// from the newest publication without touching the writer's state.
#[derive(Debug)]
pub struct TruthServer {
    ds: Dataset,
    idx: ObservationIndex,
    model: TdhModel,
    est: TruthEstimate,
    policy: RefitPolicy,
    pending: usize,
    /// The objects/sources/workers touched by claims ingested since the
    /// last refit (the union of every pending batch's
    /// [`ObservationIndex::append_from`] delta). Cleared on every refit;
    /// consumed by the delta path of [`TruthServer::refit_delta_now`].
    pending_delta: DeltaSet,
    batches: u64,
    refits: u64,
    last_refit: Option<RefitSummary>,
    published: StateSlot,
    publications: u64,
    durability: Option<Durability>,
    recovery: Option<RecoveryReport>,
    metrics: Arc<ServerMetrics>,
}

impl TruthServer {
    /// Bootstrap a server by cold-fitting `cfg` on `ds`.
    pub fn new(ds: Dataset, cfg: TdhConfig, policy: RefitPolicy) -> Self {
        let metrics = ServerMetrics::new();
        let idx =
            ObservationIndex::build_threaded(&ds, tdh_core::par::effective_threads(cfg.n_threads));
        let mut model = TdhModel::new(cfg);
        model.set_metrics(Arc::clone(metrics.registry()));
        let t0 = Instant::now();
        let est = model.infer(&ds, &idx);
        let report = model.fit_report().expect("infer records a report");
        let duration = t0.elapsed();
        let t1 = Instant::now();
        let published = StateSlot::new(ServingState::compute(&ds, &model, &est, 1));
        let summary = RefitSummary {
            iterations: report.iterations,
            converged: report.converged,
            warm: false,
            kind: RefitKind::Full,
            duration,
            publish: t1.elapsed(),
            delta: None,
        };
        metrics.set_population(ds.n_objects(), ds.n_sources(), ds.n_workers());
        metrics.on_applied(ds.records().len(), ds.answers().len(), 0);
        metrics.on_refit(false, RefitKind::Full, summary.duration);
        metrics.on_publish();
        TruthServer {
            ds,
            idx,
            model,
            est,
            policy,
            pending: 0,
            pending_delta: DeltaSet::new(),
            batches: 0,
            refits: 1,
            last_refit: Some(summary),
            published,
            publications: 1,
            durability: None,
            recovery: None,
            metrics,
        }
    }

    /// Bring a server up from a snapshot. With fitted parameters present,
    /// the model is **restored without running EM** — queries are served
    /// immediately and the first refit warm-starts from the restored
    /// posterior. A parameter-less snapshot is cold-fitted like
    /// [`TruthServer::new`].
    pub fn from_snapshot(snap: Snapshot, policy: RefitPolicy) -> Result<Self, ServeError> {
        let Snapshot {
            dataset: ds,
            params,
            wal_seq: _,
        } = snap;
        let Some(FittedParams {
            config,
            phi,
            psi,
            mu,
        }) = params
        else {
            return Ok(TruthServer::new(ds, TdhConfig::default(), policy));
        };
        let idx = ObservationIndex::build_threaded(
            &ds,
            tdh_core::par::effective_threads(config.n_threads),
        );
        if phi.len() != idx.n_sources() {
            return Err(ServeError::CorruptSnapshot(format!(
                "φ table has {} rows for {} sources",
                phi.len(),
                idx.n_sources()
            )));
        }
        if mu.len() != idx.n_objects() {
            return Err(ServeError::CorruptSnapshot(format!(
                "μ table has {} rows for {} objects",
                mu.len(),
                idx.n_objects()
            )));
        }
        for (oi, (row, view)) in mu.iter().zip(idx.views()).enumerate() {
            if row.len() != view.n_candidates() {
                return Err(ServeError::CorruptSnapshot(format!(
                    "μ row {oi} has {} entries for {} candidates",
                    row.len(),
                    view.n_candidates()
                )));
            }
        }
        let metrics = ServerMetrics::new();
        let mut model = TdhModel::restore(config, &idx, phi, psi, mu);
        model.set_metrics(Arc::clone(metrics.registry()));
        let est = TruthEstimate::from_confidences(&idx, model.mu_table().to_vec());
        let published = StateSlot::new(ServingState::compute(&ds, &model, &est, 1));
        metrics.set_population(ds.n_objects(), ds.n_sources(), ds.n_workers());
        metrics.on_applied(ds.records().len(), ds.answers().len(), 0);
        metrics.on_publish();
        Ok(TruthServer {
            ds,
            idx,
            model,
            est,
            policy,
            pending: 0,
            pending_delta: DeltaSet::new(),
            batches: 0,
            refits: 0,
            last_refit: None,
            published,
            publications: 1,
            durability: None,
            recovery: None,
            metrics,
        })
    }

    /// Snapshot the current state (dataset + fitted parameters) for
    /// persistence. On a durable server the snapshot records the WAL
    /// coverage point, so a recovery from it replays only later batches.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::fitted(self.ds.clone(), &self.model);
        if let Some(d) = &self.durability {
            snap.wal_seq = d.wal.next_seq() - 1;
        }
        snap
    }

    /// Bootstrap a durable server: cold-fit `cfg` on `ds` like
    /// [`TruthServer::new`], then attach durability to the fresh data
    /// directory `dir` (see [`TruthServer::attach_durability`]).
    pub fn create_durable(
        dir: &Path,
        ds: Dataset,
        cfg: TdhConfig,
        policy: RefitPolicy,
    ) -> Result<Self, DurableError> {
        let mut server = TruthServer::new(ds, cfg, policy);
        server.attach_durability(dir)?;
        Ok(server)
    }

    /// Attach durability to a running server with default [`WalOptions`].
    pub fn attach_durability(&mut self, dir: &Path) -> Result<(), DurableError> {
        self.attach_durability_with(dir, WalOptions::default())
    }

    /// Attach durability to a running server: every subsequent
    /// [`TruthServer::ingest`] appends its accepted claims to a write-ahead
    /// log under `dir` **before acknowledging**, and an initial
    /// [`TruthServer::checkpoint`] snapshot of the current state is written
    /// immediately — so from this call on, the directory always recovers
    /// via [`TruthServer::open`] to a state containing every acked claim.
    ///
    /// `dir` must be fresh: a directory that already holds a snapshot or
    /// logged batches belongs to a previous server and must be recovered
    /// with [`TruthServer::open`], not shadowed
    /// ([`DurableError::AlreadyInitialized`]).
    pub fn attach_durability_with(
        &mut self,
        dir: &Path,
        options: WalOptions,
    ) -> Result<(), DurableError> {
        if self.durability.is_some() {
            return Err(DurableError::AlreadyInitialized);
        }
        std::fs::create_dir_all(dir)?;
        if dir.join(SNAPSHOT_FILE).exists() {
            return Err(DurableError::AlreadyInitialized);
        }
        let (mut wal, tail) = Wal::open(&dir.join(WAL_DIR), options)?;
        if !tail.is_empty() {
            return Err(DurableError::AlreadyInitialized);
        }
        wal.set_metrics(self.metrics.wal_metrics());
        self.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
        });
        // The initial checkpoint: without it a crash before the first
        // explicit checkpoint would leave WAL batches with no base state
        // to replay onto.
        self.checkpoint()?;
        Ok(())
    }

    /// Recover a durable server from `dir` with default [`WalOptions`].
    pub fn open(dir: &Path, policy: RefitPolicy) -> Result<Self, DurableError> {
        TruthServer::open_with(dir, policy, WalOptions::default())
    }

    /// Recover a durable server from a data directory written by
    /// [`TruthServer::create_durable`] / [`TruthServer::attach_durability`]:
    /// load the snapshot as the checkpoint state, replay the WAL batches it
    /// does not cover (each applied atomically, **without** triggering the
    /// [`RefitPolicy`] or publishing intermediate states), then fold the
    /// replayed claims in with a single warm refit and publication. The
    /// result contains every claim that was ever acknowledged; a torn
    /// final WAL record — an append the crash interrupted before its ack —
    /// is discarded with a warning, never half-applied.
    /// [`TruthServer::recovery`] reports what happened.
    pub fn open_with(
        dir: &Path,
        policy: RefitPolicy,
        options: WalOptions,
    ) -> Result<Self, DurableError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !snap_path.exists() {
            return Err(DurableError::NoSnapshot);
        }
        let snap = Snapshot::load(&snap_path)?;
        let covered = snap.wal_seq;
        let mut server = TruthServer::from_snapshot(snap, policy).map_err(DurableError::Serve)?;
        let (mut wal, batches) = Wal::open(&dir.join(WAL_DIR), options)?;
        wal.set_metrics(server.metrics.wal_metrics());
        let t0 = Instant::now();
        let mut replayed_batches = 0;
        let mut replayed_claims = 0;
        for batch in &batches {
            if batch.seq <= covered {
                // A compacted log can still hold a partially covered
                // segment; its older batches are already in the snapshot.
                continue;
            }
            let (records, answers, failure) = server.apply_batch(&batch.claims);
            server.batches += 1;
            server.metrics.on_batch(batch.claims.len());
            if let Some(error) = failure {
                return Err(DurableError::Replay {
                    seq: batch.seq,
                    error,
                });
            }
            replayed_batches += 1;
            replayed_claims += records + answers;
        }
        let replay = t0.elapsed();
        server.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
        });
        // One refit at the end — not one per replayed batch: replay is
        // catch-up, not re-serving, so intermediate posteriors are never
        // computed or published.
        let refit = (replayed_batches > 0).then(|| server.refit_now());
        server.recovery = Some(RecoveryReport {
            snapshot_wal_seq: covered,
            replayed_batches,
            replayed_claims,
            replay,
            refit,
        });
        Ok(server)
    }

    /// Checkpoint a durable server: write a snapshot of the current state
    /// (recording how much of the WAL it covers), then compact the log by
    /// dropping fully covered segments. Pending claims are folded in with
    /// a refit first when needed, so the snapshot's parameters always
    /// match its dataset. The snapshot write is atomic (temp file +
    /// rename); a crash mid-checkpoint recovers from whichever snapshot —
    /// old or new — is in place.
    pub fn checkpoint(&mut self) -> Result<CheckpointReport, DurableError> {
        if self.durability.is_none() {
            return Err(DurableError::NotDurable);
        }
        let t0 = Instant::now();
        if self.pending > 0 {
            self.refit_now();
        }
        let snap = self.snapshot();
        let covered = snap.wal_seq;
        let d = self.durability.as_mut().expect("checked above");
        let path = d.dir.join(SNAPSHOT_FILE);
        snap.save(&path)?;
        let snapshot_bytes = std::fs::metadata(&path)?.len();
        let segments_dropped = d.wal.truncate_covered(covered)?;
        self.metrics.on_checkpoint();
        Ok(CheckpointReport {
            wal_seq: covered,
            snapshot_bytes,
            segments_dropped,
            duration: t0.elapsed(),
        })
    }

    /// What [`TruthServer::open`] recovered, if this server came from a
    /// durable data directory.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Whether a durability layer is attached (claims are WAL-logged
    /// before acks and [`TruthServer::checkpoint`] is available).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Ingest one batch of claims in **two passes**: all of the batch's
    /// records first (in batch order — these can extend candidate sets,
    /// appended to the index in place, no rebuild), then all of its
    /// answers (in batch order), each validated against the candidate
    /// sets as they stand *after* the record pass — so an answer may
    /// select a value introduced by any record of the same batch,
    /// regardless of their relative positions. The [`RefitPolicy`] then
    /// decides whether to refit.
    ///
    /// On error the current pass stops at the offending claim and the
    /// batch's remaining claims are dropped: a failing record drops the
    /// batch's answers too (the answer pass never runs), while a failing
    /// answer retains all of the batch's records and the answers
    /// preceding it. Everything already applied stays ingested, counts
    /// toward `pending`, and the index is left in sync either way.
    ///
    /// On a durable server the accepted claims are appended to the
    /// write-ahead log — and synced — **before** this method returns, so an
    /// acknowledged batch survives a crash (the claims a partially failed
    /// batch kept are logged too: they are server state). A WAL failure
    /// surfaces as [`ServeError::Durability`] and the batch must be
    /// considered unacknowledged.
    pub fn ingest(&mut self, batch: &[Claim]) -> Result<IngestReport, ServeError> {
        self.batches += 1;
        self.metrics.on_batch(batch.len());
        let (appended_records, appended_answers, failure) = self.apply_batch(batch);

        // Durability barrier: log what was actually appended before any
        // ack (the Err path included — those claims stayed applied).
        let mut wal_time = None;
        if self.durability.is_some() && appended_records + appended_answers > 0 {
            let logged = self.logged_claims(appended_records, appended_answers);
            let d = self.durability.as_mut().expect("checked above");
            let t0 = Instant::now();
            d.wal
                .append(&logged)
                .map_err(|e| ServeError::Durability(e.to_string()))?;
            wal_time = Some(t0.elapsed());
        }

        if let Some(e) = failure {
            return Err(e);
        }

        let refit = self.policy_refit();
        Ok(IngestReport {
            appended_records,
            appended_answers,
            refit,
            pending: self.pending,
            wal: wal_time,
        })
    }

    /// Ingest several batches under one durability barrier (**group
    /// commit**): every batch's accepted claims are appended to the WAL
    /// unsynced, then a *single* fsync acknowledges them all, and the refit
    /// policy runs once at the group boundary (the refit, if any, lands on
    /// the last successful report). With per-batch [`TruthServer::ingest`]
    /// each batch pays its own fsync; here `n` batches cost one — the fsync
    /// coalescing a front-end that buffers concurrent producers wants.
    ///
    /// Per-batch semantics are unchanged: each `Result` mirrors what
    /// [`TruthServer::ingest`] would have returned for that batch (partial
    /// failures keep their prefix applied and logged). If the group's final
    /// sync fails, **every** batch of the group is reported as
    /// unacknowledged — none of its appends are guaranteed on disk.
    pub fn ingest_group(
        &mut self,
        batches: &[Vec<Claim>],
    ) -> Vec<Result<IngestReport, ServeError>> {
        let mut results: Vec<Result<IngestReport, ServeError>> = Vec::with_capacity(batches.len());
        for batch in batches {
            self.batches += 1;
            self.metrics.on_batch(batch.len());
            let (appended_records, appended_answers, failure) = self.apply_batch(batch);
            let mut wal_time = None;
            let mut wal_err = None;
            if self.durability.is_some() && appended_records + appended_answers > 0 {
                let logged = self.logged_claims(appended_records, appended_answers);
                let d = self.durability.as_mut().expect("checked above");
                let t0 = Instant::now();
                match d.wal.append_unsynced(&logged) {
                    Ok(_seq) => wal_time = Some(t0.elapsed()),
                    Err(e) => wal_err = Some(ServeError::Durability(e.to_string())),
                }
            }
            match (wal_err, failure) {
                (Some(e), _) | (None, Some(e)) => results.push(Err(e)),
                (None, None) => results.push(Ok(IngestReport {
                    appended_records,
                    appended_answers,
                    refit: None,
                    pending: self.pending,
                    wal: wal_time,
                })),
            }
        }

        // The group's durability barrier: one fsync acks every batch
        // appended above.
        if let Some(d) = &mut self.durability {
            let t0 = Instant::now();
            if let Err(e) = d.wal.sync() {
                for r in results.iter_mut() {
                    if r.is_ok() {
                        *r = Err(ServeError::Durability(e.to_string()));
                    }
                }
                return results;
            }
            let sync_time = t0.elapsed();
            // Charge the shared fsync to the last durable batch's report.
            if let Some(r) = results
                .iter_mut()
                .rev()
                .filter_map(|r| r.as_mut().ok())
                .find(|r| r.wal.is_some())
            {
                r.wal = Some(r.wal.unwrap_or_default() + sync_time);
            }
        }

        // Policy check once, at the group boundary.
        let refit = self.policy_refit();
        if let Some(last) = results.iter_mut().rev().find_map(|r| r.as_mut().ok()) {
            last.refit = refit;
            last.pending = self.pending;
        }
        results
    }

    /// The last `records`/`answers` appended to the dataset, re-encoded as
    /// named claims for WAL logging.
    fn logged_claims(&self, appended_records: usize, appended_answers: usize) -> Vec<Claim> {
        let records = self.ds.records();
        let answers = self.ds.answers();
        let mut logged = Vec::with_capacity(appended_records + appended_answers);
        for r in &records[records.len() - appended_records..] {
            logged.push(Claim::Record {
                object: self.ds.object_name(r.object).to_string(),
                source: self.ds.source_name(r.source).to_string(),
                value: self.ds.hierarchy().name(r.value).to_string(),
            });
        }
        for a in &answers[answers.len() - appended_answers..] {
            logged.push(Claim::Answer {
                object: self.ds.object_name(a.object).to_string(),
                worker: self.ds.worker_name(a.worker).to_string(),
                value: self.ds.hierarchy().name(a.value).to_string(),
            });
        }
        logged
    }

    /// Evaluate the refit policy against the pending claims, running the
    /// refit it selects. `None` when the policy keeps the posterior stale.
    fn policy_refit(&mut self) -> Option<RefitSummary> {
        match self.policy {
            RefitPolicy::EveryBatch if self.pending > 0 => Some(self.refit_now()),
            // `pending > 0` matters when `t == 0`: a batch that appended
            // nothing (empty, or all claims rejected with what preceded
            // them already applied) must not trigger a refit of an
            // unchanged posterior.
            RefitPolicy::ClaimThreshold(t) if self.pending > 0 && self.pending >= t => {
                Some(self.refit_now())
            }
            RefitPolicy::StalenessBound { max_touched_frac } if self.pending > 0 => {
                let frac = self.pending_delta.touched_frac(self.idx.n_objects());
                Some(if frac <= max_touched_frac {
                    self.refit_delta_now()
                } else {
                    self.refit_now()
                })
            }
            _ => None,
        }
    }

    /// The two ingest passes, applied to the in-memory state only: no
    /// refit-policy check, no WAL append, no publication. This is both the
    /// core of [`TruthServer::ingest`] and the unit of WAL **replay** —
    /// recovery re-applies logged batches through here so it restores
    /// counts without recomputing or republishing intermediate posteriors.
    /// Returns what was appended and the failure that stopped the batch
    /// early, if any.
    fn apply_batch(&mut self, batch: &[Claim]) -> (usize, usize, Option<ServeError>) {
        let (n_rec, n_ans) = (self.ds.records().len(), self.ds.answers().len());
        let mut failure = None;

        // Pass 1: records (these can extend candidate sets).
        for claim in batch {
            let Claim::Record {
                object,
                source,
                value,
            } = claim
            else {
                continue;
            };
            match self.resolve_value(value) {
                Ok(v) => {
                    let o = self.ds.intern_object(object);
                    let s = self.ds.intern_source(source);
                    self.ds.add_record(o, s, v);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let d = self.idx.append_from(&self.ds, n_rec, n_ans);
        self.pending_delta.merge(&d);

        // Pass 2: answers, validated against the updated candidate sets.
        if failure.is_none() {
            for claim in batch {
                let Claim::Answer {
                    object,
                    worker,
                    value,
                } = claim
                else {
                    continue;
                };
                match self.validate_answer(object, value) {
                    Ok((o, v)) => {
                        let w = self.ds.intern_worker(worker);
                        self.ds.add_answer(o, w, v);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            // Merging keeps the *minimum* old counts per object, so the
            // pass-1 record count used as this call's baseline cannot
            // shadow the true pre-batch snapshot captured above.
            let d = self
                .idx
                .append_from(&self.ds, self.ds.records().len(), n_ans);
            self.pending_delta.merge(&d);
        }

        let appended_records = self.ds.records().len() - n_rec;
        let appended_answers = self.ds.answers().len() - n_ans;
        self.pending += appended_records + appended_answers;
        self.metrics.set_population(
            self.ds.n_objects(),
            self.ds.n_sources(),
            self.ds.n_workers(),
        );
        self.metrics
            .on_applied(appended_records, appended_answers, self.pending);
        (appended_records, appended_answers, failure)
    }

    /// Resolve and validate one answer against the current candidate sets.
    fn validate_answer(&self, object: &str, value: &str) -> Result<(ObjectId, NodeId), ServeError> {
        let v = self.resolve_value(value)?;
        let o = self
            .ds
            .object_by_name(object)
            .filter(|o| self.idx.view(*o).n_candidates() > 0)
            .ok_or_else(|| ServeError::UnknownObject(object.to_string()))?;
        if self.idx.view(o).cand_index(v).is_none() {
            return Err(ServeError::NotACandidate {
                object: object.to_string(),
                value: value.to_string(),
            });
        }
        Ok((o, v))
    }

    /// Refit immediately (warm-started whenever previous parameters are
    /// available and [`TdhConfig::warm_start`] is on), folding every
    /// pending claim into the posterior and publishing the refreshed
    /// [`ServingState`] to all readers.
    pub fn refit_now(&mut self) -> RefitSummary {
        let warm = self.model.has_warm_start();
        let t0 = Instant::now();
        self.est = self.model.infer(&self.ds, &self.idx);
        let report = self.model.fit_report().expect("infer records a report");
        let duration = t0.elapsed();
        self.pending = 0;
        self.pending_delta = DeltaSet::new();
        self.refits += 1;
        self.publications += 1;
        let t1 = Instant::now();
        self.published.publish(ServingState::compute(
            &self.ds,
            &self.model,
            &self.est,
            self.publications,
        ));
        let summary = RefitSummary {
            iterations: report.iterations,
            converged: report.converged,
            warm,
            kind: RefitKind::Full,
            duration,
            publish: t1.elapsed(),
            delta: None,
        };
        self.last_refit = Some(summary);
        self.metrics
            .on_refit(warm, RefitKind::Full, summary.duration);
        self.metrics.on_publish();
        tdh_obs::log_event!(
            Level::Info,
            "refit",
            "published",
            version = self.publications,
            iterations = summary.iterations,
            warm = warm,
        );
        summary
    }

    /// Refit **incrementally**: run [`TdhModel::fit_delta`] over only the
    /// objects the pending claims touched (every other posterior frozen),
    /// then publish a [`ServingState`](crate::ServingState) *patch* that
    /// structurally shares the untouched majority of the previous
    /// publication. Work — model fit and publication alike — is
    /// proportional to the delta, not the corpus.
    ///
    /// Falls back to [`TruthServer::refit_now`] when the delta path
    /// declines (warm starts disabled, no full-fit baseline — e.g. right
    /// after a snapshot restore — or the accumulated drift debt exceeding
    /// [`DELTA_MAX_DEBT`]); a declined `fit_delta` leaves the model
    /// untouched, so the fallback full fit is bitwise identical to having
    /// never attempted the delta. The returned summary's
    /// [`RefitSummary::kind`] says which path ran.
    pub fn refit_delta_now(&mut self) -> RefitSummary {
        let delta = std::mem::take(&mut self.pending_delta);
        let t0 = Instant::now();
        let report = match self
            .model
            .fit_delta(&self.ds, &self.idx, &delta, DELTA_MAX_DEBT)
        {
            Ok(report) => report,
            Err(rejected) => {
                tdh_obs::log_event!(
                    Level::Info,
                    "refit",
                    "delta_fallback",
                    touched_objects = delta.objects().len(),
                    reason = rejected.to_string(),
                );
                return self.refit_now();
            }
        };
        self.model.patch_estimate(&self.idx, &delta, &mut self.est);
        let duration = t0.elapsed();
        self.pending = 0;
        self.refits += 1;
        self.publications += 1;
        let t1 = Instant::now();
        let patched = self.published.load().patch(
            &self.ds,
            &self.model,
            &self.est,
            &delta,
            self.publications,
        );
        self.published.publish(patched);
        let summary = RefitSummary {
            iterations: report.iterations,
            converged: report.converged,
            warm: true,
            kind: RefitKind::Delta,
            duration,
            publish: t1.elapsed(),
            delta: Some(report),
        };
        self.last_refit = Some(summary);
        self.metrics
            .on_refit(true, RefitKind::Delta, summary.duration);
        self.metrics.on_publish();
        tdh_obs::log_event!(
            Level::Info,
            "refit",
            "published_delta",
            version = self.publications,
            iterations = summary.iterations,
            touched_objects = report.touched_objects,
            debt = report.debt,
        );
        summary
    }

    /// The estimated truth for `object`, from the last published posterior.
    /// `None` for objects unknown (or candidate-less) at publication time.
    pub fn truth(&self, object: &str) -> Option<TruthAnswer> {
        self.state().truth(object).cloned()
    }

    /// `φ_s` for a source, by name. `None` for unknown sources and sources
    /// that joined after the last refit.
    pub fn source_reliability(&self, source: &str) -> Option<[f64; 3]> {
        self.state().source_reliability(source)
    }

    /// `ψ_w` for a worker, by name (the prior mean for workers the last
    /// fit saw no answers from). `None` for unknown workers and workers
    /// that joined after the last refit.
    pub fn worker_reliability(&self, worker: &str) -> Option<[f64; 3]> {
        self.state().worker_reliability(worker)
    }

    /// The `k` objects the model is least certain about: smallest top
    /// confidence `max_v μ_{o,v}`, as `(object name, uncertainty)` with
    /// `uncertainty = 1 − max_v μ_{o,v}`, most uncertain first (ties by
    /// object name — a total order, identical on every shard of a
    /// [`crate::ShardedServer`]). Candidate-less objects are skipped — there is nothing
    /// to be uncertain about. This is the serving-time view the EAI
    /// assigner's "where would crowd answers help most" question reduces
    /// to between rounds. Served pre-ranked from the published state.
    pub fn top_uncertain(&self, k: usize) -> Vec<(String, f64)> {
        self.state()
            .top_uncertain(k)
            .iter()
            .map(|(name, u)| (name.to_string(), *u))
            .collect()
    }

    /// The current [`ServingState`] publication.
    pub fn state(&self) -> Arc<ServingState> {
        self.published.load()
    }

    /// A lock-free read handle onto this server's published state. Clones
    /// are cheap; hand one to every reader thread — they keep answering
    /// from the newest publication while the writer ingests and refits,
    /// without ever contending on whatever lock the writer lives behind.
    pub fn reader(&self) -> StateReader {
        self.published.reader()
    }

    /// Serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            n_objects: self.ds.n_objects(),
            n_sources: self.ds.n_sources(),
            n_workers: self.ds.n_workers(),
            n_records: self.ds.records().len(),
            n_answers: self.ds.answers().len(),
            pending_claims: self.pending,
            batches: self.batches,
            refits: self.refits,
            publications: self.publications,
        }
    }

    /// The summary of the most recent (re)fit, if any ran in this process.
    pub fn last_refit(&self) -> Option<RefitSummary> {
        self.last_refit
    }

    /// This server's lock-free metrics handle: atomic mirrors of the
    /// [`TruthServer::stats`] counters plus the ingest/WAL/refit/EM
    /// instrument registry the `METRICS` wire command exposes. The handle
    /// stays valid (and keeps updating) while the server itself sits behind
    /// a writer lock.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The served dataset (read-only; mutate through
    /// [`TruthServer::ingest`]).
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The fitted model backing the current answers.
    pub fn model(&self) -> &TdhModel {
        &self.model
    }

    fn resolve_value(&self, value: &str) -> Result<NodeId, ServeError> {
        let v = self
            .ds
            .hierarchy()
            .node_by_name(value)
            .ok_or_else(|| ServeError::UnknownValue(value.to_string()))?;
        if v == NodeId::ROOT {
            return Err(ServeError::RootValue);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// A corpus where "good" sources agree on the gold truth and a liar
    /// dissents, over a two-level geography.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let liar = ds.intern_source("liar");
        for i in 0..20 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let truth = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let wrong = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, truth);
            ds.add_record(o, good1, truth);
            ds.add_record(o, good2, truth);
            ds.add_record(o, liar, wrong);
        }
        ds
    }

    fn record(object: &str, source: &str, value: &str) -> Claim {
        Claim::Record {
            object: object.into(),
            source: source.into(),
            value: value.into(),
        }
    }

    fn answer(object: &str, worker: &str, value: &str) -> Claim {
        Claim::Answer {
            object: object.into(),
            worker: worker.into(),
            value: value.into(),
        }
    }

    #[test]
    fn bootstrap_fit_answers_queries() {
        let server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::EveryBatch);
        let t = server.truth("o0").expect("fitted");
        assert_eq!(t.value, "C0T0");
        assert_eq!(t.path, "C0/C0T0");
        assert!(t.confidence > 0.5);
        let phi = server.source_reliability("good1").unwrap();
        // The corpus is flat (no candidate is an ancestor of another), so
        // Eq. (2) cannot separate exact from generalized mass — assert on
        // the combined correct mass instead.
        assert!(phi[0] + phi[1] > 0.8, "good source: {phi:?}");
        assert!(phi[2] < 0.2, "good source wrong mass: {phi:?}");
        assert!(server.source_reliability("nobody").is_none());
        assert!(server.truth("phantom").is_none());
        let stats = server.stats();
        assert_eq!(stats.n_records, 60);
        assert_eq!(stats.refits, 1);
    }

    #[test]
    fn ingest_appends_and_refits_per_policy() {
        let mut server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::EveryBatch);
        let report = server
            .ingest(&[
                record("o20", "good1", "C1T2"),
                record("o20", "liar", "C2T2"),
                answer("o20", "w0", "C1T2"),
            ])
            .unwrap();
        assert_eq!(report.appended_records, 2);
        assert_eq!(report.appended_answers, 1);
        let refit = report.refit.expect("EveryBatch refits");
        assert!(refit.warm, "second fit must warm-start");
        assert_eq!(report.pending, 0);
        let t = server.truth("o20").unwrap();
        assert_eq!(t.value, "C1T2", "good + worker beat the liar");
        assert!(server.worker_reliability("w0").is_some());
    }

    #[test]
    fn claim_threshold_defers_refits() {
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::ClaimThreshold(3),
        );
        let r1 = server.ingest(&[record("o0", "good1", "C0T0")]).unwrap();
        assert!(r1.refit.is_none());
        assert_eq!(r1.pending, 1);
        // Queries still answered from the previous posterior.
        assert!(server.truth("o0").is_some());
        let r2 = server
            .ingest(&[record("o1", "good1", "C1T1"), record("o2", "good2", "C2T2")])
            .unwrap();
        assert!(r2.refit.is_some(), "threshold reached");
        assert_eq!(server.stats().pending_claims, 0);
    }

    #[test]
    fn claim_threshold_zero_ignores_no_op_batches() {
        // Regression: `ClaimThreshold(0)` used to refit on *every* ingest
        // call because `pending >= 0` is vacuously true — including batches
        // that appended nothing, refitting an unchanged posterior.
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::ClaimThreshold(0),
        );
        let refits_before = server.stats().refits;
        let report = server.ingest(&[]).unwrap();
        assert!(report.refit.is_none(), "empty batch must not refit");
        assert_eq!(report.appended_records + report.appended_answers, 0);
        assert_eq!(server.stats().refits, refits_before);

        // A batch whose only claim is rejected appends nothing either.
        let err = server
            .ingest(&[record("o0", "good1", "Atlantis")])
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownValue(_)), "{err}");
        assert_eq!(server.stats().refits, refits_before);
        assert_eq!(server.stats().pending_claims, 0);

        // The threshold still fires as soon as a batch actually appends.
        let report = server.ingest(&[record("o0", "good1", "C0T0")]).unwrap();
        assert!(report.refit.is_some(), "appended claim must refit at t=0");
        assert_eq!(server.stats().refits, refits_before + 1);
    }

    #[test]
    fn refits_publish_fresh_states_with_increasing_versions() {
        let mut server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::EveryBatch);
        let reader = server.reader();
        let first = reader.load();
        assert_eq!(first.version(), 1);
        assert_eq!(server.stats().publications, 1);
        server
            .ingest(&[
                record("o21", "good1", "C3T3"),
                record("o21", "good2", "C3T3"),
            ])
            .unwrap();
        let second = reader.load();
        assert_eq!(second.version(), 2, "refit publishes a new state");
        assert!(first.truth("o21").is_none(), "old publication is immutable");
        let t = second.truth("o21").expect("new object published");
        assert_eq!(t.value, "C3T3");
        // The pre-publication Arc keeps serving its own publication.
        assert_eq!(first.version(), 1);
    }

    #[test]
    fn invalid_claims_are_rejected() {
        let mut server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::Manual);
        let err = server
            .ingest(&[record("o0", "good1", "Atlantis")])
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownValue(_)), "{err}");
        let err = server.ingest(&[answer("o0", "w0", "C2T0")]).unwrap_err();
        assert!(matches!(err, ServeError::NotACandidate { .. }), "{err}");
        let err = server
            .ingest(&[answer("never-claimed", "w0", "C0T0")])
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownObject(_)), "{err}");
    }

    #[test]
    fn snapshot_restore_serves_identical_answers() {
        let mut server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::Manual);
        server
            .ingest(&[answer("o0", "w0", "C0T0"), answer("o1", "w0", "C1T1")])
            .unwrap();
        server.refit_now();
        let snap = server.snapshot();
        let restored = TruthServer::from_snapshot(
            Snapshot::decode(&snap.encode()).unwrap(),
            RefitPolicy::Manual,
        )
        .unwrap();
        assert_eq!(restored.stats().refits, 0, "restored without refitting");
        for i in 0..20 {
            let name = format!("o{i}");
            assert_eq!(
                server.truth(&name),
                restored.truth(&name),
                "answers must survive the round trip bit-for-bit"
            );
        }
        assert_eq!(
            server.source_reliability("liar"),
            restored.source_reliability("liar")
        );
    }

    #[test]
    fn restored_server_warm_starts_its_first_refit() {
        let server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::EveryBatch);
        let snap = server.snapshot();
        let mut restored = TruthServer::from_snapshot(snap, RefitPolicy::EveryBatch).unwrap();
        let report = restored.ingest(&[record("o0", "good2", "C0T0")]).unwrap();
        let refit = report.refit.unwrap();
        assert!(refit.warm, "restored params must seed the refit");
        assert!(
            refit.iterations < server.last_refit().unwrap().iterations,
            "warm refit beats the bootstrap fit's iteration count"
        );
    }

    #[test]
    fn corrupt_params_are_rejected() {
        let server = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::Manual);
        let mut snap = server.snapshot();
        snap.params.as_mut().unwrap().mu[0].push(0.5);
        let err = TruthServer::from_snapshot(snap, RefitPolicy::Manual).unwrap_err();
        assert!(matches!(err, ServeError::CorruptSnapshot(_)), "{err}");
    }

    #[test]
    fn top_uncertain_ranks_contested_objects_first() {
        let mut ds = corpus();
        // A contested object: two sources split 1–1 with no hierarchy help.
        let o = ds.intern_object("contested");
        let a = ds.hierarchy().node_by_name("C0T1").unwrap();
        let b = ds.hierarchy().node_by_name("C1T0").unwrap();
        let s1 = ds.source_by_name("good1").unwrap();
        let s2 = ds.source_by_name("good2").unwrap();
        ds.add_record(o, s1, a);
        ds.add_record(o, s2, b);
        let server = TruthServer::new(ds, TdhConfig::default(), RefitPolicy::Manual);
        let top = server.top_uncertain(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, "contested");
        assert!(top[0].1 > top[2].1 - 1e-12, "sorted by uncertainty");
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DIR_ID: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tdh-server-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A batch claiming `n` fresh objects (3 records each, one answer).
    fn wide_batch(round: usize, n: usize) -> Vec<Claim> {
        let mut claims = Vec::new();
        for i in 0..n {
            let name = format!("r{round}x{i}");
            let truth = format!("C{}T{}", i % 4, (i + 1) % 4);
            let wrong = format!("C{}T{}", (i + 2) % 4, (i + 1) % 4);
            claims.push(record(&name, "good1", &truth));
            claims.push(record(&name, "good2", &truth));
            claims.push(record(&name, "liar", &wrong));
            claims.push(answer(&name, "w0", &truth));
        }
        claims
    }

    /// Counter value rendered by the server's metrics registry, by exact
    /// exposition-line prefix.
    fn counter_value(server: &TruthServer, name: &str) -> u64 {
        let text = server.metrics().registry().render();
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    #[test]
    fn staleness_bound_routes_by_touched_fraction() {
        // 20 bootstrap objects; the bound admits deltas touching ≤ 30%.
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::StalenessBound {
                max_touched_frac: 0.3,
            },
        );
        // 2 fresh objects over a 22-object corpus: well under the bound.
        let refit = server.ingest(&wide_batch(0, 2)).unwrap().refit.unwrap();
        assert_eq!(
            refit.kind,
            RefitKind::Delta,
            "small batch takes the delta path"
        );
        let delta = refit.delta.expect("delta summary carries its report");
        assert_eq!(delta.touched_objects, 2);
        assert!(refit.warm);
        // A batch touching far more than 30% of the corpus goes full.
        let refit = server.ingest(&wide_batch(1, 30)).unwrap().refit.unwrap();
        assert_eq!(refit.kind, RefitKind::Full, "wide batch crosses the bound");
        assert!(refit.delta.is_none());
        // Both paths folded their claims in: everything answers.
        assert!(server.truth("r0x0").is_some());
        assert!(server.truth("r1x29").is_some());
        assert_eq!(server.stats().pending_claims, 0);
    }

    #[test]
    fn staleness_bound_zero_always_runs_full_fits() {
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::StalenessBound {
                max_touched_frac: 0.0,
            },
        );
        for round in 0..3 {
            let refit = server.ingest(&wide_batch(round, 1)).unwrap().refit.unwrap();
            assert_eq!(
                refit.kind,
                RefitKind::Full,
                "a zero bound is EveryBatch-with-full-fits"
            );
        }
    }

    #[test]
    fn staleness_bound_one_deltas_until_drift_budget_forces_full() {
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::StalenessBound {
                max_touched_frac: 1.0,
            },
        );
        let mut kinds = Vec::new();
        for round in 0..4 {
            // Each batch touches ~1/5 of the corpus, so the 0.5 drift
            // budget admits a couple of delta refits and then forces a
            // full fit that resets the debt.
            let refit = server.ingest(&wide_batch(round, 5)).unwrap().refit.unwrap();
            kinds.push(refit.kind);
        }
        assert_eq!(
            kinds[0],
            RefitKind::Delta,
            "bound 1.0 always attempts delta"
        );
        assert!(
            kinds.contains(&RefitKind::Full),
            "drift debt must eventually force a full fit: {kinds:?}"
        );
        let counted = counter_value(&server, "tdh_refits_total{kind=\"delta\",warm=\"true\"}");
        let expected = kinds.iter().filter(|k| **k == RefitKind::Delta).count() as u64;
        assert_eq!(counted, expected, "kind-labelled refit counter matches");
    }

    #[test]
    fn delta_patch_publication_matches_compute() {
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::StalenessBound {
                max_touched_frac: 0.5,
            },
        );
        // Mix fresh objects with claims/answers on existing ones so the
        // patch exercises inserts, updates and reliability refreshes.
        let mut batch = wide_batch(0, 2);
        batch.push(record("o3", "good1", "C3T3"));
        batch.push(answer("o5", "w9", "C1T1"));
        let refit = server.ingest(&batch).unwrap().refit.unwrap();
        assert_eq!(refit.kind, RefitKind::Delta);

        let patched = server.state();
        let recomputed =
            ServingState::compute(&server.ds, &server.model, &server.est, patched.version());
        assert_eq!(patched.version(), 2, "bootstrap publication + one patch");
        for o in server.ds.objects() {
            let name = server.ds.object_name(o);
            assert_eq!(
                patched.truth(name),
                recomputed.truth(name),
                "truth for {name} must match a from-scratch publication"
            );
        }
        for s in server.ds.sources() {
            let name = server.ds.source_name(s);
            assert_eq!(
                patched.source_reliability(name),
                recomputed.source_reliability(name)
            );
        }
        for w in server.ds.workers() {
            let name = server.ds.worker_name(w);
            assert_eq!(
                patched.worker_reliability(name),
                recomputed.worker_reliability(name)
            );
        }
        let n = server.ds.n_objects();
        let a: Vec<(String, f64)> = patched
            .top_uncertain(n)
            .iter()
            .map(|(o, u)| (o.to_string(), *u))
            .collect();
        let b: Vec<(String, f64)> = recomputed
            .top_uncertain(n)
            .iter()
            .map(|(o, u)| (o.to_string(), *u))
            .collect();
        assert_eq!(a, b, "patched ranking must equal the from-scratch sort");
        assert_eq!(patched.n_resolved(), recomputed.n_resolved());
    }

    #[test]
    fn ingest_group_coalesces_fsyncs() {
        let dir = fresh_dir("group");
        let mut server =
            TruthServer::create_durable(&dir, corpus(), TdhConfig::default(), RefitPolicy::Manual)
                .unwrap();
        assert_eq!(counter_value(&server, "tdh_wal_syncs_total"), 0);

        // Three batches under one barrier: one fsync.
        let group: Vec<Vec<Claim>> = (0..3).map(|i| wide_batch(i, 1)).collect();
        let results = server.ingest_group(&group);
        assert_eq!(results.len(), 3);
        for r in &results {
            let r = r.as_ref().expect("all batches ack");
            assert_eq!(r.appended_records, 3);
            assert_eq!(r.appended_answers, 1);
        }
        assert_eq!(
            counter_value(&server, "tdh_wal_syncs_total"),
            1,
            "group commit: one fsync acks all three batches"
        );

        // The same three batches via per-batch ingest: three fsyncs.
        for i in 3..6 {
            server.ingest(&wide_batch(i, 1)).unwrap();
        }
        assert_eq!(counter_value(&server, "tdh_wal_syncs_total"), 4);

        // Everything the group acked is durable: recover and check.
        server.refit_now();
        drop(server);
        let recovered = TruthServer::open(&dir, RefitPolicy::Manual).unwrap();
        assert_eq!(
            recovered.stats().n_records,
            60 + 3 * 6,
            "group-committed batches replay like per-batch ones"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_group_policy_runs_once_at_group_boundary() {
        let mut server = TruthServer::new(
            corpus(),
            TdhConfig::default(),
            RefitPolicy::StalenessBound {
                max_touched_frac: 0.5,
            },
        );
        let group: Vec<Vec<Claim>> = (0..3).map(|i| wide_batch(i, 1)).collect();
        let results = server.ingest_group(&group);
        let refits: Vec<_> = results.iter().map(|r| r.as_ref().unwrap().refit).collect();
        assert!(refits[0].is_none() && refits[1].is_none());
        let refit = refits[2].expect("one refit at the group boundary");
        assert_eq!(refit.kind, RefitKind::Delta);
        assert_eq!(
            refit.delta.unwrap().touched_objects,
            3,
            "the group's merged delta covers all three batches"
        );
        assert_eq!(server.stats().pending_claims, 0);
    }

    #[test]
    fn manual_delta_refits_interact_with_recovery() {
        let dir = fresh_dir("manual-delta");
        let mut server =
            TruthServer::create_durable(&dir, corpus(), TdhConfig::default(), RefitPolicy::Manual)
                .unwrap();
        // Manual policy: the caller drives the delta path explicitly.
        server.ingest(&wide_batch(0, 1)).unwrap();
        let refit = server.refit_delta_now();
        assert_eq!(refit.kind, RefitKind::Delta, "live server has a baseline");
        server.checkpoint().unwrap();
        drop(server);

        // A checkpointed restore carries parameters but no E-step caches:
        // the first delta request must fall back to a full fit...
        let mut recovered = TruthServer::open(&dir, RefitPolicy::Manual).unwrap();
        let report = recovered.recovery().expect("opened durably");
        assert_eq!(report.replayed_batches, 0, "checkpoint covered the WAL");
        recovered.ingest(&wide_batch(1, 1)).unwrap();
        let refit = recovered.refit_delta_now();
        assert_eq!(
            refit.kind,
            RefitKind::Full,
            "no baseline right after restore: transparent full fallback"
        );
        assert!(recovered.truth("r1x0").is_some());
        // ...which rebuilds the caches, so the next one deltas again.
        recovered.ingest(&wide_batch(2, 1)).unwrap();
        let refit = recovered.refit_delta_now();
        assert_eq!(refit.kind, RefitKind::Delta);
        assert!(recovered.truth("r2x0").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
