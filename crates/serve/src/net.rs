//! A `std::net::TcpListener` front-end for a [`TruthServer`], built for the
//! read-dominated shape of serving traffic.
//!
//! Line protocol: one tab-separated command per line in, one JSON object
//! per line out. Commands:
//!
//! | command | reply |
//! |---------|-------|
//! | `TRUTH\t<object>` | `{"object":…,"truth":…,"path":…,"confidence":…}` (`"truth":null` when unknown) |
//! | `SOURCE\t<name>` | `{"source":…,"phi":[…]}` (`null` when unknown/unfitted) |
//! | `WORKER\t<name>` | `{"worker":…,"psi":[…]}` |
//! | `TOPK\t<k>` | `{"top":[{"object":…,"uncertainty":…},…]}` |
//! | `RECORD\t<obj>\t<src>\t<value>` | ingest one record claim |
//! | `ANSWER\t<obj>\t<wrk>\t<value>` | ingest one answer claim |
//! | `INGEST\t<n>` | ingest the next `n` `RECORD`/`ANSWER` lines as **one** batch, one reply |
//! | `REFIT` | force a refit, reporting iterations/warmness |
//! | `CHECKPOINT` | snapshot a durable server and compact its WAL |
//! | `STATS` | serving counters |
//! | `QUIT` | closes the connection |
//! | `SHUTDOWN` | stops the listener (after replying) |
//!
//! Tab separation (not spaces) lets entity names contain spaces. Errors —
//! including lines that are not valid UTF-8 — reply `{"error":…}` and keep
//! the connection open.
//!
//! # Architecture
//!
//! Connections are accepted by one acceptor thread and handed over a
//! channel to a **fixed-size pool of connection workers** (the same
//! channel-fed long-lived-worker idiom as `tdh_core::par::ThreadPool`), so
//! a connection flood queues instead of spawning unbounded threads.
//!
//! Per connection, command lines are **pipelined**: every complete line the
//! client has already sent is drained from the read buffer and answered in
//! order with a single write, instead of one read/reply round trip per
//! line. Read commands (`TRUTH`/`SOURCE`/`WORKER`/`TOPK`) are answered from
//! the server's published [`ServingState`] — they never take the writer
//! lock, so queries keep flowing at full speed while another connection
//! ingests or refits. Writes take the lock **once per batch**, not once per
//! claim: consecutive pipelined claim lines **of the same kind** (a run of
//! `RECORD`s, or a run of `ANSWER`s — same-kind only, so packet boundaries
//! can never change a claim's validity) are coalesced into one
//! [`TruthServer::ingest`] call with per-line replies (applied lines `ok`,
//! the offending line its error, dropped lines say so), and the
//! `INGEST\t<n>` command ships `n` claims as one batch with one reply. An
//! `INGEST` count over the batch cap is a framing violation that closes the
//! connection after the error reply — the batch's lines cannot be consumed
//! without reading arbitrarily many.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use crate::server::{Claim, RefitSummary, TruthServer};
use crate::state::{ServingState, StateReader};

/// Connection workers spawned by [`serve_tcp`] (the [`serve_tcp_with`]
/// default).
pub const DEFAULT_NET_WORKERS: usize = 4;

/// Upper bound on `INGEST\t<n>` batch sizes, so one malformed count cannot
/// make a worker buffer claims without limit.
const MAX_INGEST: usize = 100_000;

/// Handle to a running [`serve_tcp`] listener.
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    server: Arc<Mutex<TruthServer>>,
    state: StateReader,
}

impl ServeHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A lock-free read handle onto the served state — the same publication
    /// stream the TCP read commands answer from.
    pub fn reader(&self) -> StateReader {
        self.state.clone()
    }

    /// Stop accepting connections and return the shared server state.
    /// Queued-but-unserved connections are dropped unanswered; workers
    /// serving a connection finish their current sweep and exit on their
    /// next read (they are detached, not joined, since a worker may be
    /// blocked reading from an idle client).
    pub fn shutdown(self) -> Arc<Mutex<TruthServer>> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is blocked in `accept`.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
        drop(self.workers);
        self.server
    }
}

/// Serve `server` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
/// with [`DEFAULT_NET_WORKERS`] connection workers. Returns immediately;
/// accepting and serving run on background threads.
pub fn serve_tcp(server: TruthServer, addr: &str) -> io::Result<ServeHandle> {
    serve_tcp_with(server, addr, DEFAULT_NET_WORKERS)
}

/// [`serve_tcp`] with an explicit connection-worker count (at least one
/// worker is always spawned). At most `n_workers` connections are served
/// concurrently; further accepted connections wait in the hand-off queue
/// until a worker frees up.
pub fn serve_tcp_with(
    server: TruthServer,
    addr: &str,
    n_workers: usize,
) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let state = server.reader();
    let server = Arc::new(Mutex::new(server));
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let workers = (0..n_workers.max(1))
        .map(|_| {
            let conn_rx = Arc::clone(&conn_rx);
            let server = Arc::clone(&server);
            let state = state.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || loop {
                let next = conn_rx.lock().expect("connection queue poisoned").recv();
                let Ok(stream) = next else { break };
                if shutdown.load(Ordering::SeqCst) {
                    // Drain the queue unserved during teardown: the client
                    // sees EOF instead of a worker adopting a dying server.
                    continue;
                }
                let _ = handle_client(stream, &server, &state, &shutdown);
            })
        })
        .collect();
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
        })
    };
    Ok(ServeHandle {
        addr,
        shutdown,
        accept_thread,
        workers,
        server,
        state,
    })
}

/// One protocol line: the decoded text, or the error message to reply with
/// when the bytes were not valid UTF-8.
type Line = Result<String, String>;

/// Buffered line reading with a pipeline queue: lines the client already
/// sent are drained off the socket buffer in one go and replayed in order.
struct LineReader<R: Read> {
    reader: BufReader<R>,
    queued: VecDeque<Line>,
}

impl<R: Read> LineReader<R> {
    fn new(reader: BufReader<R>) -> Self {
        LineReader {
            reader,
            queued: VecDeque::new(),
        }
    }

    /// Read one line off the stream (blocking). `None` at EOF. A line that
    /// is not valid UTF-8 is reported as data (`Some(Err(_))`), not as a
    /// stream failure — the connection stays usable.
    fn read_one(&mut self) -> io::Result<Option<Line>> {
        let mut buf = Vec::new();
        if self.reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(None);
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        Ok(Some(
            String::from_utf8(buf).map_err(|_| "line is not valid UTF-8".to_string()),
        ))
    }

    /// The next line: previously drained if any, else a blocking read.
    fn next_line(&mut self) -> io::Result<Option<Line>> {
        if let Some(line) = self.queued.pop_front() {
            return Ok(Some(line));
        }
        self.read_one()
    }

    /// Pull every *complete* line already sitting in the read buffer into
    /// the pipeline queue without blocking for more bytes.
    fn drain_buffered(&mut self) -> io::Result<()> {
        while self.reader.buffer().contains(&b'\n') {
            match self.read_one()? {
                Some(line) => self.queued.push_back(line),
                None => break,
            }
        }
        Ok(())
    }

    fn pop_queued(&mut self) -> Option<Line> {
        self.queued.pop_front()
    }

    fn peek_queued(&self) -> Option<&Line> {
        self.queued.front()
    }
}

/// How a sweep over pipelined lines ended.
enum SweepEnd {
    /// Keep the connection open and block for the next command.
    Continue,
    /// `QUIT`: close this connection.
    Quit,
    /// `SHUTDOWN`: close this connection and stop the listener.
    Shutdown,
}

fn handle_client(
    stream: TcpStream,
    server: &Mutex<TruthServer>,
    state: &StateReader,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    // The *local* end of an accepted socket is the listener's address —
    // kept to wake the acceptor out of `accept` on SHUTDOWN.
    let local_addr = stream.local_addr()?;
    let mut writer = stream.try_clone()?;
    let mut lines = LineReader::new(BufReader::new(stream));
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Some(first) = lines.next_line()? else {
            break;
        };
        lines.drain_buffered()?;
        let mut out = Vec::new();
        let end = process_sweep(first, &mut lines, server, state, &mut out, &mut |buf| {
            writer.write_all(buf)?;
            buf.clear();
            Ok(())
        })?;
        writer.write_all(&out)?;
        match end {
            SweepEnd::Continue => {}
            SweepEnd::Quit => break,
            SweepEnd::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor blocked in `accept`.
                let _ = TcpStream::connect(local_addr);
                break;
            }
        }
    }
    Ok(())
}

/// Process `first` plus every line already drained into the pipeline queue,
/// appending one reply per line to `out` in command order. `flush` writes
/// and clears `out`; it is invoked before any blocking mid-sweep read
/// (`INGEST` claim lines) so owed replies can never deadlock against a
/// client that waits for them before sending more.
fn process_sweep<R: Read>(
    first: Line,
    lines: &mut LineReader<R>,
    server: &Mutex<TruthServer>,
    state: &StateReader,
    out: &mut Vec<u8>,
    flush: &mut dyn FnMut(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<SweepEnd> {
    let mut next = Some(first);
    while let Some(line) = next.take().or_else(|| lines.pop_queued()) {
        let line = match line {
            Ok(line) => line,
            Err(message) => {
                push_reply(out, &json_error(&message));
                continue;
            }
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["QUIT"] => return Ok(SweepEnd::Quit),
            ["SHUTDOWN"] => {
                out.extend_from_slice(b"{\"ok\":true,\"shutdown\":true}\n");
                return Ok(SweepEnd::Shutdown);
            }
            ["INGEST", n] => {
                flush(out)?;
                match n.parse::<usize>() {
                    Err(_) => push_reply(out, &json_error("INGEST takes an integer")),
                    Ok(n) if n > MAX_INGEST => {
                        // A framing violation we cannot resync from without
                        // reading `n` lines (arbitrarily many): reply the
                        // error and drop the connection instead of
                        // misreading the batch's claims as commands.
                        push_reply(
                            out,
                            &json_error(&format!(
                                "INGEST batches are capped at {MAX_INGEST} claims"
                            )),
                        );
                        return Ok(SweepEnd::Quit);
                    }
                    Ok(n) => match ingest_command(server, lines, n)? {
                        Some(reply) => push_reply(out, &reply),
                        // EOF mid-batch: the client is gone.
                        None => return Ok(SweepEnd::Quit),
                    },
                }
            }
            ["TRUTH", _] | ["SOURCE", _] | ["WORKER", _] | ["TOPK", _] => {
                push_reply(out, &dispatch_read(&state.load(), &fields));
            }
            _ => match parse_claim(&fields) {
                Some(claim) => {
                    // Coalesce the run of *same-kind* claim lines the
                    // client pipelined behind this one: one ingest call,
                    // one lock take. Only same-kind runs coalesce so a
                    // claim's validity never depends on how the bytes were
                    // packeted — ingest's records-before-answers reorder is
                    // a no-op within a single kind.
                    let kind_is_record = matches!(claim, Claim::Record { .. });
                    let mut claims = vec![claim];
                    loop {
                        let peeked = match lines.peek_queued() {
                            Some(Ok(l)) => parse_claim(&l.split('\t').collect::<Vec<_>>()),
                            _ => None,
                        };
                        let Some(claim) = peeked else { break };
                        if matches!(claim, Claim::Record { .. }) != kind_is_record {
                            break;
                        }
                        claims.push(claim);
                        lines.pop_queued();
                    }
                    let replies = {
                        let mut locked = server.lock().expect("server mutex poisoned");
                        claim_group_replies(&mut locked, &claims)
                    };
                    for reply in replies {
                        push_reply(out, &reply);
                    }
                }
                None => {
                    let mut locked = server.lock().expect("server mutex poisoned");
                    push_reply(out, &dispatch_write(&mut locked, &fields));
                }
            },
        }
    }
    Ok(SweepEnd::Continue)
}

/// Execute one read command against a published state — no writer lock.
fn dispatch_read(state: &ServingState, fields: &[&str]) -> String {
    match fields {
        ["TRUTH", object] => match state.truth(object) {
            Some(t) => format!(
                "{{\"object\":{},\"truth\":{},\"path\":{},\"confidence\":{}}}",
                json_str(object),
                json_str(&t.value),
                json_str(&t.path),
                json_f64(t.confidence)
            ),
            None => format!("{{\"object\":{},\"truth\":null}}", json_str(object)),
        },
        ["SOURCE", name] => format!(
            "{{\"source\":{},\"phi\":{}}}",
            json_str(name),
            json_triple(state.source_reliability(name))
        ),
        ["WORKER", name] => format!(
            "{{\"worker\":{},\"psi\":{}}}",
            json_str(name),
            json_triple(state.worker_reliability(name))
        ),
        ["TOPK", k] => match k.parse::<usize>() {
            Ok(k) => {
                let items: Vec<String> = state
                    .top_uncertain(k)
                    .iter()
                    .map(|(o, u)| {
                        format!(
                            "{{\"object\":{},\"uncertainty\":{}}}",
                            json_str(o),
                            json_f64(*u)
                        )
                    })
                    .collect();
                format!("{{\"top\":[{}]}}", items.join(","))
            }
            Err(_) => json_error("TOPK takes an integer"),
        },
        _ => json_error("unknown command"),
    }
}

/// Execute one writer command against the locked server.
fn dispatch_write(server: &mut TruthServer, fields: &[&str]) -> String {
    match fields {
        ["REFIT"] => refit_json(server.refit_now()),
        ["CHECKPOINT"] => match server.checkpoint() {
            Ok(report) => format!(
                "{{\"ok\":true,\"wal_seq\":{},\"snapshot_bytes\":{},\"segments_dropped\":{}}}",
                report.wal_seq, report.snapshot_bytes, report.segments_dropped
            ),
            Err(e) => json_error(&e.to_string()),
        },
        ["STATS"] => {
            let s = server.stats();
            format!(
                "{{\"objects\":{},\"sources\":{},\"workers\":{},\"records\":{},\"answers\":{},\
                 \"pending\":{},\"batches\":{},\"refits\":{},\"publications\":{}}}",
                s.n_objects,
                s.n_sources,
                s.n_workers,
                s.n_records,
                s.n_answers,
                s.pending_claims,
                s.batches,
                s.refits,
                s.publications
            )
        }
        _ => json_error("unknown command"),
    }
}

/// Parse a `RECORD`/`ANSWER` line into a [`Claim`].
fn parse_claim(fields: &[&str]) -> Option<Claim> {
    match fields {
        ["RECORD", object, source, value] => Some(Claim::Record {
            object: (*object).to_string(),
            source: (*source).to_string(),
            value: (*value).to_string(),
        }),
        ["ANSWER", object, worker, value] => Some(Claim::Answer {
            object: (*object).to_string(),
            worker: (*worker).to_string(),
            value: (*value).to_string(),
        }),
        _ => None,
    }
}

/// Ingest a coalesced same-kind group of claim lines and render one reply
/// per line. On success every line shares the batch outcome. On failure
/// the replies are per-line accurate: a same-kind batch is applied in line
/// order and stops at the offender (the [`TruthServer::ingest`] contract),
/// so the lines before it report `ok`, the offender reports the error, and
/// the dropped remainder says so — a client may safely retry exactly the
/// lines whose reply was an error.
fn claim_group_replies(server: &mut TruthServer, claims: &[Claim]) -> Vec<String> {
    let before = server.stats();
    match server.ingest(claims) {
        Ok(report) => {
            let refit = refit_field(report.refit);
            let reply = if claims.len() > 1 {
                format!(
                    "{{\"ok\":true,\"coalesced\":{},\"pending\":{},\"refit\":{}}}",
                    claims.len(),
                    report.pending,
                    refit
                )
            } else {
                format!(
                    "{{\"ok\":true,\"pending\":{},\"refit\":{}}}",
                    report.pending, refit
                )
            };
            vec![reply; claims.len()]
        }
        Err(e) => {
            let after = server.stats();
            let applied =
                (after.n_records + after.n_answers) - (before.n_records + before.n_answers);
            let pending = after.pending_claims;
            let error = json_error(&e.to_string());
            (0..claims.len())
                .map(|i| {
                    if i < applied {
                        format!("{{\"ok\":true,\"pending\":{pending},\"refit\":null}}")
                    } else if i == applied {
                        error.clone()
                    } else {
                        json_error("dropped: an earlier claim in the batch failed")
                    }
                })
                .collect()
        }
    }
}

/// `INGEST\t<n>` (count already validated): read the next `n` claim lines
/// and ingest them as one batch with a single reply. Returns `Ok(None)`
/// when the client disconnected mid-batch. All `n` lines are consumed even
/// when one is malformed, keeping the connection in protocol sync.
fn ingest_command<R: Read>(
    server: &Mutex<TruthServer>,
    lines: &mut LineReader<R>,
    n: usize,
) -> io::Result<Option<String>> {
    let mut claims = Vec::with_capacity(n);
    let mut bad: Option<String> = None;
    for i in 0..n {
        let Some(line) = lines.next_line()? else {
            return Ok(None);
        };
        let parsed = match &line {
            Ok(l) => parse_claim(&l.split('\t').collect::<Vec<_>>()),
            Err(_) => None,
        };
        match parsed {
            Some(claim) => claims.push(claim),
            None => {
                if bad.is_none() {
                    bad = Some(format!(
                        "INGEST line {} of {n} is not a RECORD or ANSWER claim",
                        i + 1
                    ));
                }
            }
        }
    }
    if let Some(message) = bad {
        return Ok(Some(json_error(&message)));
    }
    let mut locked = server.lock().expect("server mutex poisoned");
    Ok(Some(match locked.ingest(&claims) {
        Ok(report) => format!(
            "{{\"ok\":true,\"appended_records\":{},\"appended_answers\":{},\
             \"pending\":{},\"refit\":{}}}",
            report.appended_records,
            report.appended_answers,
            report.pending,
            refit_field(report.refit)
        ),
        Err(e) => json_error(&e.to_string()),
    }))
}

fn push_reply(out: &mut Vec<u8>, reply: &str) {
    out.extend_from_slice(reply.as_bytes());
    out.push(b'\n');
}

fn refit_field(refit: Option<RefitSummary>) -> String {
    match refit {
        Some(r) => refit_json(r),
        None => "null".to_string(),
    }
}

fn refit_json(r: RefitSummary) -> String {
    format!(
        "{{\"iterations\":{},\"converged\":{},\"warm\":{},\"seconds\":{}}}",
        r.iterations,
        r.converged,
        r.warm,
        json_f64(r.duration.as_secs_f64())
    )
}

fn json_error(message: &str) -> String {
    format!("{{\"error\":{}}}", json_str(message))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn json_triple(t: Option<[f64; 3]>) -> String {
    match t {
        Some([a, b, c]) => format!("[{},{},{}]", json_f64(a), json_f64(b), json_f64(c)),
        None => "null".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RefitPolicy;
    use std::time::Duration;
    use tdh_core::TdhConfig;
    use tdh_data::Dataset;
    use tdh_hierarchy::HierarchyBuilder;

    fn small_server() -> TruthServer {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("Statue of Liberty");
        let s1 = ds.intern_source("UNESCO");
        let s2 = ds.intern_source("Wikipedia");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, li);
        TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch)
    }

    fn roundtrip(lines: &[&str]) -> Vec<String> {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim().to_string());
        }
        drop(writer);
        handle.shutdown();
        replies
    }

    /// Run one in-memory sweep over `input` (no sockets): the deterministic
    /// harness for pipelining, coalescing and `INGEST` framing.
    fn sweep_replies(server: TruthServer, input: &str) -> Vec<String> {
        let state = server.reader();
        let server = Mutex::new(server);
        let mut lines = LineReader::new(BufReader::new(io::Cursor::new(input.as_bytes().to_vec())));
        let mut all = Vec::new();
        loop {
            let Some(first) = lines.next_line().unwrap() else {
                break;
            };
            lines.drain_buffered().unwrap();
            let mut out = Vec::new();
            let end = process_sweep(first, &mut lines, &server, &state, &mut out, &mut |buf| {
                all.extend_from_slice(buf);
                buf.clear();
                Ok(())
            })
            .unwrap();
            all.extend_from_slice(&out);
            if !matches!(end, SweepEnd::Continue) {
                break;
            }
        }
        String::from_utf8(all)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn checkpoint_command_reports_durability() {
        // Without durability the command errors but keeps the sweep alive.
        let replies = sweep_replies(small_server(), "CHECKPOINT\nSTATS\n");
        assert!(replies[0].contains("no durability"), "{}", replies[0]);
        assert!(replies[1].contains("\"objects\""), "{}", replies[1]);

        // With durability it snapshots and reports the WAL coverage point.
        let dir = std::env::temp_dir().join(format!("tdh-net-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = small_server();
        server.attach_durability(&dir).unwrap();
        let replies = sweep_replies(
            server,
            "RECORD\tStatue of Liberty\tBritannica\tLiberty Island\nCHECKPOINT\n",
        );
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(
            replies[1].contains("\"ok\":true") && replies[1].contains("\"wal_seq\":1"),
            "{}",
            replies[1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truth_and_stats_over_the_wire() {
        let replies = roundtrip(&[
            "TRUTH\tStatue of Liberty",
            "SOURCE\tWikipedia",
            "TOPK\t1",
            "STATS",
            "NONSENSE",
        ]);
        assert!(
            replies[0].contains("\"truth\":\"Liberty Island\"")
                || replies[0].contains("\"truth\":\"NY\""),
            "{}",
            replies[0]
        );
        assert!(replies[0].contains("\"path\":\"USA/"), "{}", replies[0]);
        assert!(replies[1].starts_with("{\"source\":\"Wikipedia\",\"phi\":["));
        assert!(replies[2].contains("\"top\":[{\"object\":"));
        assert!(replies[3].contains("\"records\":2"));
        assert!(replies[3].contains("\"publications\":1"));
        assert!(replies[4].contains("\"error\""));
    }

    #[test]
    fn ingestion_over_the_wire_refits() {
        let replies = roundtrip(&[
            "RECORD\tBig Ben\tQuora\tLA",
            "ANSWER\tBig Ben\tEmma Stone\tLA",
            "TRUTH\tBig Ben",
            "WORKER\tEmma Stone",
            "RECORD\tx\ty\tAtlantis",
        ]);
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(replies[0].contains("\"warm\":true"), "{}", replies[0]);
        assert!(replies[2].contains("\"truth\":\"LA\""), "{}", replies[2]);
        assert!(replies[3].contains("\"psi\":["), "{}", replies[3]);
        assert!(
            replies[4].contains("not a hierarchy node"),
            "{}",
            replies[4]
        );
    }

    #[test]
    fn pipelined_commands_reply_in_order() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One write, four commands: four replies, in command order.
        writer
            .write_all(b"TRUTH\tStatue of Liberty\nSTATS\nTOPK\t1\nNONSENSE\n")
            .unwrap();
        let mut replies = Vec::new();
        for _ in 0..4 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim().to_string());
        }
        assert!(
            replies[0].contains("\"object\":\"Statue of Liberty\""),
            "{}",
            replies[0]
        );
        assert!(replies[1].contains("\"records\":2"), "{}", replies[1]);
        assert!(replies[2].contains("\"top\":["), "{}", replies[2]);
        assert!(replies[3].contains("\"error\""), "{}", replies[3]);
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn invalid_utf8_replies_an_error_and_keeps_the_connection() {
        // Regression: a non-UTF-8 line used to kill the connection thread
        // silently — no reply, no further commands served.
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"TRUTH\t\xff\xfe\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"error\""), "{reply}");
        assert!(reply.contains("UTF-8"), "{reply}");
        // The connection survives: the next command is served normally.
        writer.write_all(b"STATS\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"records\":2"), "{reply}");
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn coalesced_claims_take_the_lock_once_and_reply_per_line() {
        // Both claim lines are buffered before the sweep starts, so they
        // coalesce into one ingest batch deterministically.
        let replies = sweep_replies(
            small_server(),
            "RECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(replies[0].contains("\"coalesced\":2"), "{}", replies[0]);
        assert_eq!(replies[0], replies[1], "group lines share one reply");
        // One ingest batch, one refit — not one per claim line.
        assert!(replies[2].contains("\"batches\":1"), "{}", replies[2]);
        assert!(replies[2].contains("\"refits\":2"), "{}", replies[2]);
    }

    #[test]
    fn mixed_kind_claims_do_not_coalesce() {
        // An ANSWER never joins a RECORD's batch (and vice versa): its
        // validation environment is then independent of packet timing.
        // Here the ANSWER selects a value its own RECORD just introduced —
        // legal in either arrival order because the record's batch runs
        // first either way.
        let replies = sweep_replies(
            small_server(),
            "RECORD\tBig Ben\tQuora\tLA\nANSWER\tBig Ben\tEmma Stone\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(!replies[0].contains("coalesced"), "{}", replies[0]);
        assert!(replies[1].contains("\"ok\":true"), "{}", replies[1]);
        assert!(replies[2].contains("\"batches\":2"), "{}", replies[2]);
    }

    #[test]
    fn coalesced_group_failure_reports_per_line() {
        let replies = sweep_replies(
            small_server(),
            "RECORD\tBig Ben\tQuora\tLA\nRECORD\tx\ty\tAtlantis\n\
             RECORD\tBig Ben\tUNESCO\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 4, "{replies:?}");
        // Applied / offender / dropped each get an accurate reply, so a
        // client may retry exactly the lines that errored.
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(
            replies[1].contains("not a hierarchy node"),
            "{}",
            replies[1]
        );
        assert!(replies[2].contains("dropped"), "{}", replies[2]);
        // Only the claim preceding the offender was applied.
        assert!(replies[3].contains("\"records\":3"), "{}", replies[3]);
    }

    #[test]
    fn ingest_command_ships_a_batch_with_one_reply() {
        let replies = sweep_replies(
            small_server(),
            "INGEST\t3\nRECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA\n\
             ANSWER\tBig Ben\tEmma Stone\tLA\nTRUTH\tBig Ben\nSTATS\n",
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(
            replies[0].contains("\"appended_records\":2"),
            "{}",
            replies[0]
        );
        assert!(
            replies[0].contains("\"appended_answers\":1"),
            "{}",
            replies[0]
        );
        assert!(replies[0].contains("\"warm\":true"), "{}", replies[0]);
        assert!(replies[1].contains("\"truth\":\"LA\""), "{}", replies[1]);
        assert!(replies[2].contains("\"batches\":1"), "{}", replies[2]);
    }

    #[test]
    fn ingest_command_rejects_bad_framing_but_stays_in_sync() {
        let replies = sweep_replies(small_server(), "INGEST\tmany\nINGEST\t1\nSTATS\nSTATS\n");
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(replies[0].contains("takes an integer"), "{}", replies[0]);
        // The first STATS line is consumed as the batch's (malformed)
        // claim; the second is served normally afterwards.
        assert!(
            replies[1].contains("not a RECORD or ANSWER claim"),
            "{}",
            replies[1]
        );
        assert!(replies[2].contains("\"records\":2"), "{}", replies[2]);
    }

    #[test]
    fn over_cap_ingest_closes_the_connection() {
        // The batch's lines cannot be consumed without reading arbitrarily
        // many, so the only safe recovery is an error plus a close — the
        // claims must never be re-parsed as individual commands.
        let replies = sweep_replies(
            small_server(),
            "INGEST\t999999999\nRECORD\tBig Ben\tQuora\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 1, "{replies:?}");
        assert!(replies[0].contains("capped at"), "{}", replies[0]);
    }

    #[test]
    fn ingest_command_over_the_wire() {
        let replies = roundtrip(&[
            "INGEST\t2\nRECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA",
            "TRUTH\tBig Ben",
        ]);
        assert!(
            replies[0].contains("\"appended_records\":2"),
            "{}",
            replies[0]
        );
        assert!(replies[1].contains("\"truth\":\"LA\""), "{}", replies[1]);
    }

    #[test]
    fn shutdown_returns_the_server() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let addr = handle.addr();
        let server = handle.shutdown();
        assert!(server.lock().unwrap().truth("Statue of Liberty").is_some());
        // The listener is gone: a fresh connection is either refused
        // outright or — if the OS raced the teardown — accepted and then
        // dropped without any worker serving it. Either way no command
        // written after shutdown may ever be answered.
        match TcpStream::connect(addr) {
            Err(_) => {} // refused: nothing is listening any more
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                // The write itself may fail (connection reset) — that too
                // proves nobody is serving the socket.
                let _ = writer.write_all(b"STATS\n");
                let mut reply = String::new();
                let read = BufReader::new(stream).read_line(&mut reply);
                assert!(
                    matches!(read, Ok(0) | Err(_)),
                    "a post-shutdown command must never be answered, got {reply:?}"
                );
            }
        }
    }

    #[test]
    fn reader_handle_answers_without_the_server_lock() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let reader = handle.reader();
        // Hold the writer lock hostage; the published state still answers.
        let server = handle.shutdown();
        let _guard = server.lock().unwrap();
        let state = reader.load();
        assert!(state.truth("Statue of Liberty").is_some());
        assert_eq!(state.version(), 1);
    }
}
