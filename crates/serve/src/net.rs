//! A `std::net::TcpListener` front-end for a [`TruthServer`], built for the
//! read-dominated shape of serving traffic.
//!
//! Line protocol: one tab-separated command per line in, one JSON object
//! per line out. Commands:
//!
//! | command | reply |
//! |---------|-------|
//! | `TRUTH\t<object>` | `{"object":…,"truth":…,"path":…,"confidence":…}` (`"truth":null` when unknown) |
//! | `SOURCE\t<name>` | `{"source":…,"phi":[…]}` (`null` when unknown/unfitted) |
//! | `WORKER\t<name>` | `{"worker":…,"psi":[…]}` |
//! | `TOPK\t<k>` | `{"top":[{"object":…,"uncertainty":…},…]}` |
//! | `RECORD\t<obj>\t<src>\t<value>` | ingest one record claim |
//! | `ANSWER\t<obj>\t<wrk>\t<value>` | ingest one answer claim |
//! | `INGEST\t<n>` | ingest the next `n` `RECORD`/`ANSWER` lines as **one** batch, one reply |
//! | `REFIT` | force a refit, reporting iterations/warmness |
//! | `CHECKPOINT` | snapshot a durable server and compact its WAL |
//! | `STATS` | serving counters (answered from lock-free atomics — see below) |
//! | `METRICS` | Prometheus-style text exposition, terminated by a `# EOF` line |
//! | `QUIT` | closes the connection |
//! | `SHUTDOWN` | stops the listener (after replying) |
//!
//! A [`Router`](crate::Router) endpoint (see [`crate::serve_router`])
//! additionally speaks the **collection** commands `USE`/`CREATE`/`DROP`/
//! `COLLECTIONS` and routes every data command to the selected collection's
//! shards; a single-server endpoint replies an error to those.
//!
//! Tab separation (not spaces) lets entity names contain spaces. Errors —
//! including lines that are not valid UTF-8 — reply `{"error":…}` and keep
//! the connection open.
//!
//! # Architecture
//!
//! Connections are accepted by one acceptor thread and handed over a
//! channel to a **fixed-size pool of connection workers**. A worker owns
//! *many* connections at once: every socket is switched to a short read
//! timeout ([`POLL_INTERVAL`]) and the worker sweeps its connections in a
//! round-robin loop — poll for a line, serve whatever is ready, move on —
//! picking up newly accepted connections between sweeps. Three properties
//! fall out of the timeout loop that the old blocking read loop could not
//! provide:
//!
//! * **connection count may exceed the pool** — an idle client costs one
//!   poll per sweep, never a parked worker, so `n_workers` bounds CPU-level
//!   concurrency, not how many clients can stay connected;
//! * **shutdown is prompt** — every worker observes the shutdown flag
//!   within one poll interval even when all of its clients are idle (the
//!   regression suite bounds [`ServeHandle::shutdown`] under two seconds
//!   with idle connections open, and `shutdown` now *joins* its workers
//!   instead of detaching them);
//! * **a stalled client cannot wedge framing** — a partial line that
//!   arrives across timeouts is buffered and finished when the rest shows
//!   up, and a client that dies mid-`INGEST` batch applies **nothing** (the
//!   batch's claims are only handed to the engine once all `n` lines
//!   arrived).
//!
//! Per connection, command lines are **pipelined**: every complete line the
//! client has already sent is drained from the read buffer and answered in
//! order with a single write. Read commands (`TRUTH`/`SOURCE`/`WORKER`/
//! `TOPK`) are answered from published [`ServingState`]s — they never take
//! a writer lock. Writes take the lock **once per batch**: consecutive
//! pipelined claim lines **of the same kind** coalesce into one ingest call
//! with per-line replies, and `INGEST\t<n>` ships `n` claims as one batch
//! with one reply. An `INGEST` count over the batch cap is a framing
//! violation that closes the connection after the error reply.
//!
//! A panic while serving a connection (a bug, not a protocol error) is
//! caught at the sweep boundary: the connection gets a best-effort
//! `{"error":…}` reply and is dropped, and the **worker survives** — the
//! pool can no longer shrink silently until shutdown.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::{command_label, EndpointMetrics, ServerMetrics};
use crate::server::{Claim, RefitSummary, TruthAnswer, TruthServer};
use crate::state::{ServingState, StateReader};

/// Connection workers spawned by [`serve_tcp`] (the [`serve_tcp_with`]
/// default).
pub const DEFAULT_NET_WORKERS: usize = 4;

/// Upper bound on `INGEST\t<n>` batch sizes, so one malformed count cannot
/// make a worker buffer claims without limit.
const MAX_INGEST: usize = 100_000;

/// Per-connection socket read timeout: the beat of the sweep loop. Small
/// enough that shutdown and newly arrived lines are observed promptly,
/// large enough that an all-idle worker wakes only ~100×/s per connection.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// How long a worker with no connections waits on the hand-off queue
/// before rechecking the shutdown flag.
const ACCEPT_WAIT: Duration = Duration::from_millis(50);

/// How long an `INGEST` batch may sit waiting for its **next** claim line
/// before the connection is declared dead (nothing is applied). Resets on
/// every line, so a slow-but-alive bulk loader is never cut off.
const INGEST_STALL: Duration = Duration::from_secs(30);

/// Per-connection protocol state, owned by the sweep and threaded through
/// the [`Engine`]: which named collection (if any) the connection `USE`d.
#[derive(Debug, Default)]
pub(crate) struct Session {
    /// The collection selected by `USE` (router endpoints only).
    pub(crate) collection: Option<String>,
}

/// What executes parsed commands — one implementation per endpoint flavor
/// (a single [`TruthServer`], or a [`Router`](crate::Router) over named
/// collections of shards). The sweep owns framing (line splitting,
/// pipelining, `INGEST` gathering, `QUIT`/`SHUTDOWN`); the engine owns
/// semantics.
pub(crate) trait Engine: Send + Sync + 'static {
    /// Reply to one non-claim command line.
    fn command(&self, session: &mut Session, fields: &[&str]) -> String;

    /// Ingest a coalesced same-kind run of pipelined claim lines; one
    /// reply per line.
    fn claim_group(&self, session: &mut Session, claims: &[Claim]) -> Vec<String>;

    /// Ingest one complete `INGEST` batch; one reply.
    fn ingest_batch(&self, session: &mut Session, claims: &[Claim]) -> String;
}

/// The engine behind [`serve_tcp`]: one dataset, one writer lock, reads
/// from the published state.
struct SingleEngine {
    server: Arc<Mutex<TruthServer>>,
    state: StateReader,
    /// The server's lock-free metrics handle: `STATS` and `METRICS` answer
    /// from these atomics so a slow refit holding the writer lock can never
    /// block them.
    metrics: Arc<ServerMetrics>,
    /// Per-command request accounting for this endpoint.
    net: Arc<EndpointMetrics>,
}

impl SingleEngine {
    /// The writer lock, recovering from poison: a panic in a previous
    /// request must not turn every later write into a panic too (the
    /// server's batch application keeps dataset and index in sync at claim
    /// granularity, so the state behind a poisoned lock is servable).
    fn locked(&self) -> std::sync::MutexGuard<'_, TruthServer> {
        self.server.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Engine for SingleEngine {
    fn command(&self, _session: &mut Session, fields: &[&str]) -> String {
        let t0 = Instant::now();
        let reply = match fields {
            ["TRUTH", _] | ["SOURCE", _] | ["WORKER", _] | ["TOPK", _] => {
                dispatch_read(&self.state.load(), fields)
            }
            ["REFIT"] | ["CHECKPOINT"] => dispatch_write(&mut self.locked(), fields),
            // Served from the atomic mirrors, not the writer lock: `STATS`
            // stays responsive while a refit holds the lock.
            ["STATS"] => stats_json(&self.metrics),
            ["METRICS"] => {
                self.net.refresh(self.metrics.publication_age());
                exposition_reply(tdh_obs::render_merged(&[
                    self.net.registry(),
                    self.metrics.registry(),
                ]))
            }
            ["USE", ..] | ["CREATE", ..] | ["DROP", ..] | ["COLLECTIONS"] => {
                json_error("collections are not served on this endpoint (single-server mode)")
            }
            _ => json_error("unknown command"),
        };
        self.net.observe(command_label(fields), 1, t0.elapsed());
        reply
    }

    fn claim_group(&self, _session: &mut Session, claims: &[Claim]) -> Vec<String> {
        let t0 = Instant::now();
        let replies = claim_group_replies(&mut self.locked(), claims);
        self.net.observe("CLAIM", claims.len() as u64, t0.elapsed());
        replies
    }

    fn ingest_batch(&self, _session: &mut Session, claims: &[Claim]) -> String {
        let t0 = Instant::now();
        let reply = ingest_reply(self.locked().ingest(claims));
        self.net.observe("INGEST", 1, t0.elapsed());
        reply
    }
}

/// Render the `STATS` reply from a server's atomic mirrors — no writer
/// lock. Keeps the original nine counter keys and extends them with
/// `uptime_s`, the crate `version`, and `last_publication_age_s` (`null`
/// until the first publication).
pub(crate) fn stats_json(metrics: &ServerMetrics) -> String {
    let s = metrics.stats();
    format!(
        "{{\"objects\":{},\"sources\":{},\"workers\":{},\"records\":{},\"answers\":{},\
         \"pending\":{},\"batches\":{},\"refits\":{},\"publications\":{},\
         \"uptime_s\":{},\"version\":{},\"last_publication_age_s\":{}}}",
        s.n_objects,
        s.n_sources,
        s.n_workers,
        s.n_records,
        s.n_answers,
        s.pending_claims,
        s.batches,
        s.refits,
        s.publications,
        json_f64(metrics.uptime().as_secs_f64()),
        json_str(env!("CARGO_PKG_VERSION")),
        match metrics.publication_age() {
            Some(age) => json_f64(age.as_secs_f64()),
            None => "null".to_string(),
        }
    )
}

/// Frame a rendered exposition as one wire reply: the renderer terminates
/// with a `# EOF` line (the client's read-until marker), and the sweep's
/// reply writer appends the final newline.
pub(crate) fn exposition_reply(text: String) -> String {
    text.trim_end_matches('\n').to_string()
}

/// The accept/worker thread bundle every endpoint flavor shares.
pub(crate) struct ListenerCore {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ListenerCore {
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every worker out of its poll loop, and join
    /// them all. Bounded: workers observe the flag within one poll
    /// interval, even mid-`INGEST` or with only idle clients connected.
    pub(crate) fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is blocked in `accept`.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Handle to a running [`serve_tcp`] listener.
pub struct ServeHandle {
    core: ListenerCore,
    server: Arc<Mutex<TruthServer>>,
    state: StateReader,
}

impl ServeHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// A lock-free read handle onto the served state — the same publication
    /// stream the TCP read commands answer from.
    pub fn reader(&self) -> StateReader {
        self.state.clone()
    }

    /// Stop accepting connections, join every connection worker, and
    /// return the shared server state. Returns promptly — within a poll
    /// interval per live connection — because workers read with a timeout
    /// instead of blocking on idle clients. Queued-but-unserved
    /// connections are dropped unanswered.
    pub fn shutdown(self) -> Arc<Mutex<TruthServer>> {
        self.core.stop();
        self.server
    }
}

/// Serve `server` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
/// with [`DEFAULT_NET_WORKERS`] connection workers. Returns immediately;
/// accepting and serving run on background threads.
pub fn serve_tcp(server: TruthServer, addr: &str) -> io::Result<ServeHandle> {
    serve_tcp_with(server, addr, DEFAULT_NET_WORKERS)
}

/// [`serve_tcp`] with an explicit connection-worker count (at least one
/// worker is always spawned). `n_workers` bounds how many connections make
/// *progress* concurrently, not how many may be connected: each worker
/// sweeps all of the connections it has adopted with a read-timeout poll,
/// so connections beyond the pool size are still served, interleaved.
pub fn serve_tcp_with(
    server: TruthServer,
    addr: &str,
    n_workers: usize,
) -> io::Result<ServeHandle> {
    let state = server.reader();
    let metrics = server.metrics();
    let server = Arc::new(Mutex::new(server));
    let engine = Arc::new(SingleEngine {
        server: Arc::clone(&server),
        state: state.clone(),
        metrics,
        net: EndpointMetrics::new(),
    });
    let core = serve_engine(engine, addr, n_workers)?;
    Ok(ServeHandle {
        core,
        server,
        state,
    })
}

/// Bind `addr` and spawn the acceptor plus `n_workers` sweep workers over
/// `engine`. Shared by [`serve_tcp`] and [`crate::serve_router`].
pub(crate) fn serve_engine(
    engine: Arc<dyn Engine>,
    addr: &str,
    n_workers: usize,
) -> io::Result<ListenerCore> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let workers = (0..n_workers.max(1))
        .map(|_| {
            let conn_rx = Arc::clone(&conn_rx);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || connection_worker(conn_rx, engine, shutdown, addr))
        })
        .collect();
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
        })
    };
    Ok(ListenerCore {
        addr,
        shutdown,
        accept_thread,
        workers,
    })
}

/// One adopted connection: its write half, its line reader (read half) and
/// its protocol session.
struct Conn {
    writer: TcpStream,
    lines: LineReader<TcpStream>,
    session: Session,
}

impl Conn {
    fn adopt(stream: TcpStream) -> io::Result<Conn> {
        // The poll beat: every read on this socket returns within the
        // interval, so the owning worker can sweep its other connections
        // and observe shutdown no matter how idle this client is.
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            writer,
            lines: LineReader::new(BufReader::new(stream)),
            session: Session::default(),
        })
    }
}

/// What one sweep of one connection decided.
enum ConnStatus {
    /// Nothing to do or served normally: keep the connection.
    Keep,
    /// EOF, `QUIT`, unrecoverable framing, or an I/O error: drop it.
    Close,
    /// `SHUTDOWN`: drop it and stop the whole listener.
    ShutdownAll,
}

/// The worker body: adopt connections from the hand-off queue and sweep
/// them round-robin. Never blocks longer than a poll interval on any one
/// socket, so `shutdown` and newly accepted connections are both observed
/// promptly regardless of client behavior.
fn connection_worker(
    conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    engine: Arc<dyn Engine>,
    shutdown: Arc<AtomicBool>,
    listener_addr: SocketAddr,
) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Dropping the connections sends EOF to the clients.
            return;
        }
        // Adopt new connections. Block briefly only when there is nothing
        // else to do; with live connections, just top up without waiting.
        let next = {
            let rx = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
            if conns.is_empty() {
                match rx.recv_timeout(ACCEPT_WAIT) {
                    Ok(stream) => Some(stream),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            } else {
                rx.try_recv().ok()
            }
        };
        if let Some(stream) = next {
            if !shutdown.load(Ordering::SeqCst) {
                if let Ok(conn) = Conn::adopt(stream) {
                    conns.push(conn);
                }
            }
        }
        // Sweep every connection once.
        let mut i = 0;
        while i < conns.len() {
            let swept = catch_unwind(AssertUnwindSafe(|| {
                serve_conn_once(&mut conns[i], engine.as_ref(), &shutdown)
            }));
            let keep = match swept {
                Ok(Ok(ConnStatus::Keep)) => true,
                Ok(Ok(ConnStatus::Close)) | Ok(Err(_)) => false,
                Ok(Ok(ConnStatus::ShutdownAll)) => {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the acceptor blocked in `accept`.
                    let _ = TcpStream::connect(listener_addr);
                    false
                }
                Err(_) => {
                    // A panic while serving this connection is a bug — but
                    // one that must cost the offending connection, not the
                    // worker: a dead worker would shrink the pool until
                    // restart. Reply best-effort and drop the connection;
                    // its session may be mid-frame, so it cannot be kept.
                    let _ = conns[i].writer.write_all(
                        b"{\"error\":\"internal error while serving this connection\"}\n",
                    );
                    false
                }
            };
            if keep {
                i += 1;
            } else {
                conns.swap_remove(i);
            }
        }
    }
}

/// Poll one connection and serve everything it has ready. Returns quickly
/// (within the poll interval) when the client sent nothing.
fn serve_conn_once(
    conn: &mut Conn,
    engine: &dyn Engine,
    shutdown: &AtomicBool,
) -> io::Result<ConnStatus> {
    let Conn {
        writer,
        lines,
        session,
    } = conn;
    let first = match lines.poll_line()? {
        LinePoll::Timeout => return Ok(ConnStatus::Keep),
        LinePoll::Eof => return Ok(ConnStatus::Close),
        LinePoll::Line(line) => line,
    };
    lines.drain_buffered()?;
    let mut out = Vec::new();
    let end = process_sweep(
        first,
        lines,
        engine,
        session,
        shutdown,
        &mut out,
        &mut |buf| {
            writer.write_all(buf)?;
            buf.clear();
            Ok(())
        },
    )?;
    writer.write_all(&out)?;
    Ok(match end {
        SweepEnd::Continue => ConnStatus::Keep,
        SweepEnd::Quit => ConnStatus::Close,
        SweepEnd::Shutdown => ConnStatus::ShutdownAll,
    })
}

/// One protocol line: the decoded text, or the error message to reply with
/// when the bytes were not valid UTF-8.
type Line = Result<String, String>;

/// What a non-blocking poll for one line produced.
enum LinePoll {
    /// A complete line (or the unterminated final line at EOF).
    Line(Line),
    /// Clean end of stream with no buffered partial line.
    Eof,
    /// The read timed out before a full line arrived; any partial bytes
    /// stay buffered and the next poll resumes exactly where this left off.
    Timeout,
}

/// Buffered line reading with a pipeline queue and a partial-line
/// accumulator: lines the client already sent are drained off the socket
/// buffer in one go and replayed in order, and a line split across read
/// timeouts is reassembled instead of dropped.
struct LineReader<R: Read> {
    reader: BufReader<R>,
    queued: VecDeque<Line>,
    /// Bytes of a line whose terminator has not arrived yet. Survives
    /// timeout returns so no byte is ever lost between polls.
    partial: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    fn new(reader: BufReader<R>) -> Self {
        LineReader {
            reader,
            queued: VecDeque::new(),
            partial: Vec::new(),
        }
    }

    /// Take the accumulated partial buffer as one finished [`Line`].
    fn finish_partial(&mut self) -> Line {
        let mut buf = std::mem::take(&mut self.partial);
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        String::from_utf8(buf).map_err(|_| "line is not valid UTF-8".to_string())
    }

    /// Poll the stream for one line without consulting the pipeline queue.
    fn poll_raw(&mut self) -> io::Result<LinePoll> {
        loop {
            match self.reader.read_until(b'\n', &mut self.partial) {
                Ok(0) => {
                    // True end of stream. A non-empty partial is the
                    // client's unterminated final line — serve it.
                    return if self.partial.is_empty() {
                        Ok(LinePoll::Eof)
                    } else {
                        Ok(LinePoll::Line(self.finish_partial()))
                    };
                }
                Ok(_) => {
                    if self.partial.last() == Some(&b'\n') {
                        return Ok(LinePoll::Line(self.finish_partial()));
                    }
                    // `read_until` returned data without a terminator:
                    // EOF is next — loop to observe it.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Read timeout: whatever bytes arrived are already in
                    // `partial`; resume on the next poll.
                    return Ok(LinePoll::Timeout);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The next line if one is immediately available: previously drained,
    /// or readable within one poll interval.
    fn poll_line(&mut self) -> io::Result<LinePoll> {
        if let Some(line) = self.queued.pop_front() {
            return Ok(LinePoll::Line(line));
        }
        self.poll_raw()
    }

    /// Block until the next line, EOF, shutdown, or `stall` of client
    /// silence — used mid-`INGEST`, where the frame *must* complete before
    /// anything is applied. Returns `None` for all of EOF / shutdown /
    /// stall: the caller treats every one as "this batch never happened".
    fn next_line_blocking(
        &mut self,
        shutdown: &AtomicBool,
        stall: Duration,
    ) -> io::Result<Option<Line>> {
        if let Some(line) = self.queued.pop_front() {
            return Ok(Some(line));
        }
        let deadline = Instant::now() + stall;
        loop {
            match self.poll_raw()? {
                LinePoll::Line(line) => return Ok(Some(line)),
                LinePoll::Eof => return Ok(None),
                LinePoll::Timeout => {
                    if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Pull every *complete* line already sitting in the read buffer into
    /// the pipeline queue without blocking for more bytes.
    fn drain_buffered(&mut self) -> io::Result<()> {
        while self.reader.buffer().contains(&b'\n') {
            match self.poll_raw()? {
                LinePoll::Line(line) => self.queued.push_back(line),
                _ => break,
            }
        }
        Ok(())
    }

    fn pop_queued(&mut self) -> Option<Line> {
        self.queued.pop_front()
    }

    fn peek_queued(&self) -> Option<&Line> {
        self.queued.front()
    }
}

/// How a sweep over pipelined lines ended.
enum SweepEnd {
    /// Keep the connection open and block for the next command.
    Continue,
    /// `QUIT` (or unrecoverable framing): close this connection.
    Quit,
    /// `SHUTDOWN`: close this connection and stop the listener.
    Shutdown,
}

/// Process `first` plus every line already drained into the pipeline queue,
/// appending one reply per line to `out` in command order. `flush` writes
/// and clears `out`; it is invoked before any blocking mid-sweep read
/// (`INGEST` claim lines) so owed replies can never deadlock against a
/// client that waits for them before sending more.
fn process_sweep<R: Read>(
    first: Line,
    lines: &mut LineReader<R>,
    engine: &dyn Engine,
    session: &mut Session,
    shutdown: &AtomicBool,
    out: &mut Vec<u8>,
    flush: &mut dyn FnMut(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<SweepEnd> {
    let mut next = Some(first);
    while let Some(line) = next.take().or_else(|| lines.pop_queued()) {
        let line = match line {
            Ok(line) => line,
            Err(message) => {
                push_reply(out, &json_error(&message));
                continue;
            }
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["QUIT"] => return Ok(SweepEnd::Quit),
            ["SHUTDOWN"] => {
                out.extend_from_slice(b"{\"ok\":true,\"shutdown\":true}\n");
                return Ok(SweepEnd::Shutdown);
            }
            ["INGEST", n] => {
                flush(out)?;
                match n.parse::<usize>() {
                    Err(_) => push_reply(out, &json_error("INGEST takes an integer")),
                    Ok(n) if n > MAX_INGEST => {
                        // A framing violation we cannot resync from without
                        // reading `n` lines (arbitrarily many): reply the
                        // error and drop the connection instead of
                        // misreading the batch's claims as commands.
                        push_reply(
                            out,
                            &json_error(&format!(
                                "INGEST batches are capped at {MAX_INGEST} claims"
                            )),
                        );
                        return Ok(SweepEnd::Quit);
                    }
                    Ok(n) => match ingest_command(engine, session, lines, n, shutdown)? {
                        Some(reply) => push_reply(out, &reply),
                        // EOF/stall/shutdown mid-batch: nothing applied,
                        // the connection is over.
                        None => return Ok(SweepEnd::Quit),
                    },
                }
            }
            _ => match parse_claim(&fields) {
                Some(claim) => {
                    // Coalesce the run of *same-kind* claim lines the
                    // client pipelined behind this one: one ingest call,
                    // one lock take. Only same-kind runs coalesce so a
                    // claim's validity never depends on how the bytes were
                    // packeted — ingest's records-before-answers reorder is
                    // a no-op within a single kind.
                    let kind_is_record = matches!(claim, Claim::Record { .. });
                    let mut claims = vec![claim];
                    loop {
                        let peeked = match lines.peek_queued() {
                            Some(Ok(l)) => parse_claim(&l.split('\t').collect::<Vec<_>>()),
                            _ => None,
                        };
                        let Some(claim) = peeked else { break };
                        if matches!(claim, Claim::Record { .. }) != kind_is_record {
                            break;
                        }
                        claims.push(claim);
                        lines.pop_queued();
                    }
                    for reply in engine.claim_group(session, &claims) {
                        push_reply(out, &reply);
                    }
                }
                None => push_reply(out, &engine.command(session, &fields)),
            },
        }
    }
    Ok(SweepEnd::Continue)
}

/// Execute one read command against a published state — no writer lock.
/// Shared by the single-server engine and (per shard) the router.
pub(crate) fn dispatch_read(state: &ServingState, fields: &[&str]) -> String {
    match fields {
        ["TRUTH", object] => truth_reply(object, state.truth(object)),
        ["SOURCE", name] => {
            reliability_reply("source", name, "phi", state.source_reliability(name))
        }
        ["WORKER", name] => {
            reliability_reply("worker", name, "psi", state.worker_reliability(name))
        }
        ["TOPK", k] => match k.parse::<usize>() {
            Ok(k) => topk_reply(state.top_uncertain(k)),
            Err(_) => json_error("TOPK takes an integer"),
        },
        _ => json_error("unknown command"),
    }
}

/// Render a `TRUTH` reply.
pub(crate) fn truth_reply(object: &str, t: Option<&TruthAnswer>) -> String {
    match t {
        Some(t) => format!(
            "{{\"object\":{},\"truth\":{},\"path\":{},\"confidence\":{}}}",
            json_str(object),
            json_str(&t.value),
            json_str(&t.path),
            json_f64(t.confidence)
        ),
        None => format!("{{\"object\":{},\"truth\":null}}", json_str(object)),
    }
}

/// Render a `SOURCE`/`WORKER` reliability reply.
pub(crate) fn reliability_reply(
    kind: &str,
    name: &str,
    table: &str,
    t: Option<[f64; 3]>,
) -> String {
    format!(
        "{{\"{kind}\":{},\"{table}\":{}}}",
        json_str(name),
        json_triple(t)
    )
}

/// Render a `TOPK` reply. Generic over the name representation so it
/// accepts both a published state's `Arc<str>` ranking slice and the
/// router's merged `String` list without copies.
pub(crate) fn topk_reply<S: AsRef<str>>(items: &[(S, f64)]) -> String {
    let items: Vec<String> = items
        .iter()
        .map(|(o, u)| {
            format!(
                "{{\"object\":{},\"uncertainty\":{}}}",
                json_str(o.as_ref()),
                json_f64(*u)
            )
        })
        .collect();
    format!("{{\"top\":[{}]}}", items.join(","))
}

/// Execute one writer command against the locked server.
fn dispatch_write(server: &mut TruthServer, fields: &[&str]) -> String {
    match fields {
        ["REFIT"] => refit_json(server.refit_now()),
        ["CHECKPOINT"] => match server.checkpoint() {
            Ok(report) => format!(
                "{{\"ok\":true,\"wal_seq\":{},\"snapshot_bytes\":{},\"segments_dropped\":{}}}",
                report.wal_seq, report.snapshot_bytes, report.segments_dropped
            ),
            Err(e) => json_error(&e.to_string()),
        },
        _ => json_error("unknown command"),
    }
}

/// Parse a `RECORD`/`ANSWER` line into a [`Claim`].
pub(crate) fn parse_claim(fields: &[&str]) -> Option<Claim> {
    match fields {
        ["RECORD", object, source, value] => Some(Claim::Record {
            object: (*object).to_string(),
            source: (*source).to_string(),
            value: (*value).to_string(),
        }),
        ["ANSWER", object, worker, value] => Some(Claim::Answer {
            object: (*object).to_string(),
            worker: (*worker).to_string(),
            value: (*value).to_string(),
        }),
        _ => None,
    }
}

/// Ingest a coalesced same-kind group of claim lines and render one reply
/// per line. On success every line shares the batch outcome. On failure
/// the replies are per-line accurate: a same-kind batch is applied in line
/// order and stops at the offender (the [`TruthServer::ingest`] contract),
/// so the lines before it report `ok`, the offender reports the error, and
/// the dropped remainder says so — a client may safely retry exactly the
/// lines whose reply was an error.
pub(crate) fn claim_group_replies(server: &mut TruthServer, claims: &[Claim]) -> Vec<String> {
    let before = server.stats();
    match server.ingest(claims) {
        Ok(report) => {
            let refit = refit_field(report.refit);
            let reply = if claims.len() > 1 {
                format!(
                    "{{\"ok\":true,\"coalesced\":{},\"pending\":{},\"refit\":{}}}",
                    claims.len(),
                    report.pending,
                    refit
                )
            } else {
                format!(
                    "{{\"ok\":true,\"pending\":{},\"refit\":{}}}",
                    report.pending, refit
                )
            };
            vec![reply; claims.len()]
        }
        Err(e) => {
            let after = server.stats();
            let applied =
                (after.n_records + after.n_answers) - (before.n_records + before.n_answers);
            let pending = after.pending_claims;
            let error = json_error(&e.to_string());
            (0..claims.len())
                .map(|i| {
                    if i < applied {
                        format!("{{\"ok\":true,\"pending\":{pending},\"refit\":null}}")
                    } else if i == applied {
                        error.clone()
                    } else {
                        json_error("dropped: an earlier claim in the batch failed")
                    }
                })
                .collect()
        }
    }
}

/// Render one `INGEST` batch outcome.
pub(crate) fn ingest_reply(
    outcome: Result<crate::server::IngestReport, crate::server::ServeError>,
) -> String {
    match outcome {
        Ok(report) => format!(
            "{{\"ok\":true,\"appended_records\":{},\"appended_answers\":{},\
             \"pending\":{},\"refit\":{}}}",
            report.appended_records,
            report.appended_answers,
            report.pending,
            refit_field(report.refit)
        ),
        Err(e) => json_error(&e.to_string()),
    }
}

/// `INGEST\t<n>` (count already validated): gather the next `n` claim
/// lines, then ingest them as one batch with a single reply. Returns
/// `Ok(None)` — with **nothing applied** — when the client disconnected,
/// stalled past [`INGEST_STALL`], or shutdown arrived mid-batch: the
/// engine only ever sees complete batches, so a truncated prefix can never
/// land (batch atomicity holds end to end, not just in the server). All
/// `n` lines are consumed even when one is malformed, keeping the
/// connection in protocol sync.
fn ingest_command<R: Read>(
    engine: &dyn Engine,
    session: &mut Session,
    lines: &mut LineReader<R>,
    n: usize,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut claims = Vec::with_capacity(n);
    let mut bad: Option<String> = None;
    for i in 0..n {
        let Some(line) = lines.next_line_blocking(shutdown, INGEST_STALL)? else {
            return Ok(None);
        };
        let parsed = match &line {
            Ok(l) => parse_claim(&l.split('\t').collect::<Vec<_>>()),
            Err(_) => None,
        };
        match parsed {
            Some(claim) => claims.push(claim),
            None => {
                if bad.is_none() {
                    bad = Some(format!(
                        "INGEST line {} of {n} is not a RECORD or ANSWER claim",
                        i + 1
                    ));
                }
            }
        }
    }
    if let Some(message) = bad {
        return Ok(Some(json_error(&message)));
    }
    Ok(Some(engine.ingest_batch(session, &claims)))
}

fn push_reply(out: &mut Vec<u8>, reply: &str) {
    out.extend_from_slice(reply.as_bytes());
    out.push(b'\n');
}

pub(crate) fn refit_field(refit: Option<RefitSummary>) -> String {
    match refit {
        Some(r) => refit_json(r),
        None => "null".to_string(),
    }
}

pub(crate) fn refit_json(r: RefitSummary) -> String {
    let kind = match r.kind {
        crate::server::RefitKind::Full => "full",
        crate::server::RefitKind::Delta => "delta",
    };
    format!(
        "{{\"iterations\":{},\"converged\":{},\"warm\":{},\"kind\":\"{kind}\",\"seconds\":{}}}",
        r.iterations,
        r.converged,
        r.warm,
        json_f64(r.duration.as_secs_f64())
    )
}

pub(crate) fn json_error(message: &str) -> String {
    format!("{{\"error\":{}}}", json_str(message))
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

pub(crate) fn json_triple(t: Option<[f64; 3]>) -> String {
    match t {
        Some([a, b, c]) => format!("[{},{},{}]", json_f64(a), json_f64(b), json_f64(c)),
        None => "null".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RefitPolicy;
    use std::net::Shutdown as SockShutdown;
    use std::time::Duration;
    use tdh_core::TdhConfig;
    use tdh_data::Dataset;
    use tdh_hierarchy::HierarchyBuilder;

    fn small_server() -> TruthServer {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("Statue of Liberty");
        let s1 = ds.intern_source("UNESCO");
        let s2 = ds.intern_source("Wikipedia");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, li);
        TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch)
    }

    fn roundtrip(lines: &[&str]) -> Vec<String> {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim().to_string());
        }
        drop(writer);
        handle.shutdown();
        replies
    }

    fn single_engine(server: TruthServer) -> SingleEngine {
        let metrics = server.metrics();
        SingleEngine {
            state: server.reader(),
            metrics,
            net: EndpointMetrics::new(),
            server: Arc::new(Mutex::new(server)),
        }
    }

    /// Run in-memory sweeps over `input` against `engine` (no sockets):
    /// the deterministic harness for pipelining, coalescing and `INGEST`
    /// framing.
    fn engine_replies(engine: &dyn Engine, input: &str) -> Vec<String> {
        let shutdown = AtomicBool::new(false);
        let mut session = Session::default();
        let mut lines = LineReader::new(BufReader::new(io::Cursor::new(input.as_bytes().to_vec())));
        let mut all = Vec::new();
        loop {
            let first = match lines.poll_line().unwrap() {
                LinePoll::Line(line) => line,
                _ => break,
            };
            lines.drain_buffered().unwrap();
            let mut out = Vec::new();
            let end = process_sweep(
                first,
                &mut lines,
                engine,
                &mut session,
                &shutdown,
                &mut out,
                &mut |buf| {
                    all.extend_from_slice(buf);
                    buf.clear();
                    Ok(())
                },
            )
            .unwrap();
            all.extend_from_slice(&out);
            if !matches!(end, SweepEnd::Continue) {
                break;
            }
        }
        String::from_utf8(all)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn sweep_replies(server: TruthServer, input: &str) -> Vec<String> {
        engine_replies(&single_engine(server), input)
    }

    #[test]
    fn stats_answers_while_a_writer_holds_the_lock() {
        // The satellite fix: STATS used to dispatch through the writer
        // lock, so a slow refit stalled it. Now it reads atomic mirrors.
        let engine = Arc::new(single_engine(small_server()));
        let server = Arc::clone(&engine.server);
        let hold = std::thread::spawn(move || {
            let _guard = server.lock().unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        std::thread::sleep(Duration::from_millis(50)); // let the holder win the lock
        let t0 = Instant::now();
        let reply = engine.command(&mut Session::default(), &["STATS"]);
        let elapsed = t0.elapsed();
        assert!(reply.contains("\"records\":2"), "{reply}");
        assert!(
            elapsed < Duration::from_millis(400),
            "STATS blocked on the writer lock for {elapsed:?}"
        );
        hold.join().unwrap();
    }

    #[test]
    fn stats_reports_uptime_version_and_publication_age() {
        let replies = sweep_replies(small_server(), "STATS\n");
        let stats = &replies[0];
        assert!(stats.contains("\"uptime_s\":"), "{stats}");
        assert!(
            stats.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
            "{stats}"
        );
        // The bootstrap fit published, so the age is a number, not null.
        assert!(stats.contains("\"last_publication_age_s\":"), "{stats}");
        assert!(
            !stats.contains("\"last_publication_age_s\":null"),
            "{stats}"
        );
    }

    #[test]
    fn metrics_reply_is_a_framed_exposition() {
        let engine = single_engine(small_server());
        let mut session = Session::default();
        engine.command(&mut session, &["TRUTH", "Statue of Liberty"]);
        let reply = engine.command(&mut session, &["METRICS"]);
        assert!(
            reply.ends_with("# EOF"),
            "missing EOF marker: …{}",
            &reply[reply.len().saturating_sub(40)..]
        );
        assert!(
            reply.contains("# TYPE tdh_requests_total counter"),
            "{reply}"
        );
        assert!(
            reply.contains("tdh_request_latency_us_count{command=\"TRUTH\"} 1"),
            "{reply}"
        );
        assert!(
            reply.contains("# TYPE tdh_refit_duration_us histogram"),
            "{reply}"
        );
    }

    #[test]
    fn checkpoint_command_reports_durability() {
        // Without durability the command errors but keeps the sweep alive.
        let replies = sweep_replies(small_server(), "CHECKPOINT\nSTATS\n");
        assert!(replies[0].contains("no durability"), "{}", replies[0]);
        assert!(replies[1].contains("\"objects\""), "{}", replies[1]);

        // With durability it snapshots and reports the WAL coverage point.
        let dir = std::env::temp_dir().join(format!("tdh-net-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = small_server();
        server.attach_durability(&dir).unwrap();
        let replies = sweep_replies(
            server,
            "RECORD\tStatue of Liberty\tBritannica\tLiberty Island\nCHECKPOINT\n",
        );
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(
            replies[1].contains("\"ok\":true") && replies[1].contains("\"wal_seq\":1"),
            "{}",
            replies[1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truth_and_stats_over_the_wire() {
        let replies = roundtrip(&[
            "TRUTH\tStatue of Liberty",
            "SOURCE\tWikipedia",
            "TOPK\t1",
            "STATS",
            "NONSENSE",
        ]);
        assert!(
            replies[0].contains("\"truth\":\"Liberty Island\"")
                || replies[0].contains("\"truth\":\"NY\""),
            "{}",
            replies[0]
        );
        assert!(replies[0].contains("\"path\":\"USA/"), "{}", replies[0]);
        assert!(replies[1].starts_with("{\"source\":\"Wikipedia\",\"phi\":["));
        assert!(replies[2].contains("\"top\":[{\"object\":"));
        assert!(replies[3].contains("\"records\":2"));
        assert!(replies[3].contains("\"publications\":1"));
        assert!(replies[4].contains("\"error\""));
    }

    #[test]
    fn ingestion_over_the_wire_refits() {
        let replies = roundtrip(&[
            "RECORD\tBig Ben\tQuora\tLA",
            "ANSWER\tBig Ben\tEmma Stone\tLA",
            "TRUTH\tBig Ben",
            "WORKER\tEmma Stone",
            "RECORD\tx\ty\tAtlantis",
        ]);
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(replies[0].contains("\"warm\":true"), "{}", replies[0]);
        assert!(replies[2].contains("\"truth\":\"LA\""), "{}", replies[2]);
        assert!(replies[3].contains("\"psi\":["), "{}", replies[3]);
        assert!(
            replies[4].contains("not a hierarchy node"),
            "{}",
            replies[4]
        );
    }

    #[test]
    fn pipelined_commands_reply_in_order() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One write, four commands: four replies, in command order.
        writer
            .write_all(b"TRUTH\tStatue of Liberty\nSTATS\nTOPK\t1\nNONSENSE\n")
            .unwrap();
        let mut replies = Vec::new();
        for _ in 0..4 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim().to_string());
        }
        assert!(
            replies[0].contains("\"object\":\"Statue of Liberty\""),
            "{}",
            replies[0]
        );
        assert!(replies[1].contains("\"records\":2"), "{}", replies[1]);
        assert!(replies[2].contains("\"top\":["), "{}", replies[2]);
        assert!(replies[3].contains("\"error\""), "{}", replies[3]);
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn invalid_utf8_replies_an_error_and_keeps_the_connection() {
        // Regression: a non-UTF-8 line used to kill the connection thread
        // silently — no reply, no further commands served.
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"TRUTH\t\xff\xfe\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"error\""), "{reply}");
        assert!(reply.contains("UTF-8"), "{reply}");
        // The connection survives: the next command is served normally.
        writer.write_all(b"STATS\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"records\":2"), "{reply}");
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn coalesced_claims_take_the_lock_once_and_reply_per_line() {
        // Both claim lines are buffered before the sweep starts, so they
        // coalesce into one ingest batch deterministically.
        let replies = sweep_replies(
            small_server(),
            "RECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(replies[0].contains("\"coalesced\":2"), "{}", replies[0]);
        assert_eq!(replies[0], replies[1], "group lines share one reply");
        // One ingest batch, one refit — not one per claim line.
        assert!(replies[2].contains("\"batches\":1"), "{}", replies[2]);
        assert!(replies[2].contains("\"refits\":2"), "{}", replies[2]);
    }

    #[test]
    fn mixed_kind_claims_do_not_coalesce() {
        // An ANSWER never joins a RECORD's batch (and vice versa): its
        // validation environment is then independent of packet timing.
        // Here the ANSWER selects a value its own RECORD just introduced —
        // legal in either arrival order because the record's batch runs
        // first either way.
        let replies = sweep_replies(
            small_server(),
            "RECORD\tBig Ben\tQuora\tLA\nANSWER\tBig Ben\tEmma Stone\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(!replies[0].contains("coalesced"), "{}", replies[0]);
        assert!(replies[1].contains("\"ok\":true"), "{}", replies[1]);
        assert!(replies[2].contains("\"batches\":2"), "{}", replies[2]);
    }

    #[test]
    fn coalesced_group_failure_reports_per_line() {
        let replies = sweep_replies(
            small_server(),
            "RECORD\tBig Ben\tQuora\tLA\nRECORD\tx\ty\tAtlantis\n\
             RECORD\tBig Ben\tUNESCO\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 4, "{replies:?}");
        // Applied / offender / dropped each get an accurate reply, so a
        // client may retry exactly the lines that errored.
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(
            replies[1].contains("not a hierarchy node"),
            "{}",
            replies[1]
        );
        assert!(replies[2].contains("dropped"), "{}", replies[2]);
        // Only the claim preceding the offender was applied.
        assert!(replies[3].contains("\"records\":3"), "{}", replies[3]);
    }

    #[test]
    fn ingest_command_ships_a_batch_with_one_reply() {
        let replies = sweep_replies(
            small_server(),
            "INGEST\t3\nRECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA\n\
             ANSWER\tBig Ben\tEmma Stone\tLA\nTRUTH\tBig Ben\nSTATS\n",
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(
            replies[0].contains("\"appended_records\":2"),
            "{}",
            replies[0]
        );
        assert!(
            replies[0].contains("\"appended_answers\":1"),
            "{}",
            replies[0]
        );
        assert!(replies[0].contains("\"warm\":true"), "{}", replies[0]);
        assert!(replies[1].contains("\"truth\":\"LA\""), "{}", replies[1]);
        assert!(replies[2].contains("\"batches\":1"), "{}", replies[2]);
    }

    #[test]
    fn ingest_command_rejects_bad_framing_but_stays_in_sync() {
        let replies = sweep_replies(small_server(), "INGEST\tmany\nINGEST\t1\nSTATS\nSTATS\n");
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(replies[0].contains("takes an integer"), "{}", replies[0]);
        // The first STATS line is consumed as the batch's (malformed)
        // claim; the second is served normally afterwards.
        assert!(
            replies[1].contains("not a RECORD or ANSWER claim"),
            "{}",
            replies[1]
        );
        assert!(replies[2].contains("\"records\":2"), "{}", replies[2]);
    }

    #[test]
    fn over_cap_ingest_closes_the_connection() {
        // The batch's lines cannot be consumed without reading arbitrarily
        // many, so the only safe recovery is an error plus a close — the
        // claims must never be re-parsed as individual commands.
        let replies = sweep_replies(
            small_server(),
            "INGEST\t999999999\nRECORD\tBig Ben\tQuora\tLA\nSTATS\n",
        );
        assert_eq!(replies.len(), 1, "{replies:?}");
        assert!(replies[0].contains("capped at"), "{}", replies[0]);
    }

    #[test]
    fn ingest_eof_mid_batch_applies_nothing_in_memory() {
        // `INGEST 5` followed by only 3 claim lines and EOF: the truncated
        // prefix must never reach the server — batches are atomic at the
        // protocol level, not just inside `TruthServer::ingest`.
        let engine = single_engine(small_server());
        let replies = engine_replies(
            &engine,
            "INGEST\t5\nRECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA\n\
             RECORD\tStatue of Liberty\tQuora\tNY\n",
        );
        assert!(
            replies.is_empty(),
            "no reply owed for a dead batch: {replies:?}"
        );
        let server = engine.locked();
        let stats = server.stats();
        assert_eq!(
            stats.n_records, 2,
            "zero claims of the truncated batch landed"
        );
        assert_eq!(stats.batches, 0, "the engine never saw a batch");
        assert!(server.truth("Big Ben").is_none());
    }

    #[test]
    fn ingest_eof_mid_batch_applies_nothing_over_the_wire() {
        // The same contract end to end: kill the client socket after
        // `INGEST 5` + 3 lines, then verify through a second connection
        // that zero claims landed.
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        {
            let stream = TcpStream::connect(handle.addr()).expect("connect");
            let mut writer = stream.try_clone().unwrap();
            writer
                .write_all(
                    b"INGEST\t5\nRECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA\n\
                      RECORD\tStatue of Liberty\tQuora\tNY\n",
                )
                .unwrap();
            let _ = stream.shutdown(SockShutdown::Both);
        }
        // The worker observes the EOF within a poll interval or two; the
        // contract is that *whenever* it does, nothing was applied.
        std::thread::sleep(Duration::from_millis(200));
        let stream = TcpStream::connect(handle.addr()).expect("connect 2");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"STATS\nTRUTH\tBig Ben\n").unwrap();
        let mut stats = String::new();
        reader.read_line(&mut stats).unwrap();
        assert!(stats.contains("\"records\":2"), "{stats}");
        assert!(stats.contains("\"batches\":0"), "{stats}");
        let mut truth = String::new();
        reader.read_line(&mut truth).unwrap();
        assert!(truth.contains("\"truth\":null"), "{truth}");
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn ingest_batch_survives_a_client_pause() {
        // A slow client is not a dead client: a batch split across read
        // timeouts (several poll intervals of silence mid-batch) must
        // still apply in full once the remaining lines arrive.
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"INGEST\t2\nRECORD\tBig Ben\tQuora\tLA\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(120));
        writer.write_all(b"RECORD\tBig Ben\tUNESCO\tLA\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"appended_records\":2"), "{reply}");
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn partial_line_across_timeouts_is_preserved() {
        // A command line split across poll intervals must be reassembled:
        // the timeout path may not drop the bytes that already arrived.
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"TRUTH\tStatue of").unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(80));
        writer.write_all(b" Liberty\nSTATS\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.contains("\"object\":\"Statue of Liberty\""),
            "{reply}"
        );
        let mut stats = String::new();
        reader.read_line(&mut stats).unwrap();
        assert!(stats.contains("\"records\":2"), "{stats}");
        drop(writer);
        handle.shutdown();
    }

    #[test]
    fn connections_can_exceed_the_worker_pool() {
        // One worker, three concurrent connections: the sweep loop serves
        // all of them interleaved. Under the old blocking architecture the
        // worker parked on the first (idle) connection and the others
        // starved until it disconnected.
        let handle = serve_tcp_with(small_server(), "127.0.0.1:0", 1).expect("bind");
        let conns: Vec<TcpStream> = (0..3)
            .map(|_| {
                let s = TcpStream::connect(handle.addr()).expect("connect");
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s
            })
            .collect();
        // Serve them out of connection order to prove none is starved.
        for idx in [2usize, 0, 1] {
            let mut writer = conns[idx].try_clone().unwrap();
            writer.write_all(b"STATS\n").unwrap();
            let mut reply = String::new();
            BufReader::new(conns[idx].try_clone().unwrap())
                .read_line(&mut reply)
                .unwrap();
            assert!(reply.contains("\"records\":2"), "conn {idx}: {reply}");
        }
        drop(conns);
        handle.shutdown();
    }

    #[test]
    fn shutdown_with_idle_connections_returns_promptly() {
        // Regression (ISSUE 8): `shutdown()` used to be able to hang
        // forever because a worker blocked in a timeout-less read on an
        // idle client never observed the flag. The read-timeout sweep
        // bounds it: well under two seconds, idle connections and all.
        let handle = serve_tcp_with(small_server(), "127.0.0.1:0", 2).expect("bind");
        let idle1 = TcpStream::connect(handle.addr()).expect("connect");
        let idle2 = TcpStream::connect(handle.addr()).expect("connect");
        // Make sure the workers actually adopted them (half a command
        // line each: the worst case — mid-line, nothing to reply to).
        let mut w1 = idle1.try_clone().unwrap();
        w1.write_all(b"TRU").unwrap();
        let mut w2 = idle2.try_clone().unwrap();
        w2.write_all(b"STA").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let t0 = Instant::now();
        let server = handle.shutdown();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "shutdown with idle connections took {elapsed:?}"
        );
        assert!(server.lock().unwrap().truth("Statue of Liberty").is_some());
        drop((idle1, idle2));
    }

    /// An engine whose `BOOM` command panics: the harness for the
    /// worker-survives-a-panic guarantee.
    struct PanickyEngine;

    impl Engine for PanickyEngine {
        fn command(&self, _session: &mut Session, fields: &[&str]) -> String {
            match fields {
                ["BOOM"] => panic!("injected request-path panic"),
                ["PING"] => "{\"ok\":true}".to_string(),
                _ => json_error("unknown command"),
            }
        }
        fn claim_group(&self, _session: &mut Session, claims: &[Claim]) -> Vec<String> {
            vec!["{\"ok\":true}".to_string(); claims.len()]
        }
        fn ingest_batch(&self, _session: &mut Session, _claims: &[Claim]) -> String {
            "{\"ok\":true}".to_string()
        }
    }

    #[test]
    fn a_panicking_request_does_not_kill_the_worker() {
        // Regression (ISSUE 8): a panic in a connection worker used to
        // kill that worker silently, shrinking the pool forever. With one
        // worker and a panic-inducing request, the offending connection
        // gets an error and is dropped — and the *same* worker must keep
        // serving fresh connections.
        let core = serve_engine(Arc::new(PanickyEngine), "127.0.0.1:0", 1).expect("bind");
        let addr = core.addr();
        let boom = TcpStream::connect(addr).expect("connect");
        boom.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = boom.try_clone().unwrap();
        writer.write_all(b"BOOM\n").unwrap();
        let mut reply = String::new();
        BufReader::new(boom.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();
        assert!(reply.contains("internal error"), "{reply}");
        // The connection was dropped (EOF), not wedged.
        let mut rest = String::new();
        let n = BufReader::new(boom).read_line(&mut rest).unwrap();
        assert_eq!(n, 0, "panicked connection must be closed, got {rest:?}");
        // The lone worker survived and serves a new connection.
        let ping = TcpStream::connect(addr).expect("connect 2");
        ping.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = ping.try_clone().unwrap();
        writer.write_all(b"PING\n").unwrap();
        let mut reply = String::new();
        BufReader::new(ping).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        core.stop();
    }

    #[test]
    fn collection_commands_error_on_a_single_server_endpoint() {
        let replies = sweep_replies(small_server(), "USE\ttenant\nCOLLECTIONS\nSTATS\n");
        assert!(replies[0].contains("single-server mode"), "{}", replies[0]);
        assert!(replies[1].contains("single-server mode"), "{}", replies[1]);
        assert!(replies[2].contains("\"records\":2"), "{}", replies[2]);
    }

    #[test]
    fn ingest_command_over_the_wire() {
        let replies = roundtrip(&[
            "INGEST\t2\nRECORD\tBig Ben\tQuora\tLA\nRECORD\tBig Ben\tUNESCO\tLA",
            "TRUTH\tBig Ben",
        ]);
        assert!(
            replies[0].contains("\"appended_records\":2"),
            "{}",
            replies[0]
        );
        assert!(replies[1].contains("\"truth\":\"LA\""), "{}", replies[1]);
    }

    #[test]
    fn shutdown_returns_the_server() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let addr = handle.addr();
        let server = handle.shutdown();
        assert!(server.lock().unwrap().truth("Statue of Liberty").is_some());
        // The listener is gone: a fresh connection is either refused
        // outright or — if the OS raced the teardown — accepted and then
        // dropped without any worker serving it. Either way no command
        // written after shutdown may ever be answered.
        match TcpStream::connect(addr) {
            Err(_) => {} // refused: nothing is listening any more
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                // The write itself may fail (connection reset) — that too
                // proves nobody is serving the socket.
                let _ = writer.write_all(b"STATS\n");
                let mut reply = String::new();
                let read = BufReader::new(stream).read_line(&mut reply);
                assert!(
                    matches!(read, Ok(0) | Err(_)),
                    "a post-shutdown command must never be answered, got {reply:?}"
                );
            }
        }
    }

    #[test]
    fn reader_handle_answers_without_the_server_lock() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let reader = handle.reader();
        // Hold the writer lock hostage; the published state still answers.
        let server = handle.shutdown();
        let _guard = server.lock().unwrap();
        let state = reader.load();
        assert!(state.truth("Statue of Liberty").is_some());
        assert_eq!(state.version(), 1);
    }
}
