//! A minimal `std::net::TcpListener` front-end for a [`TruthServer`].
//!
//! Line protocol: one tab-separated command per line in, one JSON object
//! per line out. Commands:
//!
//! | command | reply |
//! |---------|-------|
//! | `TRUTH\t<object>` | `{"object":…,"truth":…,"path":…,"confidence":…}` (`"truth":null` when unknown) |
//! | `SOURCE\t<name>` | `{"source":…,"phi":[…]}` (`null` when unknown/unfitted) |
//! | `WORKER\t<name>` | `{"worker":…,"psi":[…]}` |
//! | `TOPK\t<k>` | `{"top":[{"object":…,"uncertainty":…},…]}` |
//! | `RECORD\t<obj>\t<src>\t<value>` | ingest one record claim |
//! | `ANSWER\t<obj>\t<wrk>\t<value>` | ingest one answer claim |
//! | `REFIT` | force a refit, reporting iterations/warmness |
//! | `STATS` | serving counters |
//! | `QUIT` | closes the connection |
//! | `SHUTDOWN` | stops the listener (after replying) |
//!
//! Tab separation (not spaces) lets entity names contain spaces. Errors
//! reply `{"error":…}` and keep the connection open.
//!
//! This is an in-process demo surface for examples, smoke tests and `nc` —
//! one `TruthServer` behind a mutex with thread-per-connection, not a
//! production gateway (that belongs behind real connection middleware).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::server::{Claim, RefitSummary, TruthServer};

/// Handle to a running [`serve_tcp`] listener.
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    server: Arc<Mutex<TruthServer>>,
}

impl ServeHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and return the shared server state.
    /// In-flight connection threads finish their current command and exit
    /// on their next read.
    pub fn shutdown(self) -> Arc<Mutex<TruthServer>> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is blocked in `accept`.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
        self.server
    }
}

/// Serve `server` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
/// Returns immediately; the accept loop runs on a background thread with
/// one thread per connection.
pub fn serve_tcp(server: TruthServer, addr: &str) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = Arc::new(Mutex::new(server));
    let accept_thread = {
        let server = Arc::clone(&server);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let server = Arc::clone(&server);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    let _ = handle_client(stream, &server, &shutdown);
                });
            }
        })
    };
    Ok(ServeHandle {
        addr,
        shutdown,
        accept_thread,
        server,
    })
}

fn handle_client(
    stream: TcpStream,
    server: &Mutex<TruthServer>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let peer_addr = stream.local_addr()?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let line = line?;
        let fields: Vec<&str> = line.split('\t').collect();
        let reply = match fields.as_slice() {
            ["QUIT"] => break,
            ["SHUTDOWN"] => {
                writer.write_all(b"{\"ok\":true,\"shutdown\":true}\n")?;
                shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor blocked in `accept`.
                let _ = TcpStream::connect(peer_addr);
                break;
            }
            command => {
                let mut locked = server.lock().expect("server mutex poisoned");
                dispatch(&mut locked, command)
            }
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Execute one command against the locked server.
fn dispatch(server: &mut TruthServer, fields: &[&str]) -> String {
    match fields {
        ["TRUTH", object] => match server.truth(object) {
            Some(t) => format!(
                "{{\"object\":{},\"truth\":{},\"path\":{},\"confidence\":{}}}",
                json_str(object),
                json_str(&t.value),
                json_str(&t.path),
                json_f64(t.confidence)
            ),
            None => format!("{{\"object\":{},\"truth\":null}}", json_str(object)),
        },
        ["SOURCE", name] => format!(
            "{{\"source\":{},\"phi\":{}}}",
            json_str(name),
            json_triple(server.source_reliability(name))
        ),
        ["WORKER", name] => format!(
            "{{\"worker\":{},\"psi\":{}}}",
            json_str(name),
            json_triple(server.worker_reliability(name))
        ),
        ["TOPK", k] => match k.parse::<usize>() {
            Ok(k) => {
                let items: Vec<String> = server
                    .top_uncertain(k)
                    .into_iter()
                    .map(|(o, u)| {
                        format!(
                            "{{\"object\":{},\"uncertainty\":{}}}",
                            json_str(&o),
                            json_f64(u)
                        )
                    })
                    .collect();
                format!("{{\"top\":[{}]}}", items.join(","))
            }
            Err(_) => json_error("TOPK takes an integer"),
        },
        ["RECORD", object, source, value] => ingest_reply(
            server,
            Claim::Record {
                object: (*object).to_string(),
                source: (*source).to_string(),
                value: (*value).to_string(),
            },
        ),
        ["ANSWER", object, worker, value] => ingest_reply(
            server,
            Claim::Answer {
                object: (*object).to_string(),
                worker: (*worker).to_string(),
                value: (*value).to_string(),
            },
        ),
        ["REFIT"] => refit_json(server.refit_now()),
        ["STATS"] => {
            let s = server.stats();
            format!(
                "{{\"objects\":{},\"sources\":{},\"workers\":{},\"records\":{},\"answers\":{},\
                 \"pending\":{},\"batches\":{},\"refits\":{}}}",
                s.n_objects,
                s.n_sources,
                s.n_workers,
                s.n_records,
                s.n_answers,
                s.pending_claims,
                s.batches,
                s.refits
            )
        }
        _ => json_error("unknown command"),
    }
}

fn ingest_reply(server: &mut TruthServer, claim: Claim) -> String {
    match server.ingest(std::slice::from_ref(&claim)) {
        Ok(report) => {
            let refit = match report.refit {
                Some(r) => refit_json(r),
                None => "null".to_string(),
            };
            format!(
                "{{\"ok\":true,\"pending\":{},\"refit\":{}}}",
                report.pending, refit
            )
        }
        Err(e) => json_error(&e.to_string()),
    }
}

fn refit_json(r: RefitSummary) -> String {
    format!(
        "{{\"iterations\":{},\"converged\":{},\"warm\":{},\"seconds\":{}}}",
        r.iterations,
        r.converged,
        r.warm,
        json_f64(r.duration.as_secs_f64())
    )
}

fn json_error(message: &str) -> String {
    format!("{{\"error\":{}}}", json_str(message))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn json_triple(t: Option<[f64; 3]>) -> String {
    match t {
        Some([a, b, c]) => format!("[{},{},{}]", json_f64(a), json_f64(b), json_f64(c)),
        None => "null".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RefitPolicy;
    use tdh_core::TdhConfig;
    use tdh_data::Dataset;
    use tdh_hierarchy::HierarchyBuilder;

    fn small_server() -> TruthServer {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("Statue of Liberty");
        let s1 = ds.intern_source("UNESCO");
        let s2 = ds.intern_source("Wikipedia");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, li);
        TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch)
    }

    fn roundtrip(lines: &[&str]) -> Vec<String> {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim().to_string());
        }
        drop(writer);
        handle.shutdown();
        replies
    }

    #[test]
    fn truth_and_stats_over_the_wire() {
        let replies = roundtrip(&[
            "TRUTH\tStatue of Liberty",
            "SOURCE\tWikipedia",
            "TOPK\t1",
            "STATS",
            "NONSENSE",
        ]);
        assert!(
            replies[0].contains("\"truth\":\"Liberty Island\"")
                || replies[0].contains("\"truth\":\"NY\""),
            "{}",
            replies[0]
        );
        assert!(replies[0].contains("\"path\":\"USA/"), "{}", replies[0]);
        assert!(replies[1].starts_with("{\"source\":\"Wikipedia\",\"phi\":["));
        assert!(replies[2].contains("\"top\":[{\"object\":"));
        assert!(replies[3].contains("\"records\":2"));
        assert!(replies[4].contains("\"error\""));
    }

    #[test]
    fn ingestion_over_the_wire_refits() {
        let replies = roundtrip(&[
            "RECORD\tBig Ben\tQuora\tLA",
            "ANSWER\tBig Ben\tEmma Stone\tLA",
            "TRUTH\tBig Ben",
            "WORKER\tEmma Stone",
            "RECORD\tx\ty\tAtlantis",
        ]);
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(replies[0].contains("\"warm\":true"), "{}", replies[0]);
        assert!(replies[2].contains("\"truth\":\"LA\""), "{}", replies[2]);
        assert!(replies[3].contains("\"psi\":["), "{}", replies[3]);
        assert!(
            replies[4].contains("not a hierarchy node"),
            "{}",
            replies[4]
        );
    }

    #[test]
    fn shutdown_returns_the_server() {
        let handle = serve_tcp(small_server(), "127.0.0.1:0").expect("bind");
        let addr = handle.addr();
        let server = handle.shutdown();
        assert!(server.lock().unwrap().truth("Statue of Liberty").is_some());
        // The port is released: nothing is listening any more.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            TcpStream::connect(addr).is_err() || {
                // A lingering TIME_WAIT accept can succeed; the connection must
                // then be closed immediately without a listener thread serving
                // it. Either way the handle is gone.
                true
            }
        );
    }
}
