//! CRC-32 (IEEE 802.3) for the durability formats.
//!
//! Both the write-ahead log ([`crate::wal`]) and the binary v2 snapshot
//! ([`crate::Snapshot`]) frame their payloads with this checksum so that a
//! torn write or a flipped byte is *detected* instead of silently misparsed.
//! Hand-rolled because the workspace builds offline (`vendor/README.md`);
//! the table is computed at compile time.

/// The standard reflected CRC-32 lookup table (polynomial `0xEDB88320`).
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 digest.
#[derive(Debug, Clone)]
pub(crate) struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh digest.
    pub(crate) fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the digest.
    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far (the digest stays usable).
    pub(crate) fn value(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"");
        c.update(b"56789");
        assert_eq!(c.value(), crc32(b"123456789"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"tdh-wal record payload");
        let mut tampered = b"tdh-wal record payload".to_vec();
        tampered[7] ^= 0x10;
        assert_ne!(crc32(&tampered), base);
    }
}
