//! Concurrent-correctness suite for the publish-on-refit read path.
//!
//! Readers holding a `StateReader` must always observe a *complete,
//! internally consistent* publication — truth, path and confidence from
//! the same fit — no matter how many ingest batches and refits the writer
//! runs concurrently; and the published answers must equal both the
//! server's direct query methods and values recomputed independently from
//! the fitted model tables.

use std::sync::atomic::{AtomicBool, Ordering};

use tdh_core::{TdhConfig, TruthEstimate};
use tdh_data::ObservationIndex;
use tdh_datagen::{generate_birthplaces, BirthPlacesConfig};
use tdh_serve::{Claim, RefitPolicy, TruthServer};

fn corpus(n_objects: usize, seed: u64) -> tdh_data::Dataset {
    let cfg = BirthPlacesConfig {
        n_objects,
        hierarchy_nodes: 150,
    };
    generate_birthplaces(&cfg, seed).dataset
}

#[test]
fn published_answers_match_direct_calls_and_recomputed_tables() {
    let server = TruthServer::new(corpus(80, 31), TdhConfig::default(), RefitPolicy::Manual);
    let state = server.state();
    let ds = server.dataset();
    let model = server.model();
    // Recompute the queryable surface independently of the publication
    // path: fresh index, truths re-derived from the fitted μ table.
    let idx = ObservationIndex::build(ds);
    let est = TruthEstimate::from_confidences(&idx, model.mu_table().to_vec());
    for o in ds.objects() {
        let name = ds.object_name(o);
        let published = state.truth(name).cloned();
        assert_eq!(server.truth(name), published, "direct call vs publication");
        match est.truths.get(o.index()).copied().flatten() {
            Some(v) => {
                let t = published.expect("resolved object must be published");
                assert_eq!(t.value, ds.hierarchy().name(v), "object {name}");
                let top = est.confidences[o.index()]
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max);
                assert_eq!(t.confidence, top, "bitwise μ max for {name}");
                assert!(
                    t.path.ends_with(&t.value),
                    "path {} must end in value {}",
                    t.path,
                    t.value
                );
            }
            None => assert!(published.is_none(), "candidate-less object {name}"),
        }
    }
    for s in ds.sources() {
        assert_eq!(
            state.source_reliability(ds.source_name(s)),
            model.phi_table().get(s.index()).copied()
        );
    }
    for w in ds.workers() {
        assert_eq!(
            state.worker_reliability(ds.worker_name(w)),
            Some(model.psi(w))
        );
    }
    // The uncertainty ranking is the same argsort the direct call does.
    let from_state: Vec<(String, f64)> = state
        .top_uncertain(10)
        .iter()
        .map(|(name, u)| (name.to_string(), *u))
        .collect();
    assert_eq!(server.top_uncertain(10), from_state);
}

#[test]
fn concurrent_readers_always_observe_complete_publications() {
    let ds = corpus(60, 33);
    let names: Vec<String> = ds
        .objects()
        .map(|o| ds.object_name(o).to_string())
        .collect();
    // Values already claimed in the corpus — guaranteed valid, non-root
    // hierarchy nodes for the writer's hot batches.
    let values: Vec<String> = ds
        .records()
        .iter()
        .take(8)
        .map(|r| ds.hierarchy().name(r.value).to_string())
        .collect();
    let mut server = TruthServer::new(ds, TdhConfig::default(), RefitPolicy::EveryBatch);
    let reader = server.reader();
    let stop = AtomicBool::new(false);
    let n_rounds = 6u64;

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for t in 0..4usize {
            let reader = reader.clone();
            let names = &names;
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut last_version = 0u64;
                let mut loads = 0u64;
                let mut i = t;
                loop {
                    let st = reader.load();
                    assert!(
                        st.version() >= last_version,
                        "publications observed out of order: {} after {}",
                        st.version(),
                        last_version
                    );
                    last_version = st.version();
                    // Every answer comes whole from one publication:
                    // value, path and confidence can never mix fits.
                    if let Some(t) = st.truth(&names[i % names.len()]) {
                        assert!(t.path.ends_with(&t.value), "{} / {}", t.path, t.value);
                        assert!(
                            t.confidence > 0.0 && t.confidence <= 1.0 + 1e-9,
                            "confidence {} out of range",
                            t.confidence
                        );
                    }
                    let top = st.top_uncertain(5);
                    for w in top.windows(2) {
                        assert!(w[0].1 >= w[1].1 - 1e-12, "ranking must stay sorted");
                    }
                    i += 1;
                    loads += 1;
                    // Checked after the load so even a reader scheduled
                    // late observes at least one publication.
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                loads
            }));
        }

        // The writer ingests and refits while the readers hammer away.
        for round in 0..n_rounds {
            let value = values[round as usize % values.len()].clone();
            let batch = vec![
                Claim::Record {
                    object: format!("hot-{round}"),
                    source: "streaming-source".into(),
                    value: value.clone(),
                },
                Claim::Record {
                    object: format!("hot-{round}"),
                    source: format!("src-{round}"),
                    value,
                },
            ];
            let report = server.ingest(&batch).expect("hot batch");
            assert!(report.refit.is_some(), "EveryBatch refits");
        }
        stop.store(true, Ordering::Relaxed);
        for handle in readers {
            let loads = handle.join().expect("reader must not panic");
            assert!(loads > 0, "reader must have observed at least one state");
        }
    });

    // Post-quiescence: the final publication equals the direct calls and
    // covers every hot object the writer streamed in.
    let final_state = server.state();
    assert_eq!(final_state.version(), 1 + n_rounds);
    for name in &names {
        assert_eq!(server.truth(name), final_state.truth(name).cloned());
    }
    for round in 0..n_rounds {
        assert!(
            final_state.truth(&format!("hot-{round}")).is_some(),
            "hot-{round} must be published after its refit"
        );
    }
}

#[test]
fn unrefitted_claims_stay_unpublished_until_the_next_fit() {
    let ds = corpus(40, 35);
    let value = ds.hierarchy().name(ds.records()[0].value).to_string();
    let mut server = TruthServer::new(ds, TdhConfig::default(), RefitPolicy::Manual);
    let before = server.state();
    server
        .ingest(&[Claim::Record {
            object: "late-object".into(),
            source: "late-source".into(),
            value,
        }])
        .unwrap();
    // No refit ran: queries still answer from the bootstrap publication.
    assert_eq!(server.state().version(), before.version());
    assert!(server.truth("late-object").is_none());
    assert!(server.source_reliability("late-source").is_none());
    server.refit_now();
    assert_eq!(server.state().version(), before.version() + 1);
    assert!(server.truth("late-object").is_some());
    assert!(server.source_reliability("late-source").is_some());
    // The pre-refit Arc still serves its own (old) publication.
    assert!(before.truth("late-object").is_none());
}

#[test]
fn reader_outlives_the_server() {
    let server = TruthServer::new(corpus(30, 37), TdhConfig::default(), RefitPolicy::Manual);
    let name = server
        .dataset()
        .object_name(tdh_data::ObjectId(0))
        .to_string();
    let expected = server.truth(&name);
    let reader = server.reader();
    drop(server);
    let state = reader.load();
    assert_eq!(state.truth(&name).cloned(), expected);
}
