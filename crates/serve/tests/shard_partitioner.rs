//! Property suite for the shard partitioner: every object name routes to
//! exactly one shard, routing is a pure function (deterministic in-process
//! and — being seedless — across process restarts), and partitioning a
//! dataset covers every object/record/answer exactly once with each
//! object's claims on the shard its name hashes to.

use proptest::prelude::*;
use tdh_data::Dataset;
use tdh_hierarchy::HierarchyBuilder;
use tdh_serve::{partition_dataset, shard_of};

/// Name pool mixing hostile and realistic shapes (empty, unicode, spaces,
/// long) so the byte-wise hash is exercised beyond ASCII identifiers.
fn name(i: usize) -> String {
    const POOL: &[&str] = &[
        "",
        "o",
        "object 42",
        "Statue of Liberty",
        "ümlaut-öbject",
        "ναός\u{1F3DB}",
        "tab\tin name",
        "trailing space ",
    ];
    if i % (POOL.len() + 1) == POOL.len() {
        format!("long-{}-{}", "x".repeat(120), i)
    } else {
        format!("{}-{i}", POOL[i % (POOL.len() + 1)])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn every_name_routes_to_exactly_one_shard(
        picks in proptest::collection::vec(0usize..5_000, 1..40),
        n_shards in 1usize..9,
    ) {
        for &pick in &picks {
            let object = name(pick);
            let shard = shard_of(&object, n_shards);
            prop_assert!(shard < n_shards, "{object:?} routed to {shard} of {n_shards}");
            // Pure function: the same name re-routes identically — the
            // in-process half of restart stability (the cross-process half
            // is the pinned constants below: no per-process hash seed).
            prop_assert_eq!(shard, shard_of(&object, n_shards));
        }
    }

    #[test]
    fn partition_covers_the_dataset_exactly_once(
        claims in proptest::collection::vec(
            (0usize..30, 0usize..6, 0usize..4, 0usize..2), 0..60),
        n_shards in 1usize..5,
    ) {
        let mut b = HierarchyBuilder::new();
        for t in 0..4 {
            b.add_path(&["top", &format!("leaf-{t}")]);
        }
        let mut ds = Dataset::new(b.build());
        for &(o, s, v, is_answer) in &claims {
            let o = ds.intern_object(&name(o));
            let v = ds.hierarchy().node_by_name(&format!("leaf-{v}")).unwrap();
            if is_answer == 0 {
                let s = ds.intern_source(&format!("src-{s}"));
                ds.add_record(o, s, v);
            } else {
                let w = ds.intern_worker(&format!("wrk-{s}"));
                ds.add_answer(o, w, v);
            }
        }
        let shards = partition_dataset(&ds, n_shards);
        prop_assert_eq!(shards.len(), n_shards);
        let records: usize = shards.iter().map(|s| s.records().len()).sum();
        let answers: usize = shards.iter().map(|s| s.answers().len()).sum();
        let objects: usize = shards.iter().map(Dataset::n_objects).sum();
        prop_assert_eq!(records, ds.records().len());
        prop_assert_eq!(answers, ds.answers().len());
        prop_assert_eq!(objects, ds.n_objects(), "objects must partition disjointly");
        for (i, shard) in shards.iter().enumerate() {
            for o in shard.objects() {
                prop_assert_eq!(
                    shard_of(shard.object_name(o), n_shards), i,
                    "object {:?} on shard {} but hashes elsewhere",
                    shard.object_name(o), i
                );
            }
            // Claims reference objects interned on their own shard.
            for r in shard.records() {
                prop_assert!(r.object.index() < shard.n_objects());
            }
            for a in shard.answers() {
                prop_assert!(a.object.index() < shard.n_objects());
            }
        }
    }
}

/// Routing constants frozen forever: [`shard_of`] is seedless FNV-1a, so a
/// durable shard layout written by one process must be found intact by the
/// next. Any change to the hash fails here loudly instead of silently
/// stranding every `shard-<i>` directory in existence.
#[test]
fn routing_is_stable_across_process_restarts() {
    assert_eq!(shard_of("Statue of Liberty", 4), 1);
    assert_eq!(shard_of("Big Ben", 4), 0);
    assert_eq!(shard_of("obj-0", 2), 1);
    assert_eq!(shard_of("", 3), shard_of("", 3));
    for n in 1..8 {
        assert!(shard_of("", n) < n, "empty name must still route");
    }
}
