//! Property suite: the binary snapshot format (v2) — `encode_v2` → `decode`
//! is **lossless** for random datasets (hostile names, empty datasets,
//! claim-less objects, fitted and unfitted), preserves the WAL watermark
//! bit-for-bit, and damage is always caught: truncation at any byte and a
//! flipped byte anywhere yield an error, never a panic and never a silently
//! different snapshot. v1 text snapshots stay readable.

use proptest::prelude::*;
use tdh_core::{TdhConfig, TdhModel};
use tdh_data::{Dataset, ObjectId, SourceId, WorkerId};
use tdh_hierarchy::{HierarchyBuilder, NodeId};
use tdh_serve::Snapshot;

/// Build a dataset from raw generator draws; entity names deliberately
/// include tabs/newlines/backslashes to exercise the escaping, which the
/// v2 codec shares with v1 for its text sections.
fn build_dataset(
    n_top: usize,
    n_leaf: usize,
    n_obj: usize,
    n_src: usize,
    n_wrk: usize,
    raw_records: &[(usize, usize, usize)],
    raw_answers: &[(usize, usize, usize)],
) -> Dataset {
    let mut b = HierarchyBuilder::new();
    let mut nodes = Vec::new();
    for t in 0..n_top {
        let top = format!("T{t}");
        for l in 0..n_leaf {
            b.add_path(&[&top, &format!("T{t}\tL{l}\n\\x")]);
        }
    }
    let h = b.build();
    for v in h.nodes().skip(1) {
        nodes.push(v);
    }
    let mut ds = Dataset::new(h);
    for o in 0..n_obj {
        ds.intern_object(&format!("obj\t{o}\\"));
    }
    for s in 0..n_src {
        ds.intern_source(&format!("src\n{s}"));
    }
    for w in 0..n_wrk {
        ds.intern_worker(&format!("wrk\r{w}"));
    }
    if n_obj > 0 && !nodes.is_empty() {
        for &(o, s, v) in raw_records {
            ds.add_record(
                ObjectId((o % n_obj) as u32),
                SourceId((s % n_src) as u32),
                nodes[v % nodes.len()],
            );
        }
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_obj];
        for r in ds.records() {
            cands[r.object.index()].push(r.value);
        }
        for c in &mut cands {
            c.sort_unstable();
            c.dedup();
        }
        for &(o, w, pick) in raw_answers {
            let oi = o % n_obj;
            if cands[oi].is_empty() {
                continue;
            }
            ds.add_answer(
                ObjectId(oi as u32),
                WorkerId((w % n_wrk) as u32),
                cands[oi][pick % cands[oi].len()],
            );
        }
    }
    ds
}

/// Field-by-field dataset equality through the public API.
fn assert_dataset_eq(a: &Dataset, b: &Dataset) {
    assert_eq!(a.n_objects(), b.n_objects());
    assert_eq!(a.n_sources(), b.n_sources());
    assert_eq!(a.n_workers(), b.n_workers());
    let (ha, hb) = (a.hierarchy(), b.hierarchy());
    assert_eq!(ha.len(), hb.len());
    for v in ha.nodes() {
        assert_eq!(ha.name(v), hb.name(v), "node {v:?}");
        assert_eq!(ha.parent(v), hb.parent(v), "node {v:?}");
    }
    for o in a.objects() {
        assert_eq!(a.object_name(o), b.object_name(o));
        assert_eq!(a.gold(o), b.gold(o), "gold of {o:?}");
    }
    assert_eq!(a.records(), b.records());
    assert_eq!(a.answers(), b.answers());
}

fn assert_snapshot_eq(a: &Snapshot, b: &Snapshot) {
    assert_dataset_eq(&a.dataset, &b.dataset);
    assert_eq!(a.wal_seq, b.wal_seq, "WAL watermark");
    match (&a.params, &b.params) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            // Bit-for-bit: μ rows travel as raw little-endian f64.
            assert_eq!(x.phi, y.phi, "φ");
            assert_eq!(x.psi, y.psi, "ψ");
            assert_eq!(x.mu, y.mu, "μ");
            assert_eq!(x.config, y.config, "config");
        }
        (x, y) => panic!(
            "params presence flipped: {:?} vs {:?}",
            x.is_some(),
            y.is_some()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn v2_roundtrip_is_lossless(
        shape in (1usize..4, 1usize..4),
        dims in (0usize..6, 1usize..4, 1usize..3),
        records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..30),
        answers in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..15),
        fit in 0usize..2,
        wal_seq in 0u64..1_000_000,
    ) {
        let (n_top, n_leaf) = shape;
        let (n_obj, n_src, n_wrk) = dims;
        let ds = build_dataset(n_top, n_leaf, n_obj, n_src, n_wrk,
            &records, &answers);
        let mut snap = if fit == 1 {
            let mut model = TdhModel::new(TdhConfig { max_iters: 25, ..Default::default() });
            model.fit(&ds);
            Snapshot::fitted(ds, &model)
        } else {
            Snapshot::new(ds)
        };
        snap.wal_seq = wal_seq;

        let bytes = snap.encode_v2();
        let decoded = Snapshot::decode_bytes(&bytes).expect("decode what we encoded");
        assert_snapshot_eq(&snap, &decoded);
        // Canonical form: the byte format is stable under a round trip.
        prop_assert_eq!(&bytes, &decoded.encode_v2(), "encode_v2∘decode must be identity");
    }

    #[test]
    fn truncation_is_an_error_never_a_panic(
        dims in (1usize..5, 1usize..3, 1usize..3),
        records in proptest::collection::vec(
            (0usize..100, 0usize..100, 0usize..100), 1..20),
        cut_ppm in 0u32..1_000_000,
    ) {
        let (n_obj, n_src, n_wrk) = dims;
        let ds = build_dataset(2, 2, n_obj, n_src, n_wrk, &records, &[]);
        let mut model = TdhModel::new(TdhConfig { max_iters: 10, ..Default::default() });
        model.fit(&ds);
        let snap = Snapshot::fitted(ds, &model);
        let bytes = snap.encode_v2();

        let cut = (bytes.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(
            Snapshot::decode_bytes(&bytes[..cut]).is_err(),
            "a truncated snapshot (cut at {} of {}) must not decode",
            cut, bytes.len()
        );
    }

    #[test]
    fn any_flipped_byte_is_caught(
        dims in (1usize..5, 1usize..3, 1usize..3),
        records in proptest::collection::vec(
            (0usize..100, 0usize..100, 0usize..100), 1..20),
        byte_ppm in 0u32..1_000_000,
        mask in 1usize..256,
    ) {
        let (n_obj, n_src, n_wrk) = dims;
        let ds = build_dataset(2, 2, n_obj, n_src, n_wrk, &records, &[]);
        let mut model = TdhModel::new(TdhConfig { max_iters: 10, ..Default::default() });
        model.fit(&ds);
        let snap = Snapshot::fitted(ds, &model);
        let mut bytes = snap.encode_v2();

        // Every byte through `end\n` is CRC-covered; flips inside the
        // trailing crc line either break its syntax or mismatch the digest.
        let at = (bytes.len() as u64 * u64::from(byte_ppm) / 1_000_000) as usize;
        bytes[at] ^= mask as u8;
        prop_assert!(
            Snapshot::decode_bytes(&bytes).is_err(),
            "flipping byte {} (xor {:#x}) of {} must not decode",
            at, mask, bytes.len()
        );
    }
}

#[test]
fn v1_text_still_loads_and_reports_zero_watermark() {
    let ds = build_dataset(
        2,
        2,
        4,
        2,
        1,
        &[(0, 0, 0), (1, 1, 2), (0, 1, 3)],
        &[(0, 0, 0)],
    );
    let mut model = TdhModel::new(TdhConfig::default());
    model.fit(&ds);
    let mut snap = Snapshot::fitted(ds, &model);
    snap.wal_seq = 99; // dropped by the v1 text encoding, by design

    let text = snap.encode();
    let decoded = Snapshot::decode(&text).expect("v1 text decodes");
    assert_eq!(decoded.wal_seq, 0, "v1 has no watermark field");
    assert_dataset_eq(&snap.dataset, &decoded.dataset);
    assert_eq!(snap.params, decoded.params);

    // decode_bytes dispatches on the header and accepts v1 too.
    let from_bytes = Snapshot::decode_bytes(text.as_bytes()).expect("v1 bytes decode");
    assert_eq!(from_bytes.wal_seq, 0);
    assert_eq!(snap.params, from_bytes.params);
}

#[test]
fn save_writes_v2_and_load_reads_both_versions() {
    let dir = std::env::temp_dir().join(format!("tdh-snapv2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ds = build_dataset(2, 2, 3, 2, 1, &[(0, 0, 0), (1, 1, 1), (2, 0, 2)], &[]);
    let mut model = TdhModel::new(TdhConfig::default());
    model.fit(&ds);
    let mut snap = Snapshot::fitted(ds, &model);
    snap.wal_seq = 7;

    let v2 = dir.join("v2.tdhsnap");
    snap.save(&v2).unwrap();
    let head = std::fs::read(&v2).unwrap();
    assert!(
        head.starts_with(b"tdh-snapshot v2\n"),
        "save writes the v2 format"
    );
    assert_snapshot_eq(&snap, &Snapshot::load(&v2).unwrap());

    // A v1 file written by an older build loads through the same path.
    let v1 = dir.join("v1.tdhsnap");
    std::fs::write(&v1, snap.encode()).unwrap();
    let loaded = Snapshot::load(&v1).unwrap();
    assert_eq!(loaded.wal_seq, 0);
    assert_eq!(snap.params, loaded.params);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_dataset_v2_roundtrips() {
    let ds = Dataset::new(HierarchyBuilder::new().build());
    let snap = Snapshot::new(ds.clone());
    let decoded = Snapshot::decode_bytes(&snap.encode_v2()).unwrap();
    assert_snapshot_eq(&snap, &decoded);
    let mut model = TdhModel::new(TdhConfig::default());
    model.fit(&ds);
    let fitted = Snapshot::fitted(ds, &model);
    let decoded = Snapshot::decode_bytes(&fitted.encode_v2()).unwrap();
    assert_snapshot_eq(&fitted, &decoded);
}
