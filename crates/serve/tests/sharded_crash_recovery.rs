//! Sharded crash-injection suite: a child process serving a durable
//! [`ShardedServer`] through the router front is SIGKILLed mid-stream and
//! restarted from the same directory. Every acked batch must survive on
//! whichever shard it was routed to (each shard recovers from its own
//! `shard-<i>` WAL + snapshot, independently), no torn batch may apply,
//! and the recovered router must answer `TRUTH` exactly as the pre-crash
//! process did. Each `INGEST` batch here targets a single object, so a
//! batch lives entirely on one shard and the crash window tears exactly
//! one shard's stream — the others must recover untouched.
//!
//! The child is this same test binary re-invoked with `--exact
//! child_sharded_server` and `TDH_SHARD_CRASH_DIR` set; in normal runs
//! that test is an immediate no-op.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tdh_core::TdhConfig;
use tdh_data::Dataset;
use tdh_hierarchy::HierarchyBuilder;
use tdh_serve::{serve_router, Collections, RefitPolicy, Router, ShardedServer};

const N_SHARDS: usize = 3;
const BASE_RECORDS: usize = 60;

/// 20 objects × 3 records, spread over the shards by name hash.
fn corpus() -> Dataset {
    let mut b = HierarchyBuilder::new();
    for c in 0..4 {
        for t in 0..4 {
            b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
        }
    }
    let mut ds = Dataset::new(b.build());
    let good1 = ds.intern_source("good1");
    let good2 = ds.intern_source("good2");
    let liar = ds.intern_source("liar");
    for i in 0..20 {
        let o = ds.intern_object(&format!("o{i}"));
        let h = ds.hierarchy();
        let truth = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
        let wrong = h
            .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
            .unwrap();
        ds.add_record(o, good1, truth);
        ds.add_record(o, good2, truth);
        ds.add_record(o, liar, wrong);
    }
    ds
}

/// The child half: create or recover the durable sharded server under
/// `$TDH_SHARD_CRASH_DIR`, serve it through the router on an ephemeral
/// port (default collection `main`), publish the address atomically, park.
#[test]
fn child_sharded_server() {
    let Ok(dir) = std::env::var("TDH_SHARD_CRASH_DIR") else {
        return; // normal test run: nothing to do
    };
    let dir = PathBuf::from(dir);
    let sharded = if dir.join("shard-0").exists() {
        ShardedServer::open(&dir, RefitPolicy::EveryBatch).expect("child recovers")
    } else {
        ShardedServer::create_durable(
            &dir,
            corpus(),
            TdhConfig::default(),
            RefitPolicy::EveryBatch,
            N_SHARDS,
        )
        .expect("child bootstraps")
    };
    let collections = Collections::new();
    collections.insert("main", sharded).expect("register");
    let handle = serve_router(Router::new(collections).with_default("main"), "127.0.0.1:0")
        .expect("child listens");
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, handle.addr().to_string()).unwrap();
    std::fs::rename(&tmp, dir.join("addr")).unwrap();
    loop {
        std::thread::park();
    }
}

struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_child(dir: &Path) -> ChildGuard {
    let _ = std::fs::remove_file(dir.join("addr"));
    let child = Command::new(std::env::current_exe().unwrap())
        .args(["child_sharded_server", "--exact", "--nocapture"])
        .env("TDH_SHARD_CRASH_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sharded child");
    ChildGuard(child)
}

fn wait_for_addr(dir: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(dir.join("addr")) {
            return addr;
        }
        assert!(
            Instant::now() < deadline,
            "child never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to child");
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line
}

/// One single-object `INGEST` batch (3 records): lives on exactly one
/// shard, so per-shard and per-batch atomicity coincide for it.
fn ingest_lines(name: &str, i: usize) -> String {
    let truth = format!("C{}T{}", i % 4, (i + 1) % 4);
    let wrong = format!("C{}T{}", (i + 2) % 4, (i + 1) % 4);
    format!(
        "INGEST\t3\nRECORD\t{name}\tgood1\t{truth}\nRECORD\t{name}\tgood2\t{truth}\n\
         RECORD\t{name}\tliar\t{wrong}\n"
    )
}

fn stats_field(json: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key).expect("stats field") + key.len()..];
    rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
}

/// `"truth":"<v>"` of a TRUTH reply, or None for null.
fn truth_value(reply: &str) -> Option<String> {
    let key = "\"truth\":\"";
    let start = reply.find(key)? + key.len();
    Some(reply[start..start + reply[start..].find('"')?].to_string())
}

#[test]
fn sigkill_one_process_recovers_every_shard_and_answers_match() {
    let dir = std::env::temp_dir().join(format!("tdh-shardcrash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Generation 1: bootstrap, ingest acked single-object batches (routed
    // across shards by name hash), checkpoint midway.
    let child = spawn_child(&dir);
    let addr = wait_for_addr(&dir);
    let (mut stream, mut reader) = connect(&addr);
    let mut acked = Vec::new();
    for i in 0..6 {
        let name = format!("acked{i}");
        stream.write_all(ingest_lines(&name, i).as_bytes()).unwrap();
        let reply = read_line(&mut reader);
        assert!(
            reply.contains("\"appended_records\":3"),
            "ack, got: {reply}"
        );
        acked.push(name);
        if i == 2 {
            stream.write_all(b"CHECKPOINT\n").unwrap();
            let reply = read_line(&mut reader);
            assert!(reply.contains("\"ok\":true"), "checkpoint, got: {reply}");
            assert!(
                reply.contains(&format!("\"shards\":{N_SHARDS}")),
                "checkpoint must cover all shards: {reply}"
            );
        }
    }

    // Record the pre-crash answers the recovered router must reproduce.
    let mut pre_crash: BTreeMap<String, Option<String>> = BTreeMap::new();
    for name in acked.iter().map(String::as_str).chain(["o0", "o7", "o13"]) {
        stream
            .write_all(format!("TRUTH\t{name}\n").as_bytes())
            .unwrap();
        pre_crash.insert(name.to_string(), truth_value(&read_line(&mut reader)));
        assert!(
            pre_crash[name].is_some(),
            "pre-crash {name} must have a truth"
        );
    }

    // Crash window: one complete batch whose ack we never read, one torn
    // batch that can never complete, then SIGKILL mid-stream.
    stream
        .write_all(ingest_lines("unacked", 6).as_bytes())
        .unwrap();
    stream
        .write_all(b"INGEST\t3\nRECORD\tvictim\tgood1\tC0T1\nRECORD\tvictim\tgood2\tC0T1\n")
        .unwrap();
    stream.flush().unwrap();
    drop(child); // SIGKILL
    drop(stream);

    // Generation 2: every shard recovers from its own shard-<i> directory.
    let child = spawn_child(&dir);
    let addr = wait_for_addr(&dir);
    let (mut stream, mut reader) = connect(&addr);
    stream.write_all(b"STATS\n").unwrap();
    let stats = read_line(&mut reader);
    assert_eq!(
        stats_field(&stats, "shards"),
        N_SHARDS as u64,
        "recovered shard count: {stats}"
    );
    let records = stats_field(&stats, "records");
    assert!(
        records >= (BASE_RECORDS + 3 * acked.len()) as u64,
        "acked claims lost: {records} records after recovery ({stats})"
    );
    // Single-object batches live on one shard, so per-shard atomicity
    // means whole batches of 3 — nothing torn may surface.
    assert_eq!(
        (records - BASE_RECORDS as u64) % 3,
        0,
        "a batch half-applied: {records} records ({stats})"
    );

    // Router answers match the pre-crash state, object by object.
    for (name, want) in &pre_crash {
        stream
            .write_all(format!("TRUTH\t{name}\n").as_bytes())
            .unwrap();
        let got = truth_value(&read_line(&mut reader));
        assert_eq!(
            &got, want,
            "recovered TRUTH {name:?} diverged from pre-crash"
        );
    }
    // The torn batch vanished entirely.
    stream.write_all(b"TRUTH\tvictim\n").unwrap();
    let reply = read_line(&mut reader);
    assert!(
        reply.contains("\"truth\":null"),
        "torn batch leaked into the recovered state: {reply}"
    );

    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}
