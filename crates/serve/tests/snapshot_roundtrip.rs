//! Property suite: snapshot encode → decode is **lossless** — for random
//! datasets (including empty datasets, claim-less objects, answer-less
//! workers and gold-less objects) with and without fitted parameters, the
//! decoded snapshot reproduces every entity name, record, answer, gold
//! label and parameter **bit-for-bit**.
//!
//! Losslessness is asserted two ways: field-by-field structural equality,
//! and canonical-form equality (`encode(decode(encode(x))) == encode(x)`),
//! which pins the textual format itself against drift.

use proptest::prelude::*;
use tdh_core::{TdhConfig, TdhModel};
use tdh_data::{Dataset, ObjectId, SourceId, WorkerId};
use tdh_hierarchy::{HierarchyBuilder, NodeId};
use tdh_serve::Snapshot;

/// Build a dataset from raw generator draws; entity names deliberately
/// include tabs/newlines/backslashes to exercise the escaping.
fn build_dataset(
    n_top: usize,
    n_leaf: usize,
    n_obj: usize,
    n_src: usize,
    n_wrk: usize,
    raw_records: &[(usize, usize, usize)],
    raw_answers: &[(usize, usize, usize)],
    raw_gold: &[usize],
) -> Dataset {
    let mut b = HierarchyBuilder::new();
    let mut nodes = Vec::new();
    for t in 0..n_top {
        let top = format!("T{t}");
        for l in 0..n_leaf {
            b.add_path(&[&top, &format!("T{t}\tL{l}\n\\x")]);
        }
    }
    let h = b.build();
    for v in h.nodes().skip(1) {
        nodes.push(v);
    }
    let mut ds = Dataset::new(h);
    for o in 0..n_obj {
        ds.intern_object(&format!("obj\t{o}\\"));
    }
    for s in 0..n_src {
        ds.intern_source(&format!("src\n{s}"));
    }
    for w in 0..n_wrk {
        ds.intern_worker(&format!("wrk\r{w}"));
    }
    if n_obj > 0 && !nodes.is_empty() {
        for &(o, s, v) in raw_records {
            ds.add_record(
                ObjectId((o % n_obj) as u32),
                SourceId((s % n_src) as u32),
                nodes[v % nodes.len()],
            );
        }
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_obj];
        for r in ds.records() {
            cands[r.object.index()].push(r.value);
        }
        for c in &mut cands {
            c.sort_unstable();
            c.dedup();
        }
        for &(o, w, pick) in raw_answers {
            let oi = o % n_obj;
            if cands[oi].is_empty() {
                continue;
            }
            ds.add_answer(
                ObjectId(oi as u32),
                WorkerId((w % n_wrk) as u32),
                cands[oi][pick % cands[oi].len()],
            );
        }
        for &g in raw_gold {
            // Every third object keeps no gold label.
            let oi = g % n_obj;
            if oi % 3 != 0 {
                ds.set_gold(ObjectId(oi as u32), nodes[g % nodes.len()]);
            }
        }
    }
    ds
}

/// Field-by-field dataset equality through the public API.
fn assert_dataset_eq(a: &Dataset, b: &Dataset) {
    assert_eq!(a.n_objects(), b.n_objects());
    assert_eq!(a.n_sources(), b.n_sources());
    assert_eq!(a.n_workers(), b.n_workers());
    let (ha, hb) = (a.hierarchy(), b.hierarchy());
    assert_eq!(ha.len(), hb.len());
    for v in ha.nodes() {
        assert_eq!(ha.name(v), hb.name(v), "node {v:?}");
        assert_eq!(ha.parent(v), hb.parent(v), "node {v:?}");
    }
    for o in a.objects() {
        assert_eq!(a.object_name(o), b.object_name(o));
        assert_eq!(a.gold(o), b.gold(o), "gold of {o:?}");
    }
    for s in a.sources() {
        assert_eq!(a.source_name(s), b.source_name(s));
    }
    for w in a.workers() {
        assert_eq!(a.worker_name(w), b.worker_name(w));
    }
    assert_eq!(a.records(), b.records());
    assert_eq!(a.answers(), b.answers());
}

fn check_roundtrip(snap: &Snapshot) {
    let text = snap.encode();
    let decoded = Snapshot::decode(&text).expect("decode what we encoded");
    assert_dataset_eq(&snap.dataset, &decoded.dataset);
    match (&snap.params, &decoded.params) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            // Bit-for-bit: shortest-round-trip float formatting.
            assert_eq!(a.phi, b.phi, "φ");
            assert_eq!(a.psi, b.psi, "ψ");
            assert_eq!(a.mu, b.mu, "μ");
            assert_eq!(a.config, b.config, "config");
        }
        (a, b) => panic!(
            "params presence flipped: {:?} vs {:?}",
            a.is_some(),
            b.is_some()
        ),
    }
    // Canonical-form: the format itself is stable under a round trip.
    assert_eq!(text, decoded.encode(), "encode∘decode must be identity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn snapshot_roundtrip_is_lossless(
        shape in (1usize..4, 1usize..4),
        dims in (0usize..6, 1usize..4, 0usize..3),
        records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..30),
        answers in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..15),
        gold in proptest::collection::vec(0usize..1000, 0..10),
        fit in 0usize..2,
    ) {
        let (n_top, n_leaf) = shape;
        let (n_obj, n_src, n_wrk) = dims;
        // Workers may be absent entirely; answers then have nobody to come
        // from, which build_dataset handles by modding into a 1-worker
        // universe only when one exists.
        let n_wrk_eff = n_wrk.max(usize::from(!answers.is_empty()));
        let ds = build_dataset(n_top, n_leaf, n_obj, n_src, n_wrk_eff,
            &records, &answers, &gold);
        let snap = if fit == 1 {
            let mut model = TdhModel::new(TdhConfig { max_iters: 25, ..Default::default() });
            model.fit(&ds);
            Snapshot::fitted(ds, &model)
        } else {
            Snapshot::new(ds)
        };
        check_roundtrip(&snap);
    }
}

#[test]
fn empty_dataset_with_and_without_params() {
    let ds = Dataset::new(HierarchyBuilder::new().build());
    check_roundtrip(&Snapshot::new(ds.clone()));
    // A model fitted on the empty dataset has empty tables — still a valid,
    // parameter-bearing snapshot.
    let mut model = TdhModel::new(TdhConfig::default());
    model.fit(&ds);
    check_roundtrip(&Snapshot::fitted(ds, &model));
}

#[test]
fn claim_less_objects_roundtrip_with_params() {
    // Objects with no records have empty candidate sets and empty μ rows —
    // the serializer must distinguish "empty row" from "missing row".
    let mut b = HierarchyBuilder::new();
    b.add_path(&["X", "A"]);
    b.add_path(&["X", "B"]);
    let mut ds = Dataset::new(b.build());
    let o0 = ds.intern_object("claimed");
    ds.intern_object("silent");
    ds.intern_object("silent2");
    let s = ds.intern_source("s");
    let a = ds.hierarchy().node_by_name("A").unwrap();
    ds.add_record(o0, s, a);
    let mut model = TdhModel::new(TdhConfig::default());
    model.fit(&ds);
    let snap = Snapshot::fitted(ds, &model);
    assert_eq!(snap.params.as_ref().unwrap().mu[1], Vec::<f64>::new());
    check_roundtrip(&snap);
}

#[test]
fn save_load_files_roundtrip() {
    let dir = std::env::temp_dir().join("tdh-serve-snapshot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tdhsnap");
    let ds = build_dataset(
        2,
        2,
        4,
        2,
        1,
        &[(0, 0, 0), (1, 1, 2), (0, 1, 3)],
        &[(0, 0, 0)],
        &[1],
    );
    let mut model = TdhModel::new(TdhConfig::default());
    model.fit(&ds);
    let snap = Snapshot::fitted(ds, &model);
    snap.save(&path).unwrap();
    let loaded = Snapshot::load(&path).unwrap();
    assert_dataset_eq(&snap.dataset, &loaded.dataset);
    assert_eq!(snap.params, loaded.params);
    let _ = std::fs::remove_dir_all(&dir);
}
