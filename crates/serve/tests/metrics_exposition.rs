//! `METRICS` acceptance (ISSUE 9): the exposition served over TCP is
//! well-formed Prometheus-style text covering the required instrument
//! families, on both a single durable server and a 2-shard router (whose
//! output is the merge of the shard registries with the endpoint's own).

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use tdh_core::TdhConfig;
use tdh_data::Dataset;
use tdh_hierarchy::HierarchyBuilder;
use tdh_serve::{
    serve_router_with, serve_tcp_with, shard_of, Collections, RefitPolicy, Router, TruthServer,
};

/// A small two-source corpus over a two-level hierarchy.
fn corpus() -> Dataset {
    let mut b = HierarchyBuilder::new();
    b.add_path(&["USA", "NY", "Liberty Island"]);
    b.add_path(&["UK", "London", "Westminster"]);
    let mut ds = Dataset::new(b.build());
    let s1 = ds.intern_source("good1");
    let s2 = ds.intern_source("good2");
    for i in 0..6 {
        let o = ds.intern_object(&format!("m-obj-{i}"));
        let truth = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.add_record(o, s1, truth);
        ds.add_record(o, s2, truth);
    }
    ds
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim().to_string()
    }

    /// Send `METRICS` and read exposition lines until the `# EOF` marker.
    fn scrape(&mut self) -> Vec<String> {
        self.writer.write_all(b"METRICS\n").unwrap();
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            let done = line == "# EOF";
            lines.push(line);
            if done {
                return lines;
            }
        }
    }
}

/// Every line must be a `# TYPE name kind` comment, the `# EOF` marker, or
/// `name[{labels}] value` with a parseable numeric value. Returns the set
/// of declared families.
fn check_exposition(lines: &[String]) -> BTreeSet<String> {
    assert_eq!(lines.last().map(String::as_str), Some("# EOF"));
    let mut families = BTreeSet::new();
    for line in &lines[..lines.len() - 1] {
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split(' ');
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad kind in {line:?}"
            );
            assert!(parts.next().is_none(), "trailing junk in {line:?}");
            families.insert(name.to_string());
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad series name in {line:?}"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unclosed label set in {line:?}");
        }
        // Every series belongs to a family whose base name was declared
        // (histogram series carry a _bucket/_sum/_count suffix).
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            families.contains(base) || families.contains(name),
            "series {name} precedes its # TYPE declaration"
        );
    }
    families
}

/// The value of the series whose rendered line starts with `prefix`
/// (summed over matching lines).
fn series_total(lines: &[String], prefix: &str) -> f64 {
    lines
        .iter()
        .filter(|l| l.starts_with(prefix) && !l.starts_with("# "))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap())
        .sum()
}

#[test]
fn single_server_exposition_covers_required_families() {
    let dir = std::env::temp_dir().join(format!("tdh-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = TruthServer::create_durable(
        &dir,
        corpus(),
        TdhConfig::default(),
        RefitPolicy::EveryBatch,
    )
    .expect("durable server");
    let handle = serve_tcp_with(server, "127.0.0.1:0", 2).expect("bind");
    let mut c = Client::connect(handle.addr());

    // Exercise every instrumented path: claim ingest (WAL append + fsync +
    // refit), reads, a forced refit, a checkpoint, stats.
    let r = c.send("RECORD\tm-obj-0\textra\tLiberty Island");
    assert!(r.contains("\"ok\":true"), "{r}");
    assert!(c.send("TRUTH\tm-obj-0").contains("Liberty Island"));
    c.send("TOPK\t3");
    assert!(c.send("REFIT").contains("\"iterations\""));
    assert!(c.send("CHECKPOINT").contains("\"ok\":true"));

    // STATS is extended with the derived keys and stays JSON.
    let stats = c.send("STATS");
    for key in [
        "\"uptime_s\":",
        "\"version\":\"",
        "\"last_publication_age_s\":",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }

    let lines = c.scrape();
    let families = check_exposition(&lines);
    for family in [
        "tdh_requests_total",
        "tdh_request_latency_us",
        "tdh_uptime_s",
        "tdh_publication_age_s",
        "tdh_records_total",
        "tdh_ingest_batches_total",
        "tdh_ingest_batch_claims",
        "tdh_refits_total",
        "tdh_refit_duration_us",
        "tdh_delta_refit_duration_us",
        "tdh_pending_claims",
        "tdh_publications_total",
        "tdh_checkpoints_total",
        "tdh_wal_append_us",
        "tdh_wal_fsync_us",
        "tdh_wal_appended_bytes_total",
        "tdh_wal_syncs_total",
        "tdh_em_fits_total",
        "tdh_em_iterations",
        "tdh_em_e_step_us",
        "tdh_em_m_step_us",
    ] {
        assert!(families.contains(family), "missing family {family}");
    }
    assert!(families.len() >= 10, "only {} families", families.len());
    // The latency histogram saw the TRUTH request we sent.
    assert!(
        series_total(&lines, "tdh_request_latency_us_count{command=\"TRUTH\"}") >= 1.0,
        "no TRUTH latency observation"
    );
    // Refits are accounted under both a warm and a kind label.
    assert!(
        series_total(&lines, "tdh_refits_total{kind=\"full\"") >= 1.0,
        "no kind-labelled refit series"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_exposition_merges_shard_registries() {
    // Two objects chosen to span both shards of two (seedless hash).
    assert_ne!(shard_of("Statue of Liberty", 2), shard_of("Big Ben", 2));

    let mut b = HierarchyBuilder::new();
    b.add_path(&["USA", "NY", "Liberty Island"]);
    b.add_path(&["UK", "London", "Westminster"]);
    let router = Router::new(Collections::with_template(
        b.build(),
        TdhConfig::default(),
        RefitPolicy::EveryBatch,
        2,
    ));
    let handle = serve_router_with(router, "127.0.0.1:0", 2).expect("bind");
    let mut c = Client::connect(handle.addr());

    assert!(c.send("CREATE\tlandmarks").contains("\"created\""));
    assert!(c.send("USE\tlandmarks").contains("\"shards\":2"));
    let r = c.send("RECORD\tStatue of Liberty\tUNESCO\tLiberty Island");
    assert!(r.contains("\"ok\":true"), "{r}");
    let r = c.send("RECORD\tBig Ben\tUNESCO\tWestminster");
    assert!(r.contains("\"ok\":true"), "{r}");
    assert!(c
        .send("TRUTH\tStatue of Liberty")
        .contains("Liberty Island"));
    assert!(c.send("TRUTH\tBig Ben").contains("Westminster"));
    c.send("TOPK\t4");

    // Router STATS carries the derived keys and the pinned prefix.
    let stats = c.send("STATS");
    assert!(stats.contains("\"collection\":\"landmarks\""), "{stats}");
    assert!(stats.contains("\"shards\":2"), "{stats}");
    for key in [
        "\"uptime_s\":",
        "\"version\":\"",
        "\"last_publication_age_s\":",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }

    let lines = c.scrape();
    let families = check_exposition(&lines);
    assert!(families.len() >= 10, "only {} families", families.len());
    assert!(families.contains("tdh_shard_requests_total"));

    // Per-shard routing counters: one ingested record per shard, queries
    // on both shards (key-routed TRUTH plus the TOPK fan-out).
    for shard in 0..2 {
        let ingest = format!("tdh_shard_requests_total{{kind=\"ingest\",shard=\"{shard}\"}}");
        assert!(
            series_total(&lines, &ingest) >= 1.0,
            "no ingest routed to shard {shard}"
        );
        let query = format!("tdh_shard_requests_total{{kind=\"query\",shard=\"{shard}\"}}");
        assert!(
            series_total(&lines, &query) >= 2.0,
            "too few queries routed to shard {shard}"
        );
    }

    // Merged evidence: both shards cold-fit at CREATE and refit on their
    // record, so the summed counters exceed what any one shard saw.
    assert!(
        series_total(&lines, "tdh_publications_total") >= 4.0,
        "publications not merged across shards"
    );
    assert!(
        series_total(&lines, "tdh_refit_duration_us_count") >= 2.0,
        "refit histograms not merged across shards"
    );

    handle.shutdown();
}
