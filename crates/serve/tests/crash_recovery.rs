//! Crash-injection suite: a real child process serving over TCP is killed
//! with SIGKILL mid-stream, restarted, and must recover **every
//! acknowledged batch** and **no partial batch** — the WAL-before-ack
//! contract, pinned end-to-end through the network front.
//!
//! The child is this same test binary re-invoked with `--exact
//! child_server` and `TDH_CRASH_CHILD_DIR` set; in normal runs that test is
//! an immediate no-op.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tdh_core::TdhConfig;
use tdh_data::Dataset;
use tdh_hierarchy::HierarchyBuilder;
use tdh_serve::{serve_tcp, RefitPolicy, TruthServer};

/// The corpus both child generations agree on: 4×4 hierarchy, 20 objects,
/// three sources, 60 records.
const BASE_RECORDS: usize = 60;

fn corpus() -> Dataset {
    let mut b = HierarchyBuilder::new();
    for c in 0..4 {
        for t in 0..4 {
            b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
        }
    }
    let mut ds = Dataset::new(b.build());
    let good1 = ds.intern_source("good1");
    let good2 = ds.intern_source("good2");
    let liar = ds.intern_source("liar");
    for i in 0..20 {
        let o = ds.intern_object(&format!("o{i}"));
        let h = ds.hierarchy();
        let truth = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
        let wrong = h
            .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
            .unwrap();
        ds.set_gold(o, truth);
        ds.add_record(o, good1, truth);
        ds.add_record(o, good2, truth);
        ds.add_record(o, liar, wrong);
    }
    ds
}

/// The child half: create or recover a durable server under
/// `$TDH_CRASH_CHILD_DIR`, serve TCP on an ephemeral port, publish the
/// address atomically, and park until the parent kills us.
#[test]
fn child_server() {
    let Ok(dir) = std::env::var("TDH_CRASH_CHILD_DIR") else {
        return; // normal test run: nothing to do
    };
    let dir = PathBuf::from(dir);
    let server = if dir.join("snapshot.tdhsnap").exists() {
        TruthServer::open(&dir, RefitPolicy::EveryBatch).expect("child recovers")
    } else {
        TruthServer::create_durable(
            &dir,
            corpus(),
            TdhConfig::default(),
            RefitPolicy::EveryBatch,
        )
        .expect("child bootstraps")
    };
    let handle = serve_tcp(server, "127.0.0.1:0").expect("child listens");
    // tmp + rename so the parent can never read a half-written address.
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, handle.addr().to_string()).unwrap();
    std::fs::rename(&tmp, dir.join("addr")).unwrap();
    loop {
        std::thread::park();
    }
}

/// A spawned child generation; SIGKILLed on drop so a failing assert never
/// leaks a process.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_child(dir: &Path) -> ChildGuard {
    let _ = std::fs::remove_file(dir.join("addr"));
    let child = Command::new(std::env::current_exe().unwrap())
        .args(["child_server", "--exact", "--nocapture"])
        .env("TDH_CRASH_CHILD_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child server");
    ChildGuard(child)
}

fn wait_for_addr(dir: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(dir.join("addr")) {
            return addr;
        }
        assert!(
            Instant::now() < deadline,
            "child never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to child");
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line
}

/// One `INGEST` batch: three records establishing object `name`'s truth.
fn ingest_lines(name: &str, i: usize) -> String {
    let truth = format!("C{}T{}", i % 4, (i + 1) % 4);
    let wrong = format!("C{}T{}", (i + 2) % 4, (i + 1) % 4);
    format!(
        "INGEST\t3\nRECORD\t{name}\tgood1\t{truth}\nRECORD\t{name}\tgood2\t{truth}\n\
         RECORD\t{name}\tliar\t{wrong}\n"
    )
}

fn stats_field(json: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key).expect("stats field") + key.len()..];
    rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
}

#[test]
fn sigkill_loses_no_acked_batch_and_applies_no_partial_batch() {
    let dir = std::env::temp_dir().join(format!("tdh-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Generation 1: bootstrap, ingest acked batches, checkpoint midway.
    let child = spawn_child(&dir);
    let addr = wait_for_addr(&dir);
    let (mut stream, mut reader) = connect(&addr);
    let mut acked = Vec::new();
    for i in 0..8 {
        let name = format!("acked{i}");
        stream.write_all(ingest_lines(&name, i).as_bytes()).unwrap();
        let reply = read_line(&mut reader);
        assert!(
            reply.contains("\"appended_records\":3"),
            "ack, got: {reply}"
        );
        acked.push(name);
        if i == 3 {
            stream.write_all(b"CHECKPOINT\n").unwrap();
            let reply = read_line(&mut reader);
            assert!(reply.contains("\"ok\":true"), "checkpoint, got: {reply}");
        }
    }

    // Now the crash window: one complete batch whose ack we never read —
    // it may or may not land, but must land whole — then a half-shipped
    // batch that can never be acknowledged, then SIGKILL.
    stream
        .write_all(ingest_lines("unacked", 8).as_bytes())
        .unwrap();
    stream
        .write_all(b"INGEST\t3\nRECORD\tvictim\tgood1\tC0T1\nRECORD\tvictim\tgood2\tC0T1\n")
        .unwrap();
    stream.flush().unwrap();
    drop(child); // SIGKILL, mid-stream
    drop(stream);

    // Generation 2: recover from the same directory.
    let child = spawn_child(&dir);
    let addr = wait_for_addr(&dir);
    let (mut stream, mut reader) = connect(&addr);
    stream.write_all(b"STATS\n").unwrap();
    let stats = read_line(&mut reader);
    let records = stats_field(&stats, "records");

    // Every acked batch survived; whatever else survived is whole batches.
    assert!(
        records >= (BASE_RECORDS + 3 * acked.len()) as u64,
        "acked claims lost: {records} records after recovery ({stats})"
    );
    assert_eq!(
        (records - BASE_RECORDS as u64) % 3,
        0,
        "a batch half-applied: {records} records is not the base plus whole \
         batches of 3 ({stats})"
    );
    for name in &acked {
        stream
            .write_all(format!("TRUTH\t{name}\n").as_bytes())
            .unwrap();
        let reply = read_line(&mut reader);
        assert!(
            !reply.contains("\"truth\":null"),
            "acked object {name} lost its truth: {reply}"
        );
    }
    // The half-shipped batch must have vanished entirely.
    stream.write_all(b"TRUTH\tvictim\n").unwrap();
    let reply = read_line(&mut reader);
    assert!(
        reply.contains("\"truth\":null"),
        "partial batch leaked into the recovered state: {reply}"
    );

    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}
