//! Recovery contract suite: a durable server reopened from its data
//! directory reproduces the uninterrupted server **bit-for-bit** (Manual
//! policy twins), replay is *quiet* — it never re-triggers the refit policy
//! or publishes intermediate states — checkpoints compact the WAL without
//! losing uncovered batches, a torn WAL tail is repaired rather than fatal,
//! and v1 snapshots still serve as recovery bases.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use tdh_core::TdhConfig;
use tdh_data::Dataset;
use tdh_hierarchy::HierarchyBuilder;
use tdh_serve::{Claim, DurableError, RefitPolicy, TruthServer, WalOptions};

static DIR_ID: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tdh-recovery-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The standard serving corpus: 4×4 hierarchy, 20 gold-labelled objects,
/// two honest sources and one liar (60 records).
fn corpus() -> Dataset {
    let mut b = HierarchyBuilder::new();
    for c in 0..4 {
        for t in 0..4 {
            b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
        }
    }
    let mut ds = Dataset::new(b.build());
    let good1 = ds.intern_source("good1");
    let good2 = ds.intern_source("good2");
    let liar = ds.intern_source("liar");
    for i in 0..20 {
        let o = ds.intern_object(&format!("o{i}"));
        let h = ds.hierarchy();
        let truth = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
        let wrong = h
            .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
            .unwrap();
        ds.set_gold(o, truth);
        ds.add_record(o, good1, truth);
        ds.add_record(o, good2, truth);
        ds.add_record(o, liar, wrong);
    }
    ds
}

fn record(object: &str, source: &str, value: &str) -> Claim {
    Claim::Record {
        object: object.into(),
        source: source.into(),
        value: value.into(),
    }
}

fn answer(object: &str, worker: &str, value: &str) -> Claim {
    Claim::Answer {
        object: object.into(),
        worker: worker.into(),
        value: value.into(),
    }
}

/// `i`-th follow-up batch: three records and an answer for a fresh object.
fn batch(i: usize) -> Vec<Claim> {
    let name = format!("new{i}");
    let truth = format!("C{}T{}", i % 4, (i + 1) % 4);
    let wrong = format!("C{}T{}", (i + 2) % 4, (i + 1) % 4);
    vec![
        record(&name, "good1", &truth),
        record(&name, "good2", &truth),
        record(&name, "liar", &wrong),
        answer(&name, "w0", &truth),
    ]
}

#[test]
fn replay_is_quiet_one_refit_one_publication() {
    let dir = fresh_dir();
    let mut server = TruthServer::create_durable(
        &dir,
        corpus(),
        TdhConfig::default(),
        RefitPolicy::EveryBatch,
    )
    .unwrap();
    let mut claims = 0;
    for i in 0..3 {
        let b = batch(i);
        claims += b.len();
        let report = server.ingest(&b).unwrap();
        assert!(report.refit.is_some(), "EveryBatch refits live");
        assert!(report.wal.is_some(), "durable ingest reports WAL time");
    }
    drop(server);

    let server = TruthServer::open(&dir, RefitPolicy::EveryBatch).unwrap();
    let rec = server.recovery().expect("opened servers report recovery");
    assert_eq!(rec.snapshot_wal_seq, 0, "initial checkpoint covers nothing");
    assert_eq!(rec.replayed_batches, 3);
    assert_eq!(rec.replayed_claims, claims);
    assert!(rec.refit.is_some(), "replay folds in with one warm refit");

    // Replay must NOT re-run the EveryBatch policy per batch: exactly one
    // refit and one post-restore publication, regardless of batch count.
    let stats = server.stats();
    assert_eq!(stats.batches, 3, "replayed batches are counted");
    assert_eq!(stats.refits, 1, "one refit total, not one per batch");
    assert_eq!(stats.publications, 2, "restore + final fold only");
    assert_eq!(server.state().version(), 2);
    assert_eq!(stats.pending_claims, 0);
    for i in 0..3 {
        assert!(
            server.truth(&format!("new{i}")).is_some(),
            "acked object new{i} must survive recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_state_is_bitwise_identical_to_uninterrupted() {
    // Manual-policy twins: the uninterrupted server cold-fits, ingests two
    // batches, then refits once. The recovered server replays the same two
    // batches onto the same checkpoint and refits once. Fits are
    // deterministic, so every table must match to the last bit.
    let dir = fresh_dir();
    let cfg = TdhConfig::default();

    let mut live = TruthServer::new(corpus(), cfg.clone(), RefitPolicy::Manual);
    let mut durable =
        TruthServer::create_durable(&dir, corpus(), cfg, RefitPolicy::Manual).unwrap();
    for i in 0..2 {
        live.ingest(&batch(i)).unwrap();
        durable.ingest(&batch(i)).unwrap();
    }
    live.refit_now();
    drop(durable); // crash before any manual refit or checkpoint

    let recovered = TruthServer::open(&dir, RefitPolicy::Manual).unwrap();
    assert_eq!(recovered.recovery().unwrap().replayed_batches, 2);

    assert_eq!(
        live.model().phi_table(),
        recovered.model().phi_table(),
        "φ must be bit-identical"
    );
    assert_eq!(
        live.model().psi_table(),
        recovered.model().psi_table(),
        "ψ must be bit-identical"
    );
    assert_eq!(
        live.model().mu_table(),
        recovered.model().mu_table(),
        "μ must be bit-identical"
    );
    for i in 0..20 {
        let name = format!("o{i}");
        let (a, b) = (live.truth(&name).unwrap(), recovered.truth(&name).unwrap());
        assert_eq!(a.value, b.value, "truth of {name}");
        assert_eq!(a.confidence, b.confidence, "confidence of {name}");
    }
    assert_eq!(live.top_uncertain(5), recovered.top_uncertain(5));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_and_later_batches_replay() {
    let dir = fresh_dir();
    let mut server = TruthServer::new(
        corpus(),
        TdhConfig::default(),
        RefitPolicy::ClaimThreshold(1000),
    );
    // Tiny segments force one rotation roughly per batch, so a checkpoint
    // has whole segments to drop.
    server
        .attach_durability_with(
            &dir,
            WalOptions {
                segment_bytes: 256,
                fsync: false,
            },
        )
        .unwrap();
    for i in 0..6 {
        server.ingest(&batch(i)).unwrap();
    }
    let report = server.checkpoint().unwrap();
    assert_eq!(report.wal_seq, 6, "checkpoint covers every acked batch");
    assert!(report.segments_dropped >= 1, "covered segments are dropped");
    assert!(report.snapshot_bytes > 0);

    // Everything is in the snapshot now: a reopen replays nothing...
    drop(server);
    let mut server = TruthServer::open_with(
        &dir,
        RefitPolicy::ClaimThreshold(1000),
        WalOptions {
            segment_bytes: 256,
            fsync: false,
        },
    )
    .unwrap();
    assert_eq!(server.recovery().unwrap().replayed_batches, 0);
    assert!(
        server.recovery().unwrap().refit.is_none(),
        "nothing to fold"
    );
    assert_eq!(server.recovery().unwrap().snapshot_wal_seq, 6);

    // ...and batches acked after the checkpoint replay from the tail.
    server.ingest(&batch(6)).unwrap();
    server.ingest(&batch(7)).unwrap();
    drop(server);
    let server = TruthServer::open(&dir, RefitPolicy::ClaimThreshold(1000)).unwrap();
    assert_eq!(server.recovery().unwrap().replayed_batches, 2);
    assert!(server.truth("new7").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_recovers_the_acked_prefix() {
    let dir = fresh_dir();
    let mut server =
        TruthServer::create_durable(&dir, corpus(), TdhConfig::default(), RefitPolicy::Manual)
            .unwrap();
    for i in 0..3 {
        server.ingest(&batch(i)).unwrap();
    }
    drop(server);

    // Simulate a crash mid-append: chop bytes off the last WAL segment and
    // smear garbage after it. The torn record must be discarded, the acked
    // prefix must survive, and recovery must not error.
    let wal_dir = dir.join("wal");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let data = std::fs::read(last).unwrap();
    std::fs::write(last, &data[..data.len() - 5]).unwrap();

    let server = TruthServer::open(&dir, RefitPolicy::Manual).unwrap();
    let rec = server.recovery().unwrap();
    assert_eq!(rec.replayed_batches, 2, "the torn third batch is dropped");
    assert!(server.truth("new0").is_some());
    assert!(server.truth("new1").is_some());
    assert!(
        server.truth("new2").is_none(),
        "the torn batch must not half-apply"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_snapshot_is_a_valid_recovery_base() {
    let dir = fresh_dir();
    let mut server =
        TruthServer::create_durable(&dir, corpus(), TdhConfig::default(), RefitPolicy::Manual)
            .unwrap();
    server.ingest(&batch(0)).unwrap();
    server.checkpoint().unwrap(); // folds the batch in and empties the WAL
    let snap = server.snapshot();
    drop(server);

    // An operator restoring from an old text snapshot: same state, but the
    // v1 format has no WAL watermark, so it reads back as zero.
    std::fs::write(dir.join("snapshot.tdhsnap"), snap.encode()).unwrap();
    let server = TruthServer::open(&dir, RefitPolicy::Manual).unwrap();
    assert_eq!(server.recovery().unwrap().snapshot_wal_seq, 0);
    assert_eq!(server.recovery().unwrap().replayed_batches, 0);
    assert!(
        server.truth("new0").is_some(),
        "state came from the snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_reports_wal_time_only_when_durable() {
    let dir = fresh_dir();
    let mut plain = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::Manual);
    assert!(!plain.is_durable());
    assert!(plain.ingest(&batch(0)).unwrap().wal.is_none());

    plain.attach_durability(&dir).unwrap();
    assert!(plain.is_durable());
    assert!(plain.ingest(&batch(1)).unwrap().wal.is_some());
    // An empty batch appends nothing and therefore logs nothing.
    assert!(plain.ingest(&[]).unwrap().wal.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_error_cases() {
    let dir = fresh_dir();
    match TruthServer::open(&dir, RefitPolicy::Manual) {
        Err(DurableError::NoSnapshot) => {}
        other => panic!("open on an empty dir must be NoSnapshot, got {other:?}"),
    }

    let mut server =
        TruthServer::create_durable(&dir, corpus(), TdhConfig::default(), RefitPolicy::Manual)
            .unwrap();
    match server.attach_durability(&fresh_dir()) {
        Err(DurableError::AlreadyInitialized) => {}
        other => panic!("double attach must fail, got {other:?}"),
    }
    drop(server);

    // A directory holding a previous server's state must be opened, not
    // shadowed by a new attach.
    let mut other = TruthServer::new(corpus(), TdhConfig::default(), RefitPolicy::Manual);
    match other.attach_durability(&dir) {
        Err(DurableError::AlreadyInitialized) => {}
        other => panic!("attach over an initialized dir must fail, got {other:?}"),
    }
    assert!(!other.is_durable(), "failed attach leaves the server plain");
    let _ = std::fs::remove_dir_all(&dir);
}
