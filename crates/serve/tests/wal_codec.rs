//! Property suite: the segmented WAL codec — append → reopen replays every
//! batch **exactly** (hostile entity names, empty batches, forced segment
//! rotation), and damage behaves by contract: a torn tail yields a clean
//! prefix of the acknowledged batches (with the file repaired for further
//! appends), a flipped byte yields an error or a prefix — **never** a
//! panic, and never a silently different batch.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use tdh_serve::{Claim, Wal, WalOptions};

static DIR_ID: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per test case (proptest cases run many times
/// per process, and the 1/4-thread CI legs run cases concurrently).
fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tdh-walcodec-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Hostile name pool: empty strings, tabs/newlines, backslashes, unicode,
/// and a long name — everything the length-prefixed codec must not choke on.
fn name(i: usize) -> String {
    const POOL: &[&str] = &[
        "",
        "plain",
        "with\ttab",
        "with\nnewline",
        "back\\slash",
        "ναός\u{1F3DB}",
        "crc crc crc",
        "0123456789",
    ];
    if i % (POOL.len() + 1) == POOL.len() {
        "x".repeat(300) + &i.to_string()
    } else {
        POOL[i % (POOL.len() + 1)].to_string()
    }
}

fn claim((kind, o, s, v): (usize, usize, usize, usize)) -> Claim {
    if kind % 2 == 0 {
        Claim::Record {
            object: name(o),
            source: name(s),
            value: name(v),
        }
    } else {
        Claim::Answer {
            object: name(o),
            worker: name(s),
            value: name(v),
        }
    }
}

fn write_batches(dir: &PathBuf, batches: &[Vec<Claim>], segment_bytes: u64) {
    let opts = WalOptions {
        segment_bytes,
        fsync: false,
    };
    let (mut wal, replayed) = Wal::open(dir, opts).expect("open fresh");
    assert!(replayed.is_empty());
    for (i, b) in batches.iter().enumerate() {
        assert_eq!(wal.append(b).expect("append"), i as u64 + 1);
    }
}

fn reopen(dir: &PathBuf) -> Result<(Wal, Vec<tdh_serve::WalBatch>), tdh_serve::WalError> {
    Wal::open(
        dir,
        WalOptions {
            segment_bytes: 1 << 20,
            fsync: false,
        },
    )
}

/// The WAL's segment files, oldest first.
fn segment_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("wal dir")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn roundtrip_replays_every_batch(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..2, 0usize..100, 0usize..100, 0usize..100), 0..6),
            0..10),
        tiny_segments in 0usize..2,
    ) {
        let dir = fresh_dir();
        let batches: Vec<Vec<Claim>> =
            raw.iter().map(|b| b.iter().map(|&c| claim(c)).collect()).collect();
        // 96-byte segments force rotation mid-stream; large ones keep one file.
        write_batches(&dir, &batches, if tiny_segments == 1 { 96 } else { 1 << 20 });

        let (wal, replayed) = reopen(&dir).expect("clean log reopens");
        prop_assert_eq!(wal.next_seq(), batches.len() as u64 + 1);
        prop_assert_eq!(replayed.len(), batches.len());
        for (i, (got, want)) in replayed.iter().zip(&batches).enumerate() {
            prop_assert_eq!(got.seq, i as u64 + 1);
            prop_assert_eq!(&got.claims, want, "batch {}", i);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_yields_a_clean_prefix(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..2, 0usize..50, 0usize..50, 0usize..50), 0..4),
            1..8),
        cut_ppm in 0u32..1_000_000,
    ) {
        let dir = fresh_dir();
        let batches: Vec<Vec<Claim>> =
            raw.iter().map(|b| b.iter().map(|&c| claim(c)).collect()).collect();
        write_batches(&dir, &batches, 1 << 20); // single segment

        // Tear the file at an arbitrary byte — every cut simulates a crash
        // at a different point of the final append.
        let seg = segment_files(&dir).pop().expect("one segment");
        let data = std::fs::read(&seg).unwrap();
        let cut = (data.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        std::fs::write(&seg, &data[..cut]).unwrap();

        let (mut wal, replayed) = reopen(&dir).expect("a torn tail is not an error");
        prop_assert!(replayed.len() <= batches.len());
        for (i, (got, want)) in replayed.iter().zip(&batches).enumerate() {
            prop_assert_eq!(got.seq, i as u64 + 1);
            prop_assert_eq!(&got.claims, want, "prefix batch {}", i);
        }

        // The repaired log accepts appends and stays consistent.
        let n = replayed.len();
        wal.append(&[claim((0, 1, 2, 3))]).expect("append after repair");
        drop(wal);
        let (_, replayed2) = reopen(&dir).expect("reopen after repair");
        prop_assert_eq!(replayed2.len(), n + 1);
        prop_assert_eq!(
            &replayed2[n].claims[..],
            &[claim((0, 1, 2, 3))][..]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_is_an_error_or_a_prefix_never_a_misparse(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..2, 0usize..50, 0usize..50, 0usize..50), 1..4),
            1..8),
        tiny_segments in 0usize..2,
        file_pick in 0usize..64,
        byte_pick in 0usize..10_000,
        mask in 1usize..256,
    ) {
        let dir = fresh_dir();
        let batches: Vec<Vec<Claim>> =
            raw.iter().map(|b| b.iter().map(|&c| claim(c)).collect()).collect();
        write_batches(&dir, &batches, if tiny_segments == 1 { 96 } else { 1 << 20 });

        let files = segment_files(&dir);
        let victim = &files[file_pick % files.len()];
        let mut data = std::fs::read(victim).unwrap();
        if data.is_empty() {
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        }
        let at = byte_pick % data.len();
        data[at] ^= mask as u8;
        std::fs::write(victim, &data).unwrap();

        // Contract: corruption before the tail errors; tail corruption
        // truncates to a prefix. Under no draw may a batch decode to
        // something other than what was appended.
        if let Ok((_, replayed)) = reopen(&dir) {
            prop_assert!(replayed.len() <= batches.len());
            for (i, (got, want)) in replayed.iter().zip(&batches).enumerate() {
                prop_assert_eq!(got.seq, i as u64 + 1);
                prop_assert_eq!(&got.claims, want, "surviving batch {}", i);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn compaction_respects_partially_covered_segments() {
    let dir = fresh_dir();
    let opts = WalOptions {
        segment_bytes: 128,
        fsync: false,
    };
    let (mut wal, _) = Wal::open(&dir, opts).unwrap();
    for i in 0..12 {
        wal.append(&[claim((0, i, i + 1, i + 2))]).unwrap();
    }
    let n_files = wal.n_segments();
    assert!(n_files > 2, "tiny segments must rotate ({n_files} files)");

    // Covering seq 5 drops only segments whose batches are ALL ≤ 5.
    wal.truncate_covered(5).unwrap();
    drop(wal);
    let (mut wal, replayed) = Wal::open(&dir, opts).unwrap();
    assert!(replayed.iter().any(|b| b.seq == 12), "tail intact");
    assert!(
        replayed.first().unwrap().seq <= 6,
        "the first uncovered batch (6) must survive compaction"
    );
    for w in replayed.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1, "replay is contiguous");
    }

    // Covering everything empties the log but preserves the sequence.
    wal.truncate_covered(12).unwrap();
    assert_eq!(wal.n_segments(), 1);
    drop(wal);
    let (wal, replayed) = Wal::open(&dir, opts).unwrap();
    assert!(replayed.is_empty());
    assert_eq!(wal.next_seq(), 13);
    let _ = std::fs::remove_dir_all(&dir);
}
