//! Sharded-equivalence suite (ISSUE 8 acceptance): for a fixed corpus,
//! router-mediated `TRUTH`/`TOPK` answers over N ∈ {1, 2, 4} shards match
//! a single unsharded [`TruthServer`] — exactly at N = 1 (partitioning
//! into one shard is the identity), and modulo the documented per-shard
//! fit independence above that: truth *values* agree everywhere, and the
//! uncertainty ranking agrees at the tier level (the contested objects
//! outrank the unanimous ones on every shard count, under the shared
//! total order that makes the k-way merge deterministic).

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use tdh_core::TdhConfig;
use tdh_data::Dataset;
use tdh_hierarchy::HierarchyBuilder;
use tdh_serve::{serve_router_with, Collections, RefitPolicy, Router, ShardedServer, TruthServer};

const N_OBJECTS: usize = 24;

/// Two uncertainty tiers by construction: objects with index divisible by
/// 3 get a dissenting claim (2 good sources vs 1 liar — resolvable but
/// uncertain), the rest are unanimous (3 good sources). Truth decisions
/// are majority-robust, so they must survive any partitioning; the
/// contested tier must outrank the unanimous tier in every `TOPK`.
fn corpus() -> Dataset {
    let mut b = HierarchyBuilder::new();
    for c in 0..4 {
        for t in 0..4 {
            b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
        }
    }
    let mut ds = Dataset::new(b.build());
    let good1 = ds.intern_source("good1");
    let good2 = ds.intern_source("good2");
    let third = ds.intern_source("third");
    for i in 0..N_OBJECTS {
        let o = ds.intern_object(&format!("eq-obj-{i}"));
        let h = ds.hierarchy();
        let truth = h
            .node_by_name(&format!("C{}T{}", i % 4, (i / 4) % 4))
            .unwrap();
        let decoy = h
            .node_by_name(&format!("C{}T{}", (i + 1) % 4, (i / 4) % 4))
            .unwrap();
        ds.add_record(o, good1, truth);
        ds.add_record(o, good2, truth);
        if i % 3 == 0 {
            ds.add_record(o, third, decoy); // contested tier
        } else {
            ds.add_record(o, third, truth); // unanimous tier
        }
    }
    ds
}

fn contested() -> BTreeSet<String> {
    (0..N_OBJECTS)
        .filter(|i| i % 3 == 0)
        .map(|i| format!("eq-obj-{i}"))
        .collect()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim().to_string()
    }
}

/// `"truth":"<value>"` out of a TRUTH reply (or None for `"truth":null`).
fn truth_value(reply: &str) -> Option<String> {
    let key = "\"truth\":\"";
    let start = reply.find(key)? + key.len();
    Some(reply[start..start + reply[start..].find('"')?].to_string())
}

/// The object names of a TOPK reply, in rank order.
fn topk_objects(reply: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = reply;
    while let Some(p) = rest.find("\"object\":\"") {
        rest = &rest[p + "\"object\":\"".len()..];
        let end = rest.find('"').unwrap();
        out.push(rest[..end].to_string());
        rest = &rest[end..];
    }
    out
}

#[test]
fn router_answers_match_the_unsharded_server() {
    let ds = corpus();
    let single = TruthServer::new(ds.clone(), TdhConfig::default(), RefitPolicy::Manual);
    let single_topk = single.top_uncertain(N_OBJECTS);
    let n_contested = contested().len();

    // The construction must actually produce two tiers on the reference.
    let single_top_set: BTreeSet<String> = single_topk[..n_contested]
        .iter()
        .map(|(o, _)| o.clone())
        .collect();
    assert_eq!(
        single_top_set,
        contested(),
        "reference server must rank the contested tier first"
    );

    for n in [1usize, 2, 4] {
        let sharded = ShardedServer::new(ds.clone(), TdhConfig::default(), RefitPolicy::Manual, n);
        let collections = Collections::new();
        collections.insert("main", sharded).expect("register");
        let handle = serve_router_with(
            Router::new(collections).with_default("main"),
            "127.0.0.1:0",
            2,
        )
        .expect("bind");
        let mut c = Client::connect(handle.addr());

        // TRUTH: every object answers with the same value as the single
        // server, at every shard count.
        for o in ds.objects() {
            let name = ds.object_name(o);
            let reply = c.send(&format!("TRUTH\t{name}"));
            let got = truth_value(&reply);
            let want = single.truth(name).map(|t| t.value);
            assert_eq!(got, want, "TRUTH {name:?} diverged at {n} shards: {reply}");
        }

        // TOPK: the contested tier fills the top ranks on every shard
        // count (tier-level agreement — per-shard fits are independent,
        // so *within*-tier float order is only pinned at N = 1).
        let top = c.send(&format!("TOPK\t{n_contested}"));
        let got: BTreeSet<String> = topk_objects(&top).into_iter().collect();
        assert_eq!(
            got,
            contested(),
            "TOPK tier membership diverged at {n} shards: {top}"
        );

        if n == 1 {
            // One shard is the identity partition: the full ranking —
            // names, order and scores — must be byte-identical to the
            // unsharded server's.
            let full = c.send(&format!("TOPK\t{N_OBJECTS}"));
            let got_order = topk_objects(&full);
            let want_order: Vec<String> = single_topk.iter().map(|(o, _)| o.clone()).collect();
            assert_eq!(got_order, want_order, "N=1 full ranking must be exact");
        }

        // STATS totals match the unsharded dataset (objects partition).
        let stats = c.send("STATS");
        assert!(stats.contains(&format!("\"shards\":{n}")), "{stats}");
        assert!(
            stats.contains(&format!("\"objects\":{N_OBJECTS}")),
            "{stats}"
        );
        assert!(
            stats.contains(&format!("\"records\":{}", ds.records().len())),
            "{stats}"
        );
        handle.shutdown();
    }
}

#[test]
fn merged_ranking_is_deterministic_across_repeats() {
    // The k-way merge must be a pure function of the published states:
    // repeated fits of the same corpus produce the same merged ranking
    // (this is what the total tie-break — uncertainty, then object name —
    // buys; interning order differs per shard and must not leak in).
    let ds = corpus();
    let rank = |n: usize| -> Vec<String> {
        let sharded = ShardedServer::new(ds.clone(), TdhConfig::default(), RefitPolicy::Manual, n);
        sharded
            .top_uncertain(N_OBJECTS)
            .into_iter()
            .map(|(o, _)| o)
            .collect()
    };
    for n in [2usize, 4] {
        assert_eq!(
            rank(n),
            rank(n),
            "ranking must repeat exactly at {n} shards"
        );
    }
}
