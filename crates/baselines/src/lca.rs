//! LCA — Latent Credibility Analysis (Pasternack & Roth, WWW 2013).
//!
//! We implement **GuessLCA**, the best performer among the paper's seven LCA
//! variants and the one the TDH paper compares against: each source `s` has
//! an *honesty* parameter `θ_s`; with probability `θ_s` it asserts the
//! truth, otherwise it *guesses* according to the per-object claim
//! popularity. Workers are modelled identically (their answers are just
//! late-arriving claims), which is what lets LCA pair with QASCA and ME.
//!
//! EM: the E-step computes `μ_o(t) ∝ prior · Π_s P(c_s | t)` with
//! `P(c|t) = θ_s·1[c=t] + (1−θ_s)·g_o(c)`; the M-step sets `θ_s` to the
//! expected fraction of the source's claims that were honest assertions.

use tdh_core::{ProbabilisticCrowdModel, TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObjectId, ObservationIndex, SourceId, WorkerId};

use crate::common::{normalize, truths_from_confidences};

/// Configuration for [`Lca`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcaConfig {
    /// EM iterations.
    pub max_iters: usize,
    /// Initial honesty for sources and workers.
    pub initial_honesty: f64,
    /// Beta-style smoothing mass pulling honesty toward the initial value.
    pub smoothing: f64,
}

impl Default for LcaConfig {
    fn default() -> Self {
        LcaConfig {
            max_iters: 30,
            initial_honesty: 0.7,
            smoothing: 2.0,
        }
    }
}

/// The GuessLCA model.
#[derive(Debug, Clone)]
pub struct Lca {
    cfg: LcaConfig,
    /// Honesty per source.
    theta_s: Vec<f64>,
    /// Honesty per worker.
    theta_w: Vec<f64>,
    confidences: Vec<Vec<f64>>,
}

impl Lca {
    /// GuessLCA with the given configuration.
    pub fn new(cfg: LcaConfig) -> Self {
        Lca {
            cfg,
            theta_s: Vec::new(),
            theta_w: Vec::new(),
            confidences: Vec::new(),
        }
    }

    /// Estimated honesty of a source, after fitting.
    pub fn source_honesty(&self, s: SourceId) -> f64 {
        self.theta_s[s.index()]
    }

    /// The guess distribution `g_o(·)`: per-object claim popularity
    /// (records and answers), Laplace-smoothed.
    fn guess(view: &tdh_data::ObjectView) -> Vec<f64> {
        let mut g: Vec<f64> = (0..view.n_candidates())
            .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 1.0)
            .collect();
        normalize(&mut g);
        g
    }

    fn claim_likelihood(theta: f64, guess_c: f64, c: u32, t: u32) -> f64 {
        let honest = if c == t { theta } else { 0.0 };
        honest + (1.0 - theta) * guess_c
    }
}

impl Default for Lca {
    fn default() -> Self {
        Lca::new(LcaConfig::default())
    }
}

impl TruthDiscovery for Lca {
    fn name(&self) -> &'static str {
        "LCA"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let n_workers = ds.n_workers().max(idx.n_workers());
        self.theta_s = vec![self.cfg.initial_honesty; ds.n_sources()];
        self.theta_w = vec![self.cfg.initial_honesty; n_workers];
        let guesses: Vec<Vec<f64>> = idx.views().iter().map(Lca::guess).collect();
        self.confidences = guesses.clone();

        for _ in 0..self.cfg.max_iters {
            // E-step: posterior over truths per object.
            for (oi, view) in idx.views().iter().enumerate() {
                let k = view.n_candidates();
                if k == 0 {
                    continue;
                }
                let g = &guesses[oi];
                let mut post = vec![1.0f64; k];
                for &(s, c) in &view.sources {
                    let theta = self.theta_s[s.index()];
                    for (t, p) in post.iter_mut().enumerate() {
                        *p *= Lca::claim_likelihood(theta, g[c as usize], c, t as u32);
                    }
                }
                for &(w, c) in &view.workers {
                    let theta = self.theta_w[w.index()];
                    for (t, p) in post.iter_mut().enumerate() {
                        *p *= Lca::claim_likelihood(theta, g[c as usize], c, t as u32);
                    }
                }
                normalize(&mut post);
                self.confidences[oi] = post;
            }

            // M-step: honesty = expected honest-assertion fraction.
            let mut num_s = vec![0.0f64; self.theta_s.len()];
            let mut den_s = vec![0.0f64; self.theta_s.len()];
            let mut num_w = vec![0.0f64; self.theta_w.len()];
            let mut den_w = vec![0.0f64; self.theta_w.len()];
            for (oi, view) in idx.views().iter().enumerate() {
                let g = &guesses[oi];
                let mu = &self.confidences[oi];
                for &(s, c) in &view.sources {
                    let theta = self.theta_s[s.index()];
                    // P(honest | claim, truth=c) ... marginalised over truth:
                    // honest only consistent with t = c.
                    let lik_c = Lca::claim_likelihood(theta, g[c as usize], c, c);
                    let resp = if lik_c > 0.0 {
                        mu[c as usize] * theta / lik_c
                    } else {
                        0.0
                    };
                    num_s[s.index()] += resp;
                    den_s[s.index()] += 1.0;
                }
                for &(w, c) in &view.workers {
                    let theta = self.theta_w[w.index()];
                    let lik_c = Lca::claim_likelihood(theta, g[c as usize], c, c);
                    let resp = if lik_c > 0.0 {
                        mu[c as usize] * theta / lik_c
                    } else {
                        0.0
                    };
                    num_w[w.index()] += resp;
                    den_w[w.index()] += 1.0;
                }
            }
            let s0 = self.cfg.smoothing;
            let h0 = self.cfg.initial_honesty;
            for i in 0..self.theta_s.len() {
                self.theta_s[i] = ((num_s[i] + s0 * h0) / (den_s[i] + s0)).clamp(0.01, 0.99);
            }
            for i in 0..self.theta_w.len() {
                self.theta_w[i] = ((num_w[i] + s0 * h0) / (den_w[i] + s0)).clamp(0.01, 0.99);
            }
        }

        TruthEstimate {
            truths: truths_from_confidences(idx, &self.confidences),
            confidences: self.confidences.clone(),
        }
    }
}

impl ProbabilisticCrowdModel for Lca {
    fn confidence(&self, o: ObjectId) -> &[f64] {
        &self.confidences[o.index()]
    }

    fn worker_exact_prob(&self, w: WorkerId) -> f64 {
        self.theta_w
            .get(w.index())
            .copied()
            .unwrap_or(self.cfg.initial_honesty)
    }

    fn answer_likelihood(&self, idx: &ObservationIndex, o: ObjectId, w: WorkerId, c: u32) -> f64 {
        let view = idx.view(o);
        let g = Lca::guess(view);
        let theta = self.worker_exact_prob(w);
        let mu = &self.confidences[o.index()];
        (0..view.n_candidates())
            .map(|t| Lca::claim_likelihood(theta, g[c as usize], c, t as u32) * mu[t])
            .sum()
    }

    fn posterior_given_answer(
        &self,
        idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
        c: u32,
    ) -> Vec<f64> {
        let view = idx.view(o);
        let g = Lca::guess(view);
        let theta = self.worker_exact_prob(w);
        let mu = &self.confidences[o.index()];
        let mut post: Vec<f64> = (0..view.n_candidates())
            .map(|t| Lca::claim_likelihood(theta, g[c as usize], c, t as u32) * mu[t])
            .collect();
        normalize(&mut post);
        post
    }

    fn evidence_weight(&self, o: ObjectId) -> f64 {
        self.confidences[o.index()].len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let liar = ds.intern_source("liar");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, good1, t);
            ds.add_record(o, good2, t);
            ds.add_record(o, liar, f);
        }
        ds
    }

    #[test]
    fn recovers_truths_and_honesty_ordering() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut lca = Lca::default();
        let est = lca.infer(&ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
        assert!(lca.source_honesty(SourceId(0)) > lca.source_honesty(SourceId(2)));
    }

    #[test]
    fn confidences_are_distributions() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = Lca::default().infer(&ds, &idx);
        for mu in &est.confidences {
            if !mu.is_empty() {
                assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn worker_answers_raise_worker_honesty() {
        let mut ds = corpus();
        let w_good = ds.intern_worker("good");
        let w_bad = ds.intern_worker("bad");
        for i in 0..24u32 {
            let o = ObjectId(i);
            let t = ds.gold(o).unwrap();
            ds.add_answer(o, w_good, t);
        }
        // The bad worker answers a handful of objects with the liar's value.
        for i in 0..6u32 {
            let o = ObjectId(i);
            let idx = ObservationIndex::build(&ds);
            let t = ds.gold(o).unwrap();
            let wrong = idx
                .view(o)
                .candidates
                .iter()
                .copied()
                .find(|&v| v != t)
                .unwrap();
            ds.add_answer(o, w_bad, wrong);
        }
        let idx = ObservationIndex::build(&ds);
        let mut lca = Lca::default();
        lca.infer(&ds, &idx);
        assert!(lca.worker_exact_prob(w_good) > lca.worker_exact_prob(w_bad));
    }

    #[test]
    fn crowd_model_likelihoods_normalise() {
        let mut ds = corpus();
        let w = ds.intern_worker("w");
        let idx = ObservationIndex::build(&ds);
        let mut lca = Lca::default();
        lca.infer(&ds, &idx);
        let o = ObjectId(0);
        let k = idx.view(o).n_candidates();
        let total: f64 = (0..k as u32)
            .map(|c| lca.answer_likelihood(&idx, o, w, c))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
