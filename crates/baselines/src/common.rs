//! Shared numerics for the baseline algorithms.

use tdh_data::{ObservationIndex, WorkerId};
use tdh_hierarchy::NodeId;

/// Normalise `xs` in place to sum to 1; uniform fallback when the mass is 0.
pub fn normalize(xs: &mut [f64]) {
    let s: f64 = xs.iter().sum();
    if s > 0.0 {
        for x in xs.iter_mut() {
            *x /= s;
        }
    } else if !xs.is_empty() {
        let u = 1.0 / xs.len() as f64;
        for x in xs.iter_mut() {
            *x = u;
        }
    }
}

/// Shannon entropy (nats) of a distribution; 0 for empty input.
pub fn entropy(xs: &[f64]) -> f64 {
    -xs.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.ln())
        .sum::<f64>()
}

/// Index of the maximum (first on ties).
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if best.map_or(true, |(_, b)| x > b) {
            best = Some((i, x));
        }
    }
    best.map(|(i, _)| i)
}

/// Truths (as hierarchy nodes) from per-object confidences.
pub fn truths_from_confidences(
    idx: &ObservationIndex,
    confidences: &[Vec<f64>],
) -> Vec<Option<NodeId>> {
    confidences
        .iter()
        .enumerate()
        .map(|(o, mu)| {
            argmax(mu).map(|i| idx.view(tdh_data::ObjectId::from_index(o)).candidates[i])
        })
        .collect()
}

/// A simple per-worker accuracy model shared by the baselines that need one
/// (QASCA-style assignment on top of models that do not natively model
/// workers): `q_w` is the Laplace-smoothed fraction of the worker's answers
/// that agree with the current truth estimates.
#[derive(Debug, Clone, Default)]
pub struct WorkerAccuracy {
    q: Vec<f64>,
}

impl WorkerAccuracy {
    /// Prior accuracy for workers with no answers yet.
    pub const PRIOR: f64 = 0.7;

    /// Estimate per-worker accuracies from agreement with `truths`.
    pub fn estimate(idx: &ObservationIndex, truths: &[Option<NodeId>]) -> Self {
        let mut q = Vec::with_capacity(idx.n_workers());
        for wi in 0..idx.n_workers() {
            let w = WorkerId::from_index(wi);
            let mut agree = 0.0;
            let mut total = 0.0;
            for &(o, c) in idx.objects_of_worker(w) {
                let view = idx.view(o);
                if let Some(t) = truths[o.index()] {
                    total += 1.0;
                    if view.candidates[c as usize] == t {
                        agree += 1.0;
                    }
                }
            }
            // Laplace smoothing toward the prior.
            q.push((agree + 2.0 * Self::PRIOR) / (total + 2.0));
        }
        WorkerAccuracy { q }
    }

    /// Estimated accuracy of `w`.
    pub fn accuracy(&self, w: WorkerId) -> f64 {
        self.q.get(w.index()).copied().unwrap_or(Self::PRIOR)
    }

    /// `P(answer = c | truth = t)` under the symmetric-error worker model
    /// with `k` candidates.
    pub fn likelihood(&self, w: WorkerId, k: usize, c: u32, t: u32) -> f64 {
        let q = self.accuracy(w);
        if c == t {
            q
        } else if k > 1 {
            (1.0 - q) / (k - 1) as f64
        } else {
            0.0
        }
    }
}

/// One Bayes update: posterior over truths after observing answer `c` from a
/// symmetric-error worker. This is the (cheap, record-count-blind) posterior
/// QASCA uses, as opposed to TDH's incremental EM.
pub fn bayes_posterior(mu: &[f64], worker: &WorkerAccuracy, w: WorkerId, c: u32) -> Vec<f64> {
    let k = mu.len();
    let mut post: Vec<f64> = (0..k as u32)
        .map(|t| mu[t as usize] * worker.likelihood(w, k, c, t))
        .collect();
    normalize(&mut post);
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::Dataset;
    use tdh_hierarchy::HierarchyBuilder;

    #[test]
    fn normalize_and_entropy() {
        let mut xs = vec![2.0, 2.0];
        normalize(&mut xs);
        assert_eq!(xs, vec![0.5, 0.5]);
        assert!((entropy(&xs) - (2.0f64).ln()).abs() < 1e-12);
        let mut zeros = vec![0.0, 0.0, 0.0, 0.0];
        normalize(&mut zeros);
        assert_eq!(zeros, vec![0.25; 4]);
        assert_eq!(entropy(&[1.0]), 0.0);
    }

    #[test]
    fn worker_accuracy_estimation() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        b.add_path(&["X", "B"]);
        let mut ds = Dataset::new(b.build());
        let a = ds.hierarchy().node_by_name("A").unwrap();
        let bb = ds.hierarchy().node_by_name("B").unwrap();
        let s = ds.intern_source("s");
        let s2 = ds.intern_source("s2");
        let w_good = ds.intern_worker("good");
        let w_bad = ds.intern_worker("bad");
        let mut truths = Vec::new();
        for i in 0..10 {
            let o = ds.intern_object(&format!("o{i}"));
            ds.add_record(o, s, a);
            ds.add_record(o, s2, bb);
            ds.add_answer(o, w_good, a);
            ds.add_answer(o, w_bad, bb);
            truths.push(Some(a));
        }
        let idx = ObservationIndex::build(&ds);
        let wa = WorkerAccuracy::estimate(&idx, &truths);
        assert!(wa.accuracy(w_good) > 0.9);
        assert!(wa.accuracy(w_bad) < 0.2);
        // Unknown workers get the prior.
        assert_eq!(wa.accuracy(WorkerId(99)), WorkerAccuracy::PRIOR);
    }

    #[test]
    fn bayes_posterior_shifts_mass() {
        let wa = WorkerAccuracy::default();
        let mu = vec![0.5, 0.5];
        let post = bayes_posterior(&mu, &wa, WorkerId(0), 0);
        assert!(post[0] > 0.5);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
