//! DART (Lin & Chen, PVLDB 2018): domain-aware multi-truth discovery.
//!
//! DART estimates, per source and per *domain*, both how often the source
//! speaks up (domain expertise/recall) and how precise it is when it does,
//! then scores every claimed value with a Bayesian odds update that also
//! counts the *silence* of knowledgeable sources as evidence against a
//! value. Domains come from the hierarchy's top-level branches, as in our
//! DOCS implementation.
//!
//! DART's published behaviour — very high recall, weaker precision
//! (Table 5) — comes from its per-value independence and its optimistic
//! prior on claimed values; both are preserved here.

use tdh_core::TruthDiscovery;
use tdh_data::{Dataset, ObservationIndex};
use tdh_hierarchy::NodeId;

use crate::common::normalize;
use crate::MultiTruthDiscovery;

/// Configuration for [`Dart`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DartConfig {
    /// Fixed-point iterations.
    pub max_iters: usize,
    /// Prior probability that a claimed value is true (optimistic, per the
    /// published model).
    pub truth_prior: f64,
    /// Beta prior pseudo-counts for per-domain precision.
    pub precision_prior: (f64, f64),
}

impl Default for DartConfig {
    fn default() -> Self {
        DartConfig {
            max_iters: 20,
            truth_prior: 0.8,
            precision_prior: (2.0, 2.0),
        }
    }
}

/// The DART algorithm.
#[derive(Debug, Clone)]
pub struct Dart {
    cfg: DartConfig,
    /// Per (source, domain) precision.
    precision: Vec<Vec<f64>>,
    /// Per (source, domain) coverage (how often the source claims in the
    /// domain at all) — DART's "domain expertise".
    coverage: Vec<Vec<f64>>,
}

impl Dart {
    /// DART with the given configuration.
    pub fn new(cfg: DartConfig) -> Self {
        Dart {
            cfg,
            precision: Vec::new(),
            coverage: Vec::new(),
        }
    }

    fn domains(ds: &Dataset, idx: &ObservationIndex) -> (Vec<usize>, usize) {
        let h = ds.hierarchy();
        let mut branch_index: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(idx.n_objects());
        for view in idx.views() {
            let majority = view
                .candidates
                .iter()
                .filter_map(|&v| h.top_level_branch(v))
                .fold(
                    std::collections::HashMap::<NodeId, usize>::new(),
                    |mut acc, b| {
                        *acc.entry(b).or_insert(0) += 1;
                        acc
                    },
                )
                .into_iter()
                .max_by_key(|&(b, n)| (n, std::cmp::Reverse(b.index())))
                .map(|(b, _)| b);
            match majority {
                Some(b) => {
                    let next = branch_index.len();
                    out.push(*branch_index.entry(b).or_insert(next));
                }
                None => out.push(usize::MAX),
            }
        }
        let n = branch_index.len().max(1);
        for d in &mut out {
            if *d == usize::MAX {
                *d = n - 1;
            }
        }
        (out, n)
    }

    /// Per-(object, candidate) truth probabilities.
    pub fn truth_probabilities(&mut self, ds: &Dataset, idx: &ObservationIndex) -> Vec<Vec<f64>> {
        let (domain_of, n_domains) = Dart::domains(ds, idx);
        let pp = self.cfg.precision_prior;
        let prior_precision = pp.0 / (pp.0 + pp.1);
        self.precision = vec![vec![prior_precision; n_domains]; ds.n_sources()];
        // Coverage: fraction of the domain's objects the source claims.
        let mut domain_sizes = vec![0usize; n_domains];
        for &d in &domain_of {
            domain_sizes[d] += 1;
        }
        self.coverage = vec![vec![0.0; n_domains]; ds.n_sources()];
        for s in ds.sources() {
            let mut per_domain = vec![0usize; n_domains];
            for &(o, _) in idx.objects_of_source(s) {
                per_domain[domain_of[o.index()]] += 1;
            }
            for d in 0..n_domains {
                self.coverage[s.index()][d] = per_domain[d] as f64 / domain_sizes[d].max(1) as f64;
            }
        }

        let prior_logit = (self.cfg.truth_prior / (1.0 - self.cfg.truth_prior)).ln();
        let mut p_true: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|view| vec![self.cfg.truth_prior; view.n_candidates()])
            .collect();

        for _ in 0..self.cfg.max_iters {
            // Score values: claimers add precision-weighted support,
            // knowledgeable non-claimers subtract (silence of an expert).
            for (oi, view) in idx.views().iter().enumerate() {
                let d = domain_of[oi];
                for v in 0..view.n_candidates() {
                    let mut log_odds = prior_logit;
                    for &(s, c) in &view.sources {
                        let prec = self.precision[s.index()][d].clamp(0.02, 0.98);
                        let cov = self.coverage[s.index()][d].clamp(0.0, 0.98);
                        if c as usize == v {
                            log_odds += (prec / (1.0 - prec)).ln();
                        } else {
                            // The source spoke about o but named another
                            // value; the strength of this denial grows with
                            // its domain expertise (softened — DART trusts
                            // positive claims far more than silence, which
                            // is what makes it recall-heavy in Table 5).
                            let denial = 1.0 - 0.45 * prec * cov;
                            log_odds += denial.max(0.02).ln();
                        }
                    }
                    p_true[oi][v] = 1.0 / (1.0 + (-log_odds).exp());
                }
            }
            // Update per-domain precision from expected correctness.
            let mut num = vec![vec![pp.0; n_domains]; ds.n_sources()];
            let mut den = vec![vec![pp.0 + pp.1; n_domains]; ds.n_sources()];
            for (oi, view) in idx.views().iter().enumerate() {
                let d = domain_of[oi];
                for &(s, c) in &view.sources {
                    num[s.index()][d] += p_true[oi][c as usize];
                    den[s.index()][d] += 1.0;
                }
            }
            for s in 0..ds.n_sources() {
                for d in 0..n_domains {
                    self.precision[s][d] = num[s][d] / den[s][d];
                }
            }
        }
        p_true
    }
}

impl Default for Dart {
    fn default() -> Self {
        Dart::new(DartConfig::default())
    }
}

impl MultiTruthDiscovery for Dart {
    fn name(&self) -> &'static str {
        "DART"
    }

    fn infer_multi(&mut self, ds: &Dataset, idx: &ObservationIndex) -> Vec<Vec<NodeId>> {
        let probs = self.truth_probabilities(ds, idx);
        idx.views()
            .iter()
            .zip(&probs)
            .map(|(view, p)| {
                let sel: Vec<NodeId> = view
                    .candidates
                    .iter()
                    .zip(p)
                    .filter(|&(_, &q)| q > 0.5)
                    .map(|(&v, _)| v)
                    .collect();
                if sel.is_empty() {
                    // DART always outputs something for a claimed object:
                    // fall back to the most probable value.
                    crate::common::argmax(p)
                        .map(|i| vec![view.candidates[i]])
                        .unwrap_or_default()
                } else {
                    sel
                }
            })
            .collect()
    }
}

/// Single-truth adaptation (most probable value) so DART can be compared in
/// single-truth harnesses when needed.
impl TruthDiscovery for Dart {
    fn name(&self) -> &'static str {
        "DART"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> tdh_core::TruthEstimate {
        let probs = self.truth_probabilities(ds, idx);
        let confidences: Vec<Vec<f64>> = probs
            .into_iter()
            .map(|mut p| {
                normalize(&mut p);
                p
            })
            .collect();
        tdh_core::TruthEstimate::from_confidences(idx, confidences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let g1 = ds.intern_source("g1");
        let g2 = ds.intern_source("g2");
        let g3 = ds.intern_source("g3");
        let liar = ds.intern_source("liar");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, g1, t);
            ds.add_record(o, g2, t);
            ds.add_record(o, g3, t);
            ds.add_record(o, liar, f);
        }
        ds
    }

    #[test]
    fn gold_always_included_high_recall() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let sets = Dart::default().infer_multi(&ds, &idx);
        for o in ds.objects() {
            assert!(sets[o.index()].contains(&ds.gold(o).unwrap()));
        }
    }

    #[test]
    fn never_outputs_empty_sets() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let sets = Dart::default().infer_multi(&ds, &idx);
        for s in &sets {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn single_truth_view_matches_gold() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = TruthDiscovery::infer(&mut Dart::default(), &ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
    }
}
