//! ACCU and POPACCU (Dong et al., PVLDB 2009 / 2012).
//!
//! Bayesian truth discovery with source-accuracy weighting and pairwise
//! *copy detection*: a claim's vote is discounted when the claiming source
//! appears to copy from an already-counted source. ACCU assumes wrong values
//! are uniformly distributed over `n` false values per object; POPACCU
//! replaces that assumption with the observed popularity of false values —
//! its single difference.
//!
//! The dependence analysis follows the published model: for each source pair
//! sharing objects, the probability of dependence is obtained by comparing
//! the likelihood of their agreement pattern (both-true / same-false /
//! different) under independence vs. copying. This pairwise pass is what
//! makes ACCU/POPACCU the slowest algorithms on many-source corpora
//! (Fig. 12), and its hunger for shared objects is why ACCU struggles on
//! Heritages (Table 3).

use std::collections::HashMap;

use tdh_core::{ProbabilisticCrowdModel, TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObjectId, ObservationIndex, SourceId, WorkerId};

use crate::common::{bayes_posterior, normalize, WorkerAccuracy};

/// Tuning knobs shared by [`Accu`] and [`PopAccu`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuConfig {
    /// Iterations of the accuracy ⇄ truth fixed point.
    pub max_iters: usize,
    /// Initial source accuracy.
    pub initial_accuracy: f64,
    /// A-priori probability that a pair of sources is dependent.
    pub dep_prior: f64,
    /// Probability that a copier copies a particular value (`c` in the
    /// paper).
    pub copy_rate: f64,
    /// Whether to run the pairwise dependence analysis at all.
    pub detect_dependence: bool,
}

impl Default for AccuConfig {
    fn default() -> Self {
        AccuConfig {
            max_iters: 20,
            initial_accuracy: 0.8,
            dep_prior: 0.2,
            copy_rate: 0.8,
            detect_dependence: true,
        }
    }
}

/// The ACCU algorithm (uniform false-value distribution).
#[derive(Debug, Clone)]
pub struct Accu {
    cfg: AccuConfig,
    engine: Engine,
}

/// The POPACCU algorithm (popularity-based false-value distribution).
#[derive(Debug, Clone)]
pub struct PopAccu {
    cfg: AccuConfig,
    engine: Engine,
}

impl Accu {
    /// ACCU with the given configuration.
    pub fn new(cfg: AccuConfig) -> Self {
        Accu {
            cfg,
            engine: Engine::default(),
        }
    }

    /// Estimated accuracy of source `s` after inference.
    pub fn source_accuracy(&self, s: SourceId) -> f64 {
        self.engine.accuracy[s.index()]
    }
}

impl Default for Accu {
    fn default() -> Self {
        Accu::new(AccuConfig::default())
    }
}

impl PopAccu {
    /// POPACCU with the given configuration.
    pub fn new(cfg: AccuConfig) -> Self {
        PopAccu {
            cfg,
            engine: Engine::default(),
        }
    }
}

impl Default for PopAccu {
    fn default() -> Self {
        PopAccu::new(AccuConfig::default())
    }
}

/// Shared fixed-point engine.
#[derive(Debug, Clone, Default)]
struct Engine {
    accuracy: Vec<f64>,
    confidences: Vec<Vec<f64>>,
    workers: WorkerAccuracy,
}

impl Engine {
    fn run(
        &mut self,
        ds: &Dataset,
        idx: &ObservationIndex,
        cfg: &AccuConfig,
        popularity_false: bool,
    ) -> TruthEstimate {
        let n_sources = ds.n_sources();
        self.accuracy = vec![cfg.initial_accuracy; n_sources];
        self.confidences = idx
            .views()
            .iter()
            .map(|v| vec![1.0 / v.n_candidates().max(1) as f64; v.n_candidates()])
            .collect();

        // Pairwise dependence probabilities (updated each iteration from the
        // current truths; computed over co-claiming pairs only).
        let mut dependence: HashMap<(u32, u32), f64> = HashMap::new();

        for _ in 0..cfg.max_iters {
            let truths = crate::common::truths_from_confidences(idx, &self.confidences);
            if cfg.detect_dependence {
                dependence = self.detect_dependence(idx, cfg, &truths);
            }
            self.update_confidences(idx, cfg, &dependence, popularity_false);
            self.update_accuracies(idx);
        }
        let truths = crate::common::truths_from_confidences(idx, &self.confidences);
        self.workers = WorkerAccuracy::estimate(idx, &truths);
        TruthEstimate {
            truths,
            confidences: self.confidences.clone(),
        }
    }

    /// Pairwise copy detection: Bayes factor of the agreement pattern under
    /// dependence vs independence.
    fn detect_dependence(
        &self,
        idx: &ObservationIndex,
        cfg: &AccuConfig,
        truths: &[Option<tdh_hierarchy::NodeId>],
    ) -> HashMap<(u32, u32), f64> {
        // Agreement pattern per co-claiming pair: (both true, same false,
        // different).
        let mut pattern: HashMap<(u32, u32), [u32; 3]> = HashMap::new();
        for (oi, view) in idx.views().iter().enumerate() {
            let truth = truths[oi];
            let claims = &view.sources;
            for i in 0..claims.len() {
                for j in (i + 1)..claims.len() {
                    let (s1, c1) = claims[i];
                    let (s2, c2) = claims[j];
                    if s1 == s2 {
                        continue;
                    }
                    let key = if s1.0 < s2.0 {
                        (s1.0, s2.0)
                    } else {
                        (s2.0, s1.0)
                    };
                    let v1 = view.candidates[c1 as usize];
                    let v2 = view.candidates[c2 as usize];
                    let both_true = Some(v1) == truth && Some(v2) == truth;
                    let entry = pattern.entry(key).or_insert([0; 3]);
                    if both_true {
                        entry[0] += 1;
                    } else if v1 == v2 {
                        entry[1] += 1;
                    } else {
                        entry[2] += 1;
                    }
                }
            }
        }

        let a = cfg.dep_prior;
        let c = cfg.copy_rate;
        pattern
            .into_iter()
            .map(|((s1, s2), [kt, kf, kd])| {
                let a1 = self.accuracy[s1 as usize].clamp(0.05, 0.95);
                let a2 = self.accuracy[s2 as usize].clamp(0.05, 0.95);
                // Representative false-value count; the exact `n` matters
                // little for the ranking of dependence probabilities.
                let n = 3.0;
                // Independent-case event probabilities.
                let pt_i = a1 * a2;
                let pf_i = (1.0 - a1) * (1.0 - a2) / n;
                let pd_i = (1.0 - pt_i - pf_i).max(1e-9);
                // Dependent: with prob c the value was copied (hence equal,
                // true with the copied source's accuracy), else independent.
                let am = (a1 * a2).sqrt();
                let pt_d = c * am + (1.0 - c) * pt_i;
                let pf_d = c * (1.0 - am) + (1.0 - c) * pf_i;
                let pd_d = ((1.0 - c) * pd_i).max(1e-12);
                let log_bayes = f64::from(kt) * (pt_d / pt_i).ln()
                    + f64::from(kf) * (pf_d / pf_i).ln()
                    + f64::from(kd) * (pd_d / pd_i).ln();
                // P(dep | pattern) with prior a.
                let logit = (a / (1.0 - a)).ln() + log_bayes;
                let p = 1.0 / (1.0 + (-logit).exp());
                ((s1, s2), p)
            })
            .collect()
    }

    /// Recompute every object's confidence: per candidate truth `t`, the
    /// log-likelihood of all claims with dependence-damped contributions.
    ///
    /// `P(claim c | truth t)` is `A_s` when `c == t`, otherwise
    /// `(1 − A_s) · f(c | t)` where the false-value distribution `f` is
    /// uniform over the `k − 1` non-truth candidates (ACCU) or their
    /// observed popularity among non-truth claims (POPACCU).
    fn update_confidences(
        &mut self,
        idx: &ObservationIndex,
        cfg: &AccuConfig,
        dependence: &HashMap<(u32, u32), f64>,
        popularity_false: bool,
    ) {
        for (oi, view) in idx.views().iter().enumerate() {
            let k = view.n_candidates();
            if k == 0 {
                continue;
            }
            let n_false = (k - 1).max(1) as f64;
            let total_claims: u32 = view.source_count.iter().sum();

            // Dependence damping per claim: independence probability w.r.t.
            // more accurate sources claiming the same value.
            let mut damp: HashMap<(SourceId, u32), f64> = HashMap::new();
            let mut per_value: Vec<Vec<SourceId>> = vec![Vec::new(); k];
            for &(s, c) in &view.sources {
                per_value[c as usize].push(s);
            }
            for (v, sources) in per_value.iter_mut().enumerate() {
                sources.sort_by(|&x, &y| {
                    self.accuracy[y.index()].total_cmp(&self.accuracy[x.index()])
                });
                for (pos, &s) in sources.iter().enumerate() {
                    let mut indep = 1.0;
                    for &prev in &sources[..pos] {
                        let key = if prev.0 < s.0 {
                            (prev.0, s.0)
                        } else {
                            (s.0, prev.0)
                        };
                        if let Some(&dep) = dependence.get(&key) {
                            indep *= 1.0 - cfg.copy_rate * dep;
                        }
                    }
                    damp.insert((s, v as u32), indep);
                }
            }

            let mut scores = vec![0.0f64; k];
            for (t, score) in scores.iter_mut().enumerate() {
                for &(s, c) in &view.sources {
                    let acc = self.accuracy[s.index()].clamp(0.01, 0.99);
                    let lik = if c as usize == t {
                        acc
                    } else if popularity_false {
                        // Popularity of `c` among claims that are not `t`.
                        let denom = f64::from(total_claims - view.source_count[t]).max(1.0);
                        (1.0 - acc) * f64::from(view.source_count[c as usize]).max(0.5) / denom
                    } else {
                        (1.0 - acc) / n_false
                    };
                    let indep = damp.get(&(s, c)).copied().unwrap_or(1.0);
                    *score += indep * lik.max(1e-12).ln();
                }
                for &(w, c) in &view.workers {
                    let q = self.workers.accuracy(w).clamp(0.01, 0.99);
                    let lik = if c as usize == t {
                        q
                    } else {
                        (1.0 - q) / n_false
                    };
                    *score += lik.max(1e-12).ln();
                }
            }

            // Softmax over log-likelihoods = posterior under the model.
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut conf: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
            normalize(&mut conf);
            self.confidences[oi] = conf;
        }
    }

    fn update_accuracies(&mut self, idx: &ObservationIndex) {
        let n_sources = self.accuracy.len();
        let mut num = vec![0.0f64; n_sources];
        let mut den = vec![0.0f64; n_sources];
        for (oi, view) in idx.views().iter().enumerate() {
            for &(s, c) in &view.sources {
                num[s.index()] += self.confidences[oi][c as usize];
                den[s.index()] += 1.0;
            }
        }
        for s in 0..n_sources {
            if den[s] > 0.0 {
                // Smooth toward 0.8 to keep rarely-seen sources stable.
                self.accuracy[s] = (num[s] + 0.8) / (den[s] + 1.0);
            }
        }
    }
}

impl TruthDiscovery for Accu {
    fn name(&self) -> &'static str {
        "ACCU"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        self.engine.run(ds, idx, &self.cfg, false)
    }
}

impl TruthDiscovery for PopAccu {
    fn name(&self) -> &'static str {
        "POPACCU"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        self.engine.run(ds, idx, &self.cfg, true)
    }
}

macro_rules! impl_crowd_model {
    ($ty:ty) => {
        impl ProbabilisticCrowdModel for $ty {
            fn confidence(&self, o: ObjectId) -> &[f64] {
                &self.engine.confidences[o.index()]
            }
            fn worker_exact_prob(&self, w: WorkerId) -> f64 {
                self.engine.workers.accuracy(w)
            }
            fn answer_likelihood(
                &self,
                idx: &ObservationIndex,
                o: ObjectId,
                w: WorkerId,
                c: u32,
            ) -> f64 {
                let k = idx.view(o).n_candidates();
                let mu = &self.engine.confidences[o.index()];
                (0..k as u32)
                    .map(|t| self.engine.workers.likelihood(w, k, c, t) * mu[t as usize])
                    .sum()
            }
            fn posterior_given_answer(
                &self,
                _idx: &ObservationIndex,
                o: ObjectId,
                w: WorkerId,
                c: u32,
            ) -> Vec<f64> {
                bayes_posterior(
                    &self.engine.confidences[o.index()],
                    &self.engine.workers,
                    w,
                    c,
                )
            }
            fn evidence_weight(&self, o: ObjectId) -> f64 {
                self.engine.confidences[o.index()].len() as f64
            }
        }
    };
}

impl_crowd_model!(Accu);
impl_crowd_model!(PopAccu);

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// Two honest sources, one liar, one copier of the liar.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let liar = ds.intern_source("liar");
        let copier = ds.intern_source("copier");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, good1, t);
            ds.add_record(o, good2, t);
            ds.add_record(o, liar, f);
            ds.add_record(o, copier, f); // copies the liar's false values
        }
        ds
    }

    #[test]
    fn accu_finds_truths_despite_copying() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut accu = Accu::default();
        let est = accu.infer(&ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
        // Honest sources end with higher estimated accuracy.
        assert!(accu.source_accuracy(SourceId(0)) > accu.source_accuracy(SourceId(2)));
    }

    #[test]
    fn dependence_detection_flags_the_copier_pair() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut accu = Accu::default();
        let est = accu.infer(&ds, &idx);
        let dep = accu
            .engine
            .detect_dependence(&idx, &AccuConfig::default(), &est.truths);
        // liar (2) & copier (3) always share false values: near-certain dep.
        let copy_pair = dep.get(&(2, 3)).copied().unwrap_or(0.0);
        // good1 (0) & good2 (1) only share true values: lower dep.
        let honest_pair = dep.get(&(0, 1)).copied().unwrap_or(0.0);
        assert!(
            copy_pair > honest_pair,
            "copier pair {copy_pair} vs honest pair {honest_pair}"
        );
        assert!(copy_pair > 0.9);
    }

    #[test]
    fn popaccu_matches_accu_on_easy_data_and_differs_in_confidence() {
        let mut ds = corpus();
        // A three-candidate object with skewed false-value counts: the
        // uniform (ACCU) and popularity (POPACCU) false distributions
        // genuinely differ here (with two candidates both are the constant
        // distribution).
        let h = ds.hierarchy().clone();
        let o = ds.intern_object("skewed");
        let t = h.node_by_name("C0T0").unwrap();
        let f1 = h.node_by_name("C1T0").unwrap();
        let f2 = h.node_by_name("C2T0").unwrap();
        let extra: Vec<_> = (0..6).map(|i| ds.intern_source(&format!("x{i}"))).collect();
        ds.add_record(o, extra[0], t);
        ds.add_record(o, extra[1], t);
        ds.add_record(o, extra[2], t);
        ds.add_record(o, extra[3], f1);
        ds.add_record(o, extra[4], f1);
        ds.add_record(o, extra[5], f2);
        let idx = ObservationIndex::build(&ds);
        let a = Accu::default().infer(&ds, &idx);
        let p = PopAccu::default().infer(&ds, &idx);
        assert_eq!(a.truths[o.index()], p.truths[o.index()]);
        let differs = a.confidences[o.index()]
            .iter()
            .zip(&p.confidences[o.index()])
            .any(|(x, y)| (x - y).abs() > 1e-9);
        assert!(differs, "3-candidate skew must separate the models");
    }

    #[test]
    fn crowd_model_surface_behaves() {
        let mut ds = corpus();
        let w = ds.intern_worker("w");
        let o = ObjectId(0);
        let t = ds.gold(o).unwrap();
        ds.add_answer(o, w, t);
        let idx = ObservationIndex::build(&ds);
        let mut accu = Accu::default();
        accu.infer(&ds, &idx);
        let k = idx.view(o).n_candidates();
        let total: f64 = (0..k as u32)
            .map(|c| accu.answer_likelihood(&idx, o, w, c))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "likelihoods sum to {total}");
        let post = accu.posterior_given_answer(&idx, o, w, 0);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
