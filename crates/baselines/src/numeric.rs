//! Numeric truth discovery baselines (paper §5.8, Table 6).
//!
//! * [`MeanNumeric`] — the outlier-sensitive averaging baseline.
//! * [`VoteNumeric`] — mode of the claimed values (candidate selection, so
//!   outlier-robust but resolution-blind).
//! * [`CrhNumeric`] — CRH with normalised squared loss: weighted mean
//!   truths, `−ln(loss share)` weights.
//! * [`Catd`] — confidence-aware weights via chi-square upper quantiles
//!   (Li et al., PVLDB 2014), the long-tail specialist; also a weighted
//!   mean, hence also outlier-sensitive (Table 6's finding).
//! * [`LcaNumeric`] — GuessLCA over the *flat* candidate set (distinct
//!   claimed values with no hierarchy), isolating what the rounding lattice
//!   adds to TDH.

use std::collections::HashMap;

use tdh_core::TruthDiscovery;
use tdh_data::{Dataset, NumericDataset, ObservationIndex};
use tdh_hierarchy::numeric::canonical;
use tdh_hierarchy::HierarchyBuilder;

use crate::lca::Lca;

/// A numeric truth-discovery algorithm.
pub trait NumericTruthDiscovery {
    /// Name as used in Table 6.
    fn name(&self) -> &'static str;

    /// Estimate one value per object (`None` when the object has no claims).
    fn infer_numeric(&mut self, ds: &NumericDataset) -> Vec<Option<f64>>;
}

/// MEAN: the per-object average of claimed values.
#[derive(Debug, Clone, Default)]
pub struct MeanNumeric;

impl NumericTruthDiscovery for MeanNumeric {
    fn name(&self) -> &'static str {
        "MEAN"
    }

    fn infer_numeric(&mut self, ds: &NumericDataset) -> Vec<Option<f64>> {
        ds.claims_by_object()
            .into_iter()
            .map(|claims| {
                if claims.is_empty() {
                    None
                } else {
                    Some(claims.iter().map(|&(_, v)| v).sum::<f64>() / claims.len() as f64)
                }
            })
            .collect()
    }
}

/// VOTE: the most frequently claimed value (ties → smallest canonical
/// string, for determinism).
#[derive(Debug, Clone, Default)]
pub struct VoteNumeric;

impl NumericTruthDiscovery for VoteNumeric {
    fn name(&self) -> &'static str {
        "VOTE"
    }

    fn infer_numeric(&mut self, ds: &NumericDataset) -> Vec<Option<f64>> {
        ds.claims_by_object()
            .into_iter()
            .map(|claims| {
                let mut counts: HashMap<String, (usize, f64)> = HashMap::new();
                for &(_, v) in &claims {
                    let e = counts.entry(canonical(v)).or_insert((0, v));
                    e.0 += 1;
                }
                counts
                    .into_iter()
                    .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then_with(|| b.0.cmp(&a.0)))
                    .map(|(_, (_, v))| v)
            })
            .collect()
    }
}

/// CRH for numeric attributes: weighted-mean truths with
/// variance-normalised squared loss and `−ln` weights.
#[derive(Debug, Clone)]
pub struct CrhNumeric {
    /// Fixed-point iterations.
    pub max_iters: usize,
}

impl Default for CrhNumeric {
    fn default() -> Self {
        CrhNumeric { max_iters: 15 }
    }
}

impl NumericTruthDiscovery for CrhNumeric {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn infer_numeric(&mut self, ds: &NumericDataset) -> Vec<Option<f64>> {
        let by_obj = ds.claims_by_object();
        let mut weights = vec![1.0f64; ds.n_sources()];
        let mut truths: Vec<Option<f64>> = vec![None; ds.n_objects()];

        for _ in 0..self.max_iters {
            // Truth step: weighted mean per object.
            for (oi, claims) in by_obj.iter().enumerate() {
                if claims.is_empty() {
                    continue;
                }
                let (mut num, mut den) = (0.0, 0.0);
                for &(s, v) in claims {
                    let w = weights[s.index()];
                    num += w * v;
                    den += w;
                }
                truths[oi] = Some(num / den.max(1e-12));
            }
            // Per-object deviation scale for loss normalisation.
            let scale: Vec<f64> = by_obj
                .iter()
                .enumerate()
                .map(|(oi, claims)| {
                    let Some(t) = truths[oi] else { return 1.0 };
                    let var: f64 = claims.iter().map(|&(_, v)| (v - t).powi(2)).sum::<f64>()
                        / claims.len().max(1) as f64;
                    var.sqrt().max(1e-9)
                })
                .collect();
            // Weight step.
            let mut loss = vec![1e-6f64; ds.n_sources()];
            for (oi, claims) in by_obj.iter().enumerate() {
                let Some(t) = truths[oi] else { continue };
                for &(s, v) in claims {
                    loss[s.index()] += ((v - t) / scale[oi]).powi(2);
                }
            }
            let total: f64 = loss.iter().sum();
            for (w, l) in weights.iter_mut().zip(&loss) {
                *w = (-((l / total).max(1e-12)).ln()).max(1e-6);
            }
        }
        truths
    }
}

/// CATD (Li et al., PVLDB 2014): confidence-aware truth discovery for
/// long-tail data. Source weights are the 0.975 chi-square upper quantile
/// of the claim count divided by the accumulated squared loss, so
/// low-evidence sources are not over-trusted; truths are weighted means.
#[derive(Debug, Clone)]
pub struct Catd {
    /// Fixed-point iterations.
    pub max_iters: usize,
}

impl Default for Catd {
    fn default() -> Self {
        Catd { max_iters: 15 }
    }
}

/// Upper `p`-quantile of the chi-square distribution via the
/// Wilson–Hilferty approximation (adequate for weighting purposes).
fn chi_square_quantile(p_z: f64, df: f64) -> f64 {
    let df = df.max(1.0);
    let t = 1.0 - 2.0 / (9.0 * df) + p_z * (2.0 / (9.0 * df)).sqrt();
    df * t.powi(3)
}

impl NumericTruthDiscovery for Catd {
    fn name(&self) -> &'static str {
        "CATD"
    }

    fn infer_numeric(&mut self, ds: &NumericDataset) -> Vec<Option<f64>> {
        const Z_975: f64 = 1.959_964;
        let by_obj = ds.claims_by_object();
        let mut claim_count = vec![0usize; ds.n_sources()];
        for c in ds.claims() {
            claim_count[c.source.index()] += 1;
        }
        let mut weights = vec![1.0f64; ds.n_sources()];
        let mut truths: Vec<Option<f64>> = vec![None; ds.n_objects()];

        for _ in 0..self.max_iters {
            for (oi, claims) in by_obj.iter().enumerate() {
                if claims.is_empty() {
                    continue;
                }
                let (mut num, mut den) = (0.0, 0.0);
                for &(s, v) in claims {
                    let w = weights[s.index()];
                    num += w * v;
                    den += w;
                }
                truths[oi] = Some(num / den.max(1e-12));
            }
            let scale: Vec<f64> = by_obj
                .iter()
                .enumerate()
                .map(|(oi, claims)| {
                    let Some(t) = truths[oi] else { return 1.0 };
                    let var: f64 = claims.iter().map(|&(_, v)| (v - t).powi(2)).sum::<f64>()
                        / claims.len().max(1) as f64;
                    var.sqrt().max(1e-9)
                })
                .collect();
            let mut loss = vec![1e-9f64; ds.n_sources()];
            for (oi, claims) in by_obj.iter().enumerate() {
                let Some(t) = truths[oi] else { continue };
                for &(s, v) in claims {
                    loss[s.index()] += ((v - t) / scale[oi]).powi(2);
                }
            }
            for s in 0..ds.n_sources() {
                weights[s] = chi_square_quantile(Z_975, claim_count[s] as f64) / loss[s].max(1e-9);
            }
            // Normalise for numerical stability.
            let max_w = weights.iter().copied().fold(1e-12, f64::max);
            weights.iter_mut().for_each(|w| *w /= max_w);
        }
        truths
    }
}

/// GuessLCA over flat numeric candidates: distinct claimed values become an
/// unstructured categorical candidate set (no rounding lattice), then
/// [`Lca`] runs unchanged. Comparing this against numeric TDH isolates the
/// contribution of the implicit hierarchy.
#[derive(Debug, Clone, Default)]
pub struct LcaNumeric;

/// Lift numeric claims into a *flat* categorical dataset: per object, each
/// distinct claimed value becomes a child of the root (object-prefixed to
/// avoid cross-object interference). Returns the dataset and the node →
/// value map.
pub fn lift_flat(ds: &NumericDataset) -> (Dataset, HashMap<tdh_hierarchy::NodeId, f64>) {
    let by_obj = ds.claims_by_object();
    let mut builder = HierarchyBuilder::new();
    let mut value_of = HashMap::new();
    let mut node_of: Vec<HashMap<String, tdh_hierarchy::NodeId>> =
        vec![HashMap::new(); ds.n_objects()];
    for (oi, claims) in by_obj.iter().enumerate() {
        for &(_, v) in claims {
            let name = format!("o{oi}:{}", canonical(v));
            let node = builder
                .add_child(tdh_hierarchy::NodeId::ROOT, &name)
                .expect("prefixed names are unique");
            node_of[oi].insert(canonical(v), node);
            value_of.insert(node, v);
        }
    }
    let mut cat = Dataset::new(builder.build());
    let objects: Vec<_> = (0..ds.n_objects())
        .map(|i| cat.intern_object(&format!("num-{i}")))
        .collect();
    let sources: Vec<_> = (0..ds.n_sources())
        .map(|i| cat.intern_source(&format!("src-{i}")))
        .collect();
    for (oi, claims) in by_obj.iter().enumerate() {
        for &(s, v) in claims {
            cat.add_record(objects[oi], sources[s.index()], node_of[oi][&canonical(v)]);
        }
    }
    (cat, value_of)
}

impl NumericTruthDiscovery for LcaNumeric {
    fn name(&self) -> &'static str {
        "LCA"
    }

    fn infer_numeric(&mut self, ds: &NumericDataset) -> Vec<Option<f64>> {
        let (cat, value_of) = lift_flat(ds);
        let idx = ObservationIndex::build(&cat);
        let est = Lca::default().infer(&cat, &idx);
        est.truths
            .iter()
            .map(|t| t.map(|node| value_of[&node]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::{ObjectId, SourceId};

    fn with_outlier() -> NumericDataset {
        let mut ds = NumericDataset::new(1, 5);
        ds.add_claim(ObjectId(0), SourceId(0), 100.0);
        ds.add_claim(ObjectId(0), SourceId(1), 100.0);
        ds.add_claim(ObjectId(0), SourceId(2), 100.0);
        ds.add_claim(ObjectId(0), SourceId(3), 101.0);
        ds.add_claim(ObjectId(0), SourceId(4), 1.0e7);
        ds.set_gold(ObjectId(0), 100.0);
        ds
    }

    #[test]
    fn mean_is_wrecked_by_outliers() {
        let ds = with_outlier();
        let est = MeanNumeric.infer_numeric(&ds);
        assert!((est[0].unwrap() - 100.0).abs() > 1e5);
    }

    #[test]
    fn vote_and_lca_are_robust() {
        let ds = with_outlier();
        assert_eq!(VoteNumeric.infer_numeric(&ds)[0], Some(100.0));
        assert_eq!(LcaNumeric.infer_numeric(&ds)[0], Some(100.0));
    }

    #[test]
    fn crh_downweights_the_outlier_source() {
        // Across many objects, CRH learns source 4 is bad and its weighted
        // mean lands near the truth.
        let mut ds = NumericDataset::new(20, 5);
        for i in 0..20u32 {
            let t = 50.0 + f64::from(i);
            ds.set_gold(ObjectId(i), t);
            for s in 0..4 {
                ds.add_claim(ObjectId(i), SourceId(s), t);
            }
            ds.add_claim(ObjectId(i), SourceId(4), t + 1000.0);
        }
        let est = CrhNumeric::default().infer_numeric(&ds);
        for i in 0..20u32 {
            let e = est[i as usize].unwrap();
            let t = ds.gold(ObjectId(i)).unwrap();
            assert!(
                (e - t).abs() < 30.0,
                "object {i}: weighted mean {e} vs truth {t}"
            );
        }
    }

    #[test]
    fn catd_weights_scale_with_claim_counts() {
        // A source with many claims and low loss gets a much larger weight
        // than one with a single claim, per the chi-square quantile.
        let q_many = chi_square_quantile(1.959_964, 100.0);
        let q_one = chi_square_quantile(1.959_964, 1.0);
        assert!(q_many > 100.0 && q_many < 140.0, "q_many = {q_many}");
        assert!(q_one < 7.0, "q_one = {q_one}");
    }

    #[test]
    fn catd_estimates_are_reasonable_without_outliers() {
        let mut ds = NumericDataset::new(10, 4);
        for i in 0..10u32 {
            let t = 10.0 * f64::from(i + 1);
            ds.set_gold(ObjectId(i), t);
            ds.add_claim(ObjectId(i), SourceId(0), t);
            ds.add_claim(ObjectId(i), SourceId(1), t);
            ds.add_claim(ObjectId(i), SourceId(2), t + 0.5);
            ds.add_claim(ObjectId(i), SourceId(3), t - 0.5);
        }
        let est = Catd::default().infer_numeric(&ds);
        for i in 0..10usize {
            let t = ds.gold(ObjectId(i as u32)).unwrap();
            assert!((est[i].unwrap() - t).abs() < 0.5);
        }
    }

    #[test]
    fn empty_objects_yield_none() {
        let ds = NumericDataset::new(2, 1);
        assert_eq!(MeanNumeric.infer_numeric(&ds), vec![None, None]);
        assert_eq!(VoteNumeric.infer_numeric(&ds), vec![None, None]);
        assert_eq!(CrhNumeric::default().infer_numeric(&ds), vec![None, None]);
    }
}
