//! CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD 2014).
//!
//! CRH frames truth discovery as a joint optimisation: find truths and
//! source weights minimising the weighted deviation
//! `Σ_s w_s Σ_o d(v_o^s, v*_o)` subject to a regularisation on the weights,
//! which yields the closed forms
//!
//! * truths: weighted majority vote (categorical 0-1 loss),
//! * weights: `w_s = −ln( loss_s / Σ_s' loss_s' )`.
//!
//! The categorical variant lives here; the numeric variant (squared loss →
//! weighted mean) is in [`crate::numeric`].

use tdh_core::{TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObservationIndex, SourceId};

use crate::common::{normalize, truths_from_confidences};

/// Configuration for [`Crh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrhConfig {
    /// Iterations of the weight ⇄ truth fixed point.
    pub max_iters: usize,
    /// Additive smoothing on per-source losses (keeps perfect sources from
    /// acquiring infinite weight).
    pub loss_smoothing: f64,
}

impl Default for CrhConfig {
    fn default() -> Self {
        CrhConfig {
            max_iters: 20,
            loss_smoothing: 0.5,
        }
    }
}

/// The CRH algorithm (categorical attributes).
#[derive(Debug, Clone)]
pub struct Crh {
    cfg: CrhConfig,
    weights: Vec<f64>,
}

impl Crh {
    /// CRH with the given configuration.
    pub fn new(cfg: CrhConfig) -> Self {
        Crh {
            cfg,
            weights: Vec::new(),
        }
    }

    /// The fitted weight of source `s`.
    pub fn source_weight(&self, s: SourceId) -> f64 {
        self.weights[s.index()]
    }
}

impl Default for Crh {
    fn default() -> Self {
        Crh::new(CrhConfig::default())
    }
}

impl TruthDiscovery for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        self.weights = vec![1.0; ds.n_sources()];
        let mut worker_weight = 1.0f64;
        let mut confidences: Vec<Vec<f64>> = Vec::new();

        for _ in 0..self.cfg.max_iters {
            // Truth step: weighted vote.
            confidences = idx
                .views()
                .iter()
                .map(|view| {
                    let k = view.n_candidates();
                    let mut score = vec![0.0f64; k];
                    for &(s, c) in &view.sources {
                        score[c as usize] += self.weights[s.index()];
                    }
                    for &(_, c) in &view.workers {
                        score[c as usize] += worker_weight;
                    }
                    normalize(&mut score);
                    score
                })
                .collect();
            let truths = truths_from_confidences(idx, &confidences);

            // Weight step: w_s = −ln(loss_s / Σ loss).
            let mut loss = vec![self.cfg.loss_smoothing; ds.n_sources()];
            let mut worker_loss = self.cfg.loss_smoothing;
            let mut worker_n = 0.0f64;
            for (oi, view) in idx.views().iter().enumerate() {
                let t = truths[oi];
                for &(s, c) in &view.sources {
                    if Some(view.candidates[c as usize]) != t {
                        loss[s.index()] += 1.0;
                    }
                }
                for &(_, c) in &view.workers {
                    worker_n += 1.0;
                    if Some(view.candidates[c as usize]) != t {
                        worker_loss += 1.0;
                    }
                }
            }
            let total: f64 = loss.iter().sum::<f64>() + worker_loss;
            for (w, l) in self.weights.iter_mut().zip(&loss) {
                *w = (-((l / total).max(1e-12)).ln()).max(1e-6);
            }
            worker_weight = if worker_n > 0.0 {
                (-((worker_loss / total).max(1e-12)).ln()).max(1e-6)
            } else {
                1.0
            };
        }

        TruthEstimate {
            truths: truths_from_confidences(idx, &confidences),
            confidences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let liar1 = ds.intern_source("liar1");
        let liar2 = ds.intern_source("liar2");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f1 = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            let f2 = h
                .node_by_name(&format!("C{}T{}", (i + 2) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, good1, t);
            ds.add_record(o, good2, t);
            // The liars disagree with each other, so the good pair wins even
            // at equal weights; iteration then amplifies the gap.
            ds.add_record(o, liar1, f1);
            ds.add_record(o, liar2, f2);
        }
        ds
    }

    #[test]
    fn weighted_vote_beats_split_liars() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut crh = Crh::default();
        let est = crh.infer(&ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
        assert!(crh.source_weight(SourceId(0)) > crh.source_weight(SourceId(2)));
    }

    #[test]
    fn worker_answers_participate() {
        let mut ds = corpus();
        // Workers can flip a 1v1 tie.
        let h = ds.hierarchy().clone();
        let o = ds.intern_object("tie");
        let a = h.node_by_name("C0T1").unwrap();
        let b = h.node_by_name("C1T0").unwrap();
        let s1 = SourceId(0);
        let s2 = SourceId(2);
        ds.add_record(o, s1, b);
        ds.add_record(o, s2, a);
        let w = ds.intern_worker("w");
        ds.add_answer(o, w, a);
        let idx = ObservationIndex::build(&ds);
        let est = Crh::default().infer(&ds, &idx);
        // good1 carries more weight than liar1+worker? good1 ≈ strong, so b
        // may still win; what must hold is that the answer moved a's score.
        let view = idx.view(o);
        let ai = view.cand_index(a).unwrap() as usize;
        assert!(est.confidences[o.index()][ai] > 0.0);
    }

    #[test]
    fn confidences_normalised() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = Crh::default().infer(&ds, &idx);
        for mu in &est.confidences {
            if !mu.is_empty() {
                assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }
}
