//! DOCS (Zheng, Li & Cheng, PVLDB 2016): domain-aware crowdsourcing, the
//! state-of-the-art single-truth baseline of the TDH paper, plus its
//! entropy-based task assigner (the paper's "MB").
//!
//! DOCS observes that worker (and source) quality varies by *domain*: a
//! film buff answers movie questions well and geography questions poorly.
//! The published system derives domains from a knowledge base; offline we
//! substitute the hierarchy's top-level branches (an object's domain is the
//! majority top-level branch of its candidate values), which preserves the
//! property that matters — per-domain quality estimation. Inference is a
//! Dawid–Skene-style EM with per-(participant, domain) accuracies under a
//! Beta prior.

use tdh_core::{Assignment, ProbabilisticCrowdModel, TaskAssigner, TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};
use tdh_hierarchy::NodeId;

use crate::common::{entropy, normalize, truths_from_confidences};

/// Configuration for [`Docs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocsConfig {
    /// EM iterations.
    pub max_iters: usize,
    /// Beta prior pseudo-counts `(correct, wrong)` for per-domain quality.
    pub quality_prior: (f64, f64),
}

impl Default for DocsConfig {
    fn default() -> Self {
        DocsConfig {
            max_iters: 25,
            quality_prior: (4.0, 2.0),
        }
    }
}

/// The DOCS model.
#[derive(Debug, Clone)]
pub struct Docs {
    cfg: DocsConfig,
    /// Domain per object (dense index into the domain table).
    domain_of: Vec<usize>,
    n_domains: usize,
    /// Per (source, domain) accuracy.
    q_source: Vec<Vec<f64>>,
    /// Per (worker, domain) accuracy.
    q_worker: Vec<Vec<f64>>,
    confidences: Vec<Vec<f64>>,
}

impl Docs {
    /// DOCS with the given configuration.
    pub fn new(cfg: DocsConfig) -> Self {
        Docs {
            cfg,
            domain_of: Vec::new(),
            n_domains: 0,
            q_source: Vec::new(),
            q_worker: Vec::new(),
            confidences: Vec::new(),
        }
    }

    /// The fitted per-domain accuracy of a worker.
    pub fn worker_domain_quality(&self, w: WorkerId, domain: usize) -> f64 {
        let prior =
            self.cfg.quality_prior.0 / (self.cfg.quality_prior.0 + self.cfg.quality_prior.1);
        self.q_worker
            .get(w.index())
            .and_then(|qs| qs.get(domain).copied())
            .unwrap_or(prior)
    }

    /// The domain (top-level-branch index) of object `o` after fitting.
    pub fn object_domain(&self, o: ObjectId) -> usize {
        self.domain_of[o.index()]
    }

    /// Derive object domains: the majority top-level branch among the
    /// object's candidate values. (Knowledge-base domain lookup substituted
    /// by the hierarchy — see module docs.)
    fn derive_domains(ds: &Dataset, idx: &ObservationIndex) -> (Vec<usize>, usize) {
        let h = ds.hierarchy();
        let mut branch_index: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        let mut domains = Vec::with_capacity(idx.n_objects());
        for view in idx.views() {
            let mut votes: std::collections::HashMap<NodeId, usize> =
                std::collections::HashMap::new();
            for &v in &view.candidates {
                if let Some(b) = h.top_level_branch(v) {
                    *votes.entry(b).or_insert(0) += 1;
                }
            }
            let majority = votes
                .into_iter()
                .max_by_key(|&(b, n)| (n, std::cmp::Reverse(b.index())))
                .map(|(b, _)| b);
            let idx_of = match majority {
                Some(b) => {
                    let next = branch_index.len();
                    *branch_index.entry(b).or_insert(next)
                }
                None => usize::MAX,
            };
            domains.push(idx_of);
        }
        let n = branch_index.len().max(1);
        // Objects without a branch share a catch-all domain.
        for d in &mut domains {
            if *d == usize::MAX {
                *d = n - 1;
            }
        }
        (domains, n)
    }

    fn likelihood(q: f64, k: usize, c: u32, t: u32) -> f64 {
        let q = q.clamp(0.01, 0.99);
        if c == t {
            q
        } else if k > 1 {
            (1.0 - q) / (k - 1) as f64
        } else {
            1.0 - q
        }
    }
}

impl Default for Docs {
    fn default() -> Self {
        Docs::new(DocsConfig::default())
    }
}

impl TruthDiscovery for Docs {
    fn name(&self) -> &'static str {
        "DOCS"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let (domains, n_domains) = Docs::derive_domains(ds, idx);
        self.domain_of = domains;
        self.n_domains = n_domains;
        let prior = self.cfg.quality_prior;
        let prior_q = prior.0 / (prior.0 + prior.1);
        self.q_source = vec![vec![prior_q; n_domains]; ds.n_sources()];
        self.q_worker = vec![vec![prior_q; n_domains]; ds.n_workers().max(idx.n_workers())];

        self.confidences = idx
            .views()
            .iter()
            .map(|view| {
                let mut f: Vec<f64> = (0..view.n_candidates())
                    .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 0.5)
                    .collect();
                normalize(&mut f);
                f
            })
            .collect();

        for _ in 0..self.cfg.max_iters {
            // E-step.
            for (oi, view) in idx.views().iter().enumerate() {
                let k = view.n_candidates();
                if k == 0 {
                    continue;
                }
                let d = self.domain_of[oi];
                let mut post = vec![1.0f64; k];
                for &(s, c) in &view.sources {
                    let q = self.q_source[s.index()][d];
                    for (t, p) in post.iter_mut().enumerate() {
                        *p *= Docs::likelihood(q, k, c, t as u32);
                    }
                }
                for &(w, c) in &view.workers {
                    let q = self.q_worker[w.index()][d];
                    for (t, p) in post.iter_mut().enumerate() {
                        *p *= Docs::likelihood(q, k, c, t as u32);
                    }
                }
                normalize(&mut post);
                self.confidences[oi] = post;
            }
            // M-step: per-(participant, domain) expected accuracy with the
            // Beta prior.
            let mut s_num = vec![vec![prior.0; n_domains]; self.q_source.len()];
            let mut s_den = vec![vec![prior.0 + prior.1; n_domains]; self.q_source.len()];
            let mut w_num = vec![vec![prior.0; n_domains]; self.q_worker.len()];
            let mut w_den = vec![vec![prior.0 + prior.1; n_domains]; self.q_worker.len()];
            for (oi, view) in idx.views().iter().enumerate() {
                let d = self.domain_of[oi];
                for &(s, c) in &view.sources {
                    s_num[s.index()][d] += self.confidences[oi][c as usize];
                    s_den[s.index()][d] += 1.0;
                }
                for &(w, c) in &view.workers {
                    w_num[w.index()][d] += self.confidences[oi][c as usize];
                    w_den[w.index()][d] += 1.0;
                }
            }
            for (q, (n, dn)) in self.q_source.iter_mut().zip(s_num.iter().zip(s_den.iter())) {
                for d in 0..n_domains {
                    q[d] = n[d] / dn[d];
                }
            }
            for (q, (n, dn)) in self.q_worker.iter_mut().zip(w_num.iter().zip(w_den.iter())) {
                for d in 0..n_domains {
                    q[d] = n[d] / dn[d];
                }
            }
        }

        TruthEstimate {
            truths: truths_from_confidences(idx, &self.confidences),
            confidences: self.confidences.clone(),
        }
    }
}

impl ProbabilisticCrowdModel for Docs {
    fn confidence(&self, o: ObjectId) -> &[f64] {
        &self.confidences[o.index()]
    }

    fn worker_exact_prob(&self, w: WorkerId) -> f64 {
        // Mean over domains — used only to order workers.
        match self.q_worker.get(w.index()) {
            Some(qs) if !qs.is_empty() => qs.iter().sum::<f64>() / qs.len() as f64,
            _ => self.cfg.quality_prior.0 / (self.cfg.quality_prior.0 + self.cfg.quality_prior.1),
        }
    }

    fn answer_likelihood(&self, idx: &ObservationIndex, o: ObjectId, w: WorkerId, c: u32) -> f64 {
        let k = idx.view(o).n_candidates();
        let q = self.worker_domain_quality(w, self.domain_of[o.index()]);
        let mu = &self.confidences[o.index()];
        (0..k as u32)
            .map(|t| Docs::likelihood(q, k, c, t) * mu[t as usize])
            .sum()
    }

    fn posterior_given_answer(
        &self,
        idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
        c: u32,
    ) -> Vec<f64> {
        let k = idx.view(o).n_candidates();
        let q = self.worker_domain_quality(w, self.domain_of[o.index()]);
        let mu = &self.confidences[o.index()];
        let mut post: Vec<f64> = (0..k as u32)
            .map(|t| Docs::likelihood(q, k, c, t) * mu[t as usize])
            .collect();
        normalize(&mut post);
        post
    }

    fn evidence_weight(&self, o: ObjectId) -> f64 {
        self.confidences[o.index()].len() as f64
    }
}

/// DOCS's task assigner (the TDH paper's "MB"): pick, per worker, the
/// objects with the largest expected *entropy reduction* given the worker's
/// per-domain quality.
#[derive(Debug, Clone, Default)]
pub struct MbAssigner;

impl TaskAssigner for MbAssigner {
    fn name(&self) -> &'static str {
        "MB"
    }

    fn assign(
        &mut self,
        model: &dyn ProbabilisticCrowdModel,
        _ds: &Dataset,
        idx: &ObservationIndex,
        workers: &[WorkerId],
        k: usize,
    ) -> Vec<Assignment> {
        let mut scored: Vec<(f64, usize, ObjectId)> = Vec::new();
        for (wi, &w) in workers.iter().enumerate() {
            for oi in 0..idx.n_objects() {
                let o = ObjectId::from_index(oi);
                let kc = idx.view(o).n_candidates();
                if kc < 2 || idx.has_answered(w, o) {
                    continue;
                }
                let h0 = entropy(model.confidence(o));
                if h0 <= 0.0 {
                    continue;
                }
                // Expected posterior entropy over the worker's answers.
                let mut expected = 0.0;
                for c in 0..kc as u32 {
                    let p = model.answer_likelihood(idx, o, w, c);
                    if p <= 0.0 {
                        continue;
                    }
                    expected += p * entropy(&model.posterior_given_answer(idx, o, w, c));
                }
                scored.push((h0 - expected, wi, o));
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut taken = vec![false; idx.n_objects()];
        let mut batches: Vec<Vec<ObjectId>> = vec![Vec::new(); workers.len()];
        for (_, wi, o) in scored {
            if taken[o.index()] || batches[wi].len() >= k {
                continue;
            }
            taken[o.index()] = true;
            batches[wi].push(o);
        }
        workers
            .iter()
            .zip(batches)
            .map(|(&w, objects)| Assignment { worker: w, objects })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// Two domains (branches D0, D1); a source accurate only in D0.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for d in 0..2 {
            for t in 0..4 {
                b.add_path(&[&format!("D{d}"), &format!("D{d}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let expert0 = ds.intern_source("expert-d0");
        let all_round = ds.intern_source("allround");
        let all_round2 = ds.intern_source("allround2");
        for i in 0..32 {
            let d = i % 2;
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("D{d}T{}", i % 4)).unwrap();
            let f = h.node_by_name(&format!("D{d}T{}", (i + 1) % 4)).unwrap();
            ds.set_gold(o, t);
            // expert0 is right in domain 0, wrong in domain 1.
            ds.add_record(o, expert0, if d == 0 { t } else { f });
            ds.add_record(o, all_round, t);
            ds.add_record(o, all_round2, t);
        }
        ds
    }

    #[test]
    fn recovers_truths() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = Docs::default().infer(&ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
    }

    #[test]
    fn per_domain_quality_is_learned() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut docs = Docs::default();
        docs.infer(&ds, &idx);
        // expert0's quality in domain of object 0 (D0) must beat its quality
        // in the domain of object 1 (D1).
        let d0 = docs.object_domain(ObjectId(0));
        let d1 = docs.object_domain(ObjectId(1));
        assert_ne!(d0, d1, "two domains should be derived");
        let q = &docs.q_source[0];
        assert!(
            q[d0] > q[d1] + 0.3,
            "domain-specific accuracy: {} vs {}",
            q[d0],
            q[d1]
        );
    }

    #[test]
    fn mb_prefers_uncertain_objects() {
        let mut ds = corpus();
        // Add one contested object (1v1) — highest entropy.
        let h = ds.hierarchy().clone();
        let o = ds.intern_object("contested");
        let a = h.node_by_name("D0T0").unwrap();
        let b2 = h.node_by_name("D0T1").unwrap();
        ds.add_record(o, tdh_data::SourceId(0), a);
        ds.add_record(o, tdh_data::SourceId(1), b2);
        let w = ds.intern_worker("w");
        let idx = ObservationIndex::build(&ds);
        let mut docs = Docs::default();
        docs.infer(&ds, &idx);
        let batches = MbAssigner.assign(&docs, &ds, &idx, &[w], 1);
        assert_eq!(batches[0].objects, vec![o]);
    }
}
