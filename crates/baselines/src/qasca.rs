//! QASCA task assignment (Zheng et al., SIGMOD 2015).
//!
//! QASCA scores a `(worker, object)` pair by the accuracy improvement a
//! *sampled* answer would produce: it draws one hypothetical answer `v'`
//! from the model's answer distribution, applies a single Bayes update
//! `μ' ∝ μ · P(v'|t)`, and scores `max μ' − max μ`. The paper's §4.1
//! identifies the two weaknesses TDH's EAI fixes: sensitivity to the sampled
//! answer and blindness to how much evidence (`D_o`) the object already has.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdh_core::{Assignment, ProbabilisticCrowdModel, TaskAssigner};
use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};

use crate::common::normalize;

/// The QASCA assigner.
#[derive(Debug, Clone)]
pub struct Qasca {
    rng: StdRng,
}

impl Qasca {
    /// A QASCA assigner with a deterministic answer-sampling seed.
    pub fn new(seed: u64) -> Self {
        Qasca {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for Qasca {
    fn default() -> Self {
        Qasca::new(0x9a5c_a000)
    }
}

impl Qasca {
    /// QASCA's quality measure for one pair: sample an answer, Bayes-update,
    /// report the confidence gain (unnormalised by |O| — constant across
    /// pairs, so irrelevant to the ranking).
    fn quality(
        &mut self,
        model: &dyn ProbabilisticCrowdModel,
        idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
    ) -> f64 {
        let k = idx.view(o).n_candidates();
        let mu = model.confidence(o);
        let cur_max = mu.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Sample v' from the model's predicted answer distribution.
        let mut probs: Vec<f64> = (0..k as u32)
            .map(|c| model.answer_likelihood(idx, o, w, c))
            .collect();
        normalize(&mut probs);
        let mut target: f64 = self.rng.random();
        let mut sampled = 0u32;
        for (c, &p) in probs.iter().enumerate() {
            target -= p;
            if target <= 0.0 {
                sampled = c as u32;
                break;
            }
        }
        // One Bayes update with the sampled answer — *not* the incremental
        // EM; QASCA's estimate ignores the evidence mass behind μ.
        let mut post: Vec<f64> = (0..k as u32)
            .map(|t| {
                let lik = single_answer_likelihood(model, idx, o, w, sampled, t);
                mu[t as usize] * lik
            })
            .collect();
        normalize(&mut post);
        let new_max = post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        new_max - cur_max
    }
}

/// `P(answer = c | truth = t)` for the sampled-answer update, recovered from
/// the model's marginal likelihoods by a symmetric-error approximation:
/// the model only exposes marginals, so QASCA's update uses the worker's
/// exact-answer probability for `c == t` and spreads the rest uniformly —
/// which is exactly the worker model QASCA was published with.
fn single_answer_likelihood(
    model: &dyn ProbabilisticCrowdModel,
    idx: &ObservationIndex,
    o: ObjectId,
    w: WorkerId,
    c: u32,
    t: u32,
) -> f64 {
    let k = idx.view(o).n_candidates();
    let q = model.worker_exact_prob(w).clamp(1e-6, 1.0 - 1e-6);
    if c == t {
        q
    } else if k > 1 {
        (1.0 - q) / (k - 1) as f64
    } else {
        0.0
    }
}

impl TaskAssigner for Qasca {
    fn name(&self) -> &'static str {
        "QASCA"
    }

    fn assign(
        &mut self,
        model: &dyn ProbabilisticCrowdModel,
        _ds: &Dataset,
        idx: &ObservationIndex,
        workers: &[WorkerId],
        k: usize,
    ) -> Vec<Assignment> {
        // Score all feasible pairs, then greedily allocate: best first, each
        // object to one worker, k per worker.
        let mut scored: Vec<(f64, usize, ObjectId)> = Vec::new();
        for (wi, &w) in workers.iter().enumerate() {
            for oi in 0..idx.n_objects() {
                let o = ObjectId::from_index(oi);
                if idx.view(o).n_candidates() < 2 || idx.has_answered(w, o) {
                    continue;
                }
                scored.push((self.quality(model, idx, o, w), wi, o));
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut taken = vec![false; idx.n_objects()];
        let mut batches: Vec<Vec<ObjectId>> = vec![Vec::new(); workers.len()];
        for (_, wi, o) in scored {
            if taken[o.index()] || batches[wi].len() >= k {
                continue;
            }
            taken[o.index()] = true;
            batches[wi].push(o);
        }
        workers
            .iter()
            .zip(batches)
            .map(|(&w, objects)| Assignment { worker: w, objects })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_core::{TdhConfig, TdhModel, TruthDiscovery};
    use tdh_hierarchy::HierarchyBuilder;

    fn fitted() -> (Dataset, ObservationIndex, TdhModel) {
        let mut b = HierarchyBuilder::new();
        for c in 0..3 {
            for t in 0..3 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        for i in 0..12 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 3, i % 3)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 3, i % 3))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, s1, t);
            ds.add_record(o, s2, if i % 2 == 0 { f } else { t });
        }
        ds.intern_worker("w0");
        ds.intern_worker("w1");
        let idx = ObservationIndex::build(&ds);
        let mut m = TdhModel::new(TdhConfig::default());
        m.infer(&ds, &idx);
        (ds, idx, m)
    }

    #[test]
    fn respects_k_and_uniqueness() {
        let (ds, idx, model) = fitted();
        let workers: Vec<_> = ds.workers().collect();
        let mut q = Qasca::default();
        let batches = q.assign(&model, &ds, &idx, &workers, 2);
        let mut seen = std::collections::HashSet::new();
        for b in &batches {
            assert!(b.objects.len() <= 2);
            for &o in &b.objects {
                assert!(seen.insert(o));
            }
        }
    }

    #[test]
    fn prefers_contested_objects() {
        let (ds, idx, model) = fitted();
        let workers: Vec<_> = ds.workers().collect();
        let mut q = Qasca::default();
        let batches = q.assign(&model, &ds, &idx, &workers, 3);
        // Contested objects are the even ones; the assigned set should be
        // dominated by them.
        let assigned: Vec<ObjectId> = batches.iter().flat_map(|b| b.objects.clone()).collect();
        let contested = assigned.iter().filter(|o| o.index() % 2 == 0).count();
        assert!(
            contested * 2 >= assigned.len(),
            "contested objects should dominate: {assigned:?}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (ds, idx, model) = fitted();
        let workers: Vec<_> = ds.workers().collect();
        let a = Qasca::new(7).assign(&model, &ds, &idx, &workers, 2);
        let b = Qasca::new(7).assign(&model, &ds, &idx, &workers, 2);
        assert_eq!(a, b);
    }
}
