//! LFC — Learning From Crowds (Raykar et al., JMLR 2010).
//!
//! Confusion-matrix truth discovery: every source (and worker) carries a
//! per-value confusion distribution `π_s(claim | truth)`, estimated jointly
//! with the truths by EM. Claimed values live in the hierarchy's node
//! vocabulary, so the confusion matrix is *value × value* — "the square of
//! the number of candidate values", which is exactly why the TDH paper finds
//! LFC the slowest algorithm on the large-vocabulary BirthPlaces corpus
//! (Fig. 12). We store it sparsely (only observed pairs) with Laplace
//! smoothing for unobserved ones.
//!
//! [`LfcMt`] is the multi-truth reading of the same machinery used in
//! Table 5: per (object, value) a latent Bernoulli truth with per-source
//! sensitivity/specificity — i.e. Raykar's original binary formulation
//! applied value-wise.

use std::collections::HashMap;

use tdh_core::{TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObservationIndex};
use tdh_hierarchy::NodeId;

use crate::common::{normalize, truths_from_confidences};
use crate::MultiTruthDiscovery;

/// Configuration shared by [`Lfc`] and [`LfcMt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfcConfig {
    /// EM iterations.
    pub max_iters: usize,
    /// Laplace smoothing mass per confusion cell.
    pub smoothing: f64,
}

impl Default for LfcConfig {
    fn default() -> Self {
        LfcConfig {
            max_iters: 25,
            smoothing: 0.5,
        }
    }
}

/// Sparse per-participant confusion statistics. Participants are sources
/// and workers folded into one id space (workers after sources).
#[derive(Debug, Clone, Default)]
struct Confusion {
    /// Expected count of (truth, claim) pairs per participant.
    counts: Vec<HashMap<(NodeId, NodeId), f64>>,
    /// Expected truth marginal per participant.
    truth_mass: Vec<HashMap<NodeId, f64>>,
    /// Distinct value vocabulary size (for smoothing).
    vocab: f64,
    smoothing: f64,
}

impl Confusion {
    fn new(n_participants: usize, vocab: usize, smoothing: f64) -> Self {
        Confusion {
            counts: vec![HashMap::new(); n_participants],
            truth_mass: vec![HashMap::new(); n_participants],
            vocab: vocab as f64,
            smoothing,
        }
    }

    /// `π_p(claim | truth)` with Laplace smoothing.
    fn prob(&self, p: usize, truth: NodeId, claim: NodeId) -> f64 {
        let c = self.counts[p].get(&(truth, claim)).copied().unwrap_or(0.0);
        let t = self.truth_mass[p].get(&truth).copied().unwrap_or(0.0);
        (c + self.smoothing) / (t + self.smoothing * self.vocab)
    }

    fn add(&mut self, p: usize, truth: NodeId, claim: NodeId, weight: f64) {
        *self.counts[p].entry((truth, claim)).or_insert(0.0) += weight;
        *self.truth_mass[p].entry(truth).or_insert(0.0) += weight;
    }

    fn clear(&mut self) {
        for m in &mut self.counts {
            m.clear();
        }
        for m in &mut self.truth_mass {
            m.clear();
        }
    }
}

/// The single-truth LFC algorithm.
#[derive(Debug, Clone)]
pub struct Lfc {
    cfg: LfcConfig,
}

impl Lfc {
    /// LFC with the given configuration.
    pub fn new(cfg: LfcConfig) -> Self {
        Lfc { cfg }
    }
}

impl Default for Lfc {
    fn default() -> Self {
        Lfc::new(LfcConfig::default())
    }
}

impl TruthDiscovery for Lfc {
    fn name(&self) -> &'static str {
        "LFC"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let n_sources = ds.n_sources();
        let n_participants = n_sources + ds.n_workers().max(idx.n_workers());
        // Vocabulary: distinct values claimed anywhere.
        let vocab: std::collections::HashSet<NodeId> = idx
            .views()
            .iter()
            .flat_map(|v| v.candidates.iter().copied())
            .collect();
        let mut confusion = Confusion::new(n_participants, vocab.len().max(2), self.cfg.smoothing);

        // Init μ from claim frequencies.
        let mut confidences: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|view| {
                let mut f: Vec<f64> = (0..view.n_candidates())
                    .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 0.5)
                    .collect();
                normalize(&mut f);
                f
            })
            .collect();

        for _ in 0..self.cfg.max_iters {
            // M-step (first, from current μ): expected confusion counts.
            confusion.clear();
            for (oi, view) in idx.views().iter().enumerate() {
                let mu = &confidences[oi];
                for &(s, c) in &view.sources {
                    let claim = view.candidates[c as usize];
                    for (t, &m) in mu.iter().enumerate() {
                        confusion.add(s.index(), view.candidates[t], claim, m);
                    }
                }
                for &(w, c) in &view.workers {
                    let claim = view.candidates[c as usize];
                    for (t, &m) in mu.iter().enumerate() {
                        confusion.add(n_sources + w.index(), view.candidates[t], claim, m);
                    }
                }
            }
            // E-step: posterior truths under the confusion matrices.
            for (oi, view) in idx.views().iter().enumerate() {
                let k = view.n_candidates();
                if k == 0 {
                    continue;
                }
                let mut post = vec![1.0f64; k];
                for &(s, c) in &view.sources {
                    let claim = view.candidates[c as usize];
                    for (t, p) in post.iter_mut().enumerate() {
                        *p *= confusion.prob(s.index(), view.candidates[t], claim);
                    }
                }
                for &(w, c) in &view.workers {
                    let claim = view.candidates[c as usize];
                    for (t, p) in post.iter_mut().enumerate() {
                        *p *= confusion.prob(n_sources + w.index(), view.candidates[t], claim);
                    }
                }
                normalize(&mut post);
                confidences[oi] = post;
            }
        }

        TruthEstimate {
            truths: truths_from_confidences(idx, &confidences),
            confidences,
        }
    }
}

/// The multi-truth reading of LFC (Table 5's LFC-MT): an independent
/// Bernoulli truth per (object, candidate value), with per-participant
/// sensitivity `a_p = P(claim v | v true)` and specificity
/// `b_p = P(not claim v | v false)` estimated by EM.
#[derive(Debug, Clone)]
pub struct LfcMt {
    cfg: LfcConfig,
}

impl LfcMt {
    /// LFC-MT with the given configuration.
    pub fn new(cfg: LfcConfig) -> Self {
        LfcMt { cfg }
    }
}

impl Default for LfcMt {
    fn default() -> Self {
        LfcMt::new(LfcConfig::default())
    }
}

impl MultiTruthDiscovery for LfcMt {
    fn name(&self) -> &'static str {
        "LFC-MT"
    }

    fn infer_multi(&mut self, ds: &Dataset, idx: &ObservationIndex) -> Vec<Vec<NodeId>> {
        let n_sources = ds.n_sources();
        let n_participants = n_sources + ds.n_workers().max(idx.n_workers());
        let mut sens = vec![0.45f64; n_participants];
        let mut spec = vec![0.85f64; n_participants];

        // Probability each (object, candidate) is true; init from support.
        let mut p_true: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|view| {
                let total = (view.sources.len() + view.workers.len()).max(1) as f64;
                (0..view.n_candidates())
                    .map(|v| {
                        (f64::from(view.source_count[v] + view.worker_count[v]) / total)
                            .clamp(0.05, 0.95)
                    })
                    .collect()
            })
            .collect();

        for _ in 0..self.cfg.max_iters {
            // E-step: per (o, v) Bernoulli posterior given who claimed it.
            for (oi, view) in idx.views().iter().enumerate() {
                let k = view.n_candidates();
                for v in 0..k {
                    // Prior: popularity-shaped, weakly informative.
                    let mut log_odds = 0.0f64;
                    let participants = view.sources.iter().map(|&(s, c)| (s.index(), c)).chain(
                        view.workers
                            .iter()
                            .map(|&(w, c)| (n_sources + w.index(), c)),
                    );
                    for (p, c) in participants {
                        let claimed = c as usize == v;
                        let (a, b) = (sens[p].clamp(0.01, 0.99), spec[p].clamp(0.01, 0.99));
                        let l_true = if claimed { a } else { 1.0 - a };
                        let l_false = if claimed { 1.0 - b } else { b };
                        log_odds += (l_true / l_false).ln();
                    }
                    p_true[oi][v] = 1.0 / (1.0 + (-log_odds).exp());
                }
            }
            // M-step: expected sensitivity/specificity per participant.
            let mut a_num = vec![0.5f64; n_participants];
            let mut a_den = vec![1.0f64; n_participants];
            let mut b_num = vec![0.5f64; n_participants];
            let mut b_den = vec![1.0f64; n_participants];
            for (oi, view) in idx.views().iter().enumerate() {
                let parts: Vec<(usize, u32)> = view
                    .sources
                    .iter()
                    .map(|&(s, c)| (s.index(), c))
                    .chain(
                        view.workers
                            .iter()
                            .map(|&(w, c)| (n_sources + w.index(), c)),
                    )
                    .collect();
                for v in 0..view.n_candidates() {
                    let z = p_true[oi][v];
                    for &(p, c) in &parts {
                        let claimed = c as usize == v;
                        if claimed {
                            a_num[p] += z;
                            b_num[p] += 0.0;
                        } else {
                            b_num[p] += 1.0 - z;
                        }
                        a_den[p] += z;
                        b_den[p] += 1.0 - z;
                    }
                }
            }
            for p in 0..n_participants {
                sens[p] = a_num[p] / a_den[p];
                spec[p] = b_num[p] / b_den[p];
            }
        }

        idx.views()
            .iter()
            .zip(&p_true)
            .map(|(view, probs)| {
                view.candidates
                    .iter()
                    .zip(probs)
                    .filter(|&(_, &p)| p > 0.5)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let liar = ds.intern_source("liar");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, good1, t);
            ds.add_record(o, good2, t);
            ds.add_record(o, liar, f);
        }
        ds
    }

    #[test]
    fn lfc_recovers_truths() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = Lfc::default().infer(&ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
    }

    #[test]
    fn lfc_confidences_normalised() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = Lfc::default().infer(&ds, &idx);
        for mu in &est.confidences {
            if !mu.is_empty() {
                assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lfc_mt_finds_majority_backed_values() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let sets = LfcMt::default().infer_multi(&ds, &idx);
        for o in ds.objects() {
            let gold = ds.gold(o).unwrap();
            assert!(
                sets[o.index()].contains(&gold),
                "gold missing from multi-truth set of {o:?}"
            );
        }
    }

    #[test]
    fn lfc_mt_excludes_singleton_lies_when_majority_is_strong() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let sets = LfcMt::default().infer_multi(&ds, &idx);
        // The liar's value is claimed once vs twice for the truth; with
        // learned reliabilities it should usually be excluded.
        let mut exclusions = 0;
        for o in ds.objects() {
            let gold = ds.gold(o).unwrap();
            if sets[o.index()].iter().all(|&v| v == gold) {
                exclusions += 1;
            }
        }
        assert!(
            exclusions >= 12,
            "liar's values excluded on only {exclusions}/24 objects"
        );
    }
}
