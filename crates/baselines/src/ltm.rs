//! LTM — the Latent Truth Model (Zhao et al., PVLDB 2012).
//!
//! A multi-truth model: every (object, value) pair carries an independent
//! Bernoulli truth label, and every source two quality parameters — a false
//! positive rate (it claims values that are false) and a sensitivity (it
//! claims values that are true). The published inference is collapsed Gibbs
//! sampling over the truth labels with Beta priors on the rates; we run the
//! same model with mean-field (soft) updates for determinism, which
//! converges to the same posterior means on this model family.
//!
//! Observation model per (object `o`, value `v`, source `s ∈ S_o`):
//! the source either *claims* `v` (it asserted exactly `v` for `o`) or
//! implicitly *denies* it (it asserted something else).

use tdh_core::TruthDiscovery;
use tdh_data::{Dataset, ObservationIndex};
use tdh_hierarchy::NodeId;

use crate::common::normalize;
use crate::MultiTruthDiscovery;

/// Configuration for [`Ltm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtmConfig {
    /// Mean-field iterations.
    pub max_iters: usize,
    /// Beta prior on sensitivity (true positive rate): `(α1, β1)`.
    pub sensitivity_prior: (f64, f64),
    /// Beta prior on the false positive rate: `(α0, β0)` — biased low,
    /// sources rarely invent values.
    pub fpr_prior: (f64, f64),
    /// Prior probability that a claimed value is true.
    pub truth_prior: f64,
}

impl Default for LtmConfig {
    fn default() -> Self {
        LtmConfig {
            max_iters: 25,
            // A source asserts only ONE value per object, so against a
            // truth set of several values per object its per-value
            // sensitivity is well below one half.
            sensitivity_prior: (1.5, 3.5),
            fpr_prior: (1.0, 7.0),
            truth_prior: 0.5,
        }
    }
}

/// The LTM algorithm.
#[derive(Debug, Clone)]
pub struct Ltm {
    cfg: LtmConfig,
    sensitivity: Vec<f64>,
    fpr: Vec<f64>,
}

impl Ltm {
    /// LTM with the given configuration.
    pub fn new(cfg: LtmConfig) -> Self {
        Ltm {
            cfg,
            sensitivity: Vec::new(),
            fpr: Vec::new(),
        }
    }

    /// Per-(object, candidate) truth probabilities (the model's real
    /// output; [`MultiTruthDiscovery::infer_multi`] thresholds them).
    pub fn truth_probabilities(&mut self, ds: &Dataset, idx: &ObservationIndex) -> Vec<Vec<f64>> {
        let n_sources = ds.n_sources();
        let n_participants = n_sources + ds.n_workers().max(idx.n_workers());
        let sp = self.cfg.sensitivity_prior;
        let fp = self.cfg.fpr_prior;
        self.sensitivity = vec![sp.0 / (sp.0 + sp.1); n_participants];
        self.fpr = vec![fp.0 / (fp.0 + fp.1); n_participants];

        let mut p_true: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|view| vec![self.cfg.truth_prior; view.n_candidates()])
            .collect();

        let prior_logit = (self.cfg.truth_prior / (1.0 - self.cfg.truth_prior)).ln();
        for _ in 0..self.cfg.max_iters {
            // E-step: truth posterior per (o, v).
            for (oi, view) in idx.views().iter().enumerate() {
                for v in 0..view.n_candidates() {
                    let mut log_odds = prior_logit;
                    let parts = view.sources.iter().map(|&(s, c)| (s.index(), c)).chain(
                        view.workers
                            .iter()
                            .map(|&(w, c)| (n_sources + w.index(), c)),
                    );
                    for (p, c) in parts {
                        let claimed = c as usize == v;
                        let sens = self.sensitivity[p].clamp(0.01, 0.99);
                        let fpr = self.fpr[p].clamp(0.01, 0.99);
                        let (lt, lf) = if claimed {
                            (sens, fpr)
                        } else {
                            (1.0 - sens, 1.0 - fpr)
                        };
                        log_odds += (lt / lf).ln();
                    }
                    p_true[oi][v] = 1.0 / (1.0 + (-log_odds).exp());
                }
            }
            // M-step: posterior-mean rates under the Beta priors.
            let mut s_num = vec![sp.0; n_participants];
            let mut s_den = vec![sp.0 + sp.1; n_participants];
            let mut f_num = vec![fp.0; n_participants];
            let mut f_den = vec![fp.0 + fp.1; n_participants];
            for (oi, view) in idx.views().iter().enumerate() {
                let parts: Vec<(usize, u32)> = view
                    .sources
                    .iter()
                    .map(|&(s, c)| (s.index(), c))
                    .chain(
                        view.workers
                            .iter()
                            .map(|&(w, c)| (n_sources + w.index(), c)),
                    )
                    .collect();
                for v in 0..view.n_candidates() {
                    let z = p_true[oi][v];
                    for &(p, c) in &parts {
                        let claimed = c as usize == v;
                        if claimed {
                            s_num[p] += z;
                            f_num[p] += 1.0 - z;
                        }
                        s_den[p] += z;
                        f_den[p] += 1.0 - z;
                    }
                }
            }
            for p in 0..n_participants {
                self.sensitivity[p] = s_num[p] / s_den[p];
                self.fpr[p] = f_num[p] / f_den[p];
            }
        }
        p_true
    }
}

impl Default for Ltm {
    fn default() -> Self {
        Ltm::new(LtmConfig::default())
    }
}

impl MultiTruthDiscovery for Ltm {
    fn name(&self) -> &'static str {
        "LTM"
    }

    fn infer_multi(&mut self, ds: &Dataset, idx: &ObservationIndex) -> Vec<Vec<NodeId>> {
        let probs = self.truth_probabilities(ds, idx);
        idx.views()
            .iter()
            .zip(&probs)
            .map(|(view, p)| {
                view.candidates
                    .iter()
                    .zip(p)
                    .filter(|&(_, &q)| q > 0.5)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .collect()
    }
}

/// Single-truth adaptation: take the highest-probability value. This lets
/// LTM drop into the single-truth harness when needed.
impl TruthDiscovery for Ltm {
    fn name(&self) -> &'static str {
        "LTM"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> tdh_core::TruthEstimate {
        let probs = self.truth_probabilities(ds, idx);
        let confidences: Vec<Vec<f64>> = probs
            .into_iter()
            .map(|mut p| {
                normalize(&mut p);
                p
            })
            .collect();
        tdh_core::TruthEstimate::from_confidences(idx, confidences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let g1 = ds.intern_source("g1");
        let g2 = ds.intern_source("g2");
        let g3 = ds.intern_source("g3");
        let liar = ds.intern_source("liar");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, g1, t);
            ds.add_record(o, g2, t);
            ds.add_record(o, g3, t);
            ds.add_record(o, liar, f);
        }
        ds
    }

    #[test]
    fn truth_sets_contain_gold_and_drop_lies() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let sets = Ltm::default().infer_multi(&ds, &idx);
        for o in ds.objects() {
            let gold = ds.gold(o).unwrap();
            assert!(sets[o.index()].contains(&gold));
            assert_eq!(
                sets[o.index()].len(),
                1,
                "3v1 should keep only the gold value"
            );
        }
    }

    #[test]
    fn sensitivity_separates_sources() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut ltm = Ltm::default();
        ltm.infer_multi(&ds, &idx);
        // The liar claims false values: higher FPR than the good sources.
        assert!(ltm.fpr[3] > ltm.fpr[0]);
    }

    #[test]
    fn single_truth_view_matches_gold() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = TruthDiscovery::infer(&mut Ltm::default(), &ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
    }
}
