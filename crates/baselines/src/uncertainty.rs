//! ME: uncertainty-sampling task assignment.
//!
//! The paper's baseline assigner: pick the objects whose confidence
//! distribution has the maximum entropy,
//! `o* = argmax_o ( −Σ_v μ_{o,v} ln μ_{o,v} )`. Uncertainty alone ignores
//! how much an extra answer can *move* the estimate — the weakness EAI's
//! evidence-aware measure fixes.

use tdh_core::{Assignment, ProbabilisticCrowdModel, TaskAssigner};
use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};

use crate::common::entropy;

/// Maximum-entropy (uncertainty sampling) assigner.
#[derive(Debug, Clone, Default)]
pub struct MeAssigner;

impl TaskAssigner for MeAssigner {
    fn name(&self) -> &'static str {
        "ME"
    }

    fn assign(
        &mut self,
        model: &dyn ProbabilisticCrowdModel,
        _ds: &Dataset,
        idx: &ObservationIndex,
        workers: &[WorkerId],
        k: usize,
    ) -> Vec<Assignment> {
        let mut scored: Vec<(f64, ObjectId)> = (0..idx.n_objects())
            .map(ObjectId::from_index)
            .filter(|&o| idx.view(o).n_candidates() >= 2)
            .map(|o| (entropy(model.confidence(o)), o))
            .filter(|&(h, _)| h > 0.0)
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));

        // Round-robin the most uncertain objects over the workers, each
        // object to a single worker per round.
        let mut batches: Vec<Vec<ObjectId>> = vec![Vec::new(); workers.len()];
        let mut cursor = 0usize;
        for (_, o) in scored {
            if batches.iter().all(|b| b.len() >= k) {
                break;
            }
            // Find the next worker (in rotation) who can still take `o`.
            let mut placed = false;
            for step in 0..workers.len() {
                let wi = (cursor + step) % workers.len();
                if batches[wi].len() < k && !idx.has_answered(workers[wi], o) {
                    batches[wi].push(o);
                    cursor = (wi + 1) % workers.len();
                    placed = true;
                    break;
                }
            }
            if !placed {
                continue;
            }
        }
        workers
            .iter()
            .zip(batches)
            .map(|(&w, objects)| Assignment { worker: w, objects })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Vote;
    use tdh_core::TruthDiscovery;
    use tdh_hierarchy::HierarchyBuilder;

    /// A model wrapper good enough for testing the assigner: VOTE
    /// confidences with a uniform worker.
    struct VoteModel {
        conf: Vec<Vec<f64>>,
    }

    impl TruthDiscovery for VoteModel {
        fn name(&self) -> &'static str {
            "vote-model"
        }
        fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> tdh_core::TruthEstimate {
            let est = Vote.infer(ds, idx);
            self.conf = est.confidences.clone();
            est
        }
    }

    impl ProbabilisticCrowdModel for VoteModel {
        fn confidence(&self, o: ObjectId) -> &[f64] {
            &self.conf[o.index()]
        }
        fn worker_exact_prob(&self, _w: WorkerId) -> f64 {
            0.7
        }
        fn answer_likelihood(
            &self,
            _idx: &ObservationIndex,
            o: ObjectId,
            _w: WorkerId,
            c: u32,
        ) -> f64 {
            self.conf[o.index()][c as usize]
        }
        fn posterior_given_answer(
            &self,
            _idx: &ObservationIndex,
            o: ObjectId,
            _w: WorkerId,
            _c: u32,
        ) -> Vec<f64> {
            self.conf[o.index()].clone()
        }
        fn evidence_weight(&self, o: ObjectId) -> f64 {
            self.conf[o.index()].len() as f64
        }
    }

    fn fixture() -> (Dataset, ObservationIndex, VoteModel) {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        b.add_path(&["X", "B"]);
        let mut ds = Dataset::new(b.build());
        let a = ds.hierarchy().node_by_name("A").unwrap();
        let bb = ds.hierarchy().node_by_name("B").unwrap();
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        // o0: contested 1v1 (max entropy); o1: 2v1; o2: unanimous.
        let o0 = ds.intern_object("o0");
        ds.add_record(o0, s1, a);
        ds.add_record(o0, s2, bb);
        let o1 = ds.intern_object("o1");
        ds.add_record(o1, s1, a);
        ds.add_record(o1, s2, a);
        ds.add_record(o1, s3, bb);
        let o2 = ds.intern_object("o2");
        ds.add_record(o2, s1, a);
        ds.add_record(o2, s2, a);
        let _ = ds.intern_worker("w0");
        let _ = ds.intern_worker("w1");
        let idx = ObservationIndex::build(&ds);
        let mut model = VoteModel { conf: Vec::new() };
        model.infer(&ds, &idx);
        (ds, idx, model)
    }

    #[test]
    fn most_uncertain_first_and_no_duplicates() {
        let (ds, idx, model) = fixture();
        let workers: Vec<_> = ds.workers().collect();
        let batches = MeAssigner.assign(&model, &ds, &idx, &workers, 1);
        // o0 (entropy ln 2) goes to the first worker; o1 to the second.
        assert_eq!(batches[0].objects, vec![ObjectId(0)]);
        assert_eq!(batches[1].objects, vec![ObjectId(1)]);
    }

    #[test]
    fn unanimous_objects_are_never_assigned() {
        let (ds, idx, model) = fixture();
        let workers: Vec<_> = ds.workers().collect();
        let batches = MeAssigner.assign(&model, &ds, &idx, &workers, 5);
        for b in &batches {
            assert!(!b.objects.contains(&ObjectId(2)), "o2 has zero entropy");
        }
    }

    #[test]
    fn answered_pairs_are_skipped() {
        let (mut ds, mut idx, model) = fixture();
        let w0 = WorkerId(0);
        let a = ds.hierarchy().node_by_name("A").unwrap();
        ds.add_answer(ObjectId(0), w0, a);
        idx.push_answer(*ds.answers().last().unwrap());
        let batches = MeAssigner.assign(&model, &ds, &idx, &[w0], 5);
        assert!(!batches[0].objects.contains(&ObjectId(0)));
    }
}
