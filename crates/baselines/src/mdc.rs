//! MDC (Li et al., WSDM 2017): truth discovery for crowdsourced medical
//! diagnosis — joint estimation of participant reliability and *question
//! difficulty*.
//!
//! The published model observes that a wrong answer to an easy question
//! is stronger evidence of unreliability than a wrong answer to a hard one.
//! We implement its core: each participant `p` has reliability `r_p`, each
//! object a difficulty `d_o ∈ [0, 1)`, and the probability of answering
//! correctly is the discounted reliability `r_p·(1 − d_o)`, spread over the
//! `k` candidates through a symmetric error model. Reliability, difficulty
//! and truths are iterated to a fixed point (an EM in which the difficulty
//! update is the disagreement rate under the current truths).

use tdh_core::{TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObservationIndex};

use crate::common::{normalize, truths_from_confidences};

/// Configuration for [`Mdc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdcConfig {
    /// Fixed-point iterations.
    pub max_iters: usize,
    /// Initial participant reliability.
    pub initial_reliability: f64,
    /// Cap on question difficulty (keeps the correct-answer probability
    /// bounded away from zero).
    pub max_difficulty: f64,
}

impl Default for MdcConfig {
    fn default() -> Self {
        MdcConfig {
            max_iters: 20,
            initial_reliability: 0.7,
            max_difficulty: 0.8,
        }
    }
}

/// The MDC algorithm.
#[derive(Debug, Clone)]
pub struct Mdc {
    cfg: MdcConfig,
    /// Reliability per participant (sources, then workers).
    reliability: Vec<f64>,
    /// Difficulty per object.
    difficulty: Vec<f64>,
}

impl Mdc {
    /// MDC with the given configuration.
    pub fn new(cfg: MdcConfig) -> Self {
        Mdc {
            cfg,
            reliability: Vec::new(),
            difficulty: Vec::new(),
        }
    }

    /// Estimated difficulty of object `o` after fitting.
    pub fn difficulty(&self, o: tdh_data::ObjectId) -> f64 {
        self.difficulty[o.index()]
    }

    fn likelihood(r: f64, d: f64, k: usize, c: u32, t: u32) -> f64 {
        let a = (r * (1.0 - d)).clamp(0.01, 0.99);
        if c == t {
            a + (1.0 - a) / k as f64
        } else {
            (1.0 - a) / k as f64
        }
    }
}

impl Default for Mdc {
    fn default() -> Self {
        Mdc::new(MdcConfig::default())
    }
}

impl TruthDiscovery for Mdc {
    fn name(&self) -> &'static str {
        "MDC"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let n_sources = ds.n_sources();
        let n_participants = n_sources + ds.n_workers().max(idx.n_workers());
        self.reliability = vec![self.cfg.initial_reliability; n_participants];
        self.difficulty = vec![0.3; idx.n_objects()];
        let mut confidences: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|view| {
                let mut f: Vec<f64> = (0..view.n_candidates())
                    .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 0.5)
                    .collect();
                normalize(&mut f);
                f
            })
            .collect();

        for _ in 0..self.cfg.max_iters {
            // E-step: truth posterior under reliability × difficulty.
            for (oi, view) in idx.views().iter().enumerate() {
                let k = view.n_candidates();
                if k == 0 {
                    continue;
                }
                let d = self.difficulty[oi];
                let mut post = vec![1.0f64; k];
                let parts = view.sources.iter().map(|&(s, c)| (s.index(), c)).chain(
                    view.workers
                        .iter()
                        .map(|&(w, c)| (n_sources + w.index(), c)),
                );
                for (p, c) in parts {
                    let r = self.reliability[p];
                    for (t, q) in post.iter_mut().enumerate() {
                        *q *= Mdc::likelihood(r, d, k, c, t as u32);
                    }
                }
                normalize(&mut post);
                confidences[oi] = post;
            }
            let truths = truths_from_confidences(idx, &confidences);

            // M-step (reliability): expected agreement, deflated by how hard
            // the answered questions were.
            let mut num = vec![0.5f64; n_participants];
            let mut den = vec![1.0f64; n_participants];
            for (oi, view) in idx.views().iter().enumerate() {
                let weight = 1.0 - self.difficulty[oi];
                let parts = view.sources.iter().map(|&(s, c)| (s.index(), c)).chain(
                    view.workers
                        .iter()
                        .map(|&(w, c)| (n_sources + w.index(), c)),
                );
                for (p, c) in parts {
                    num[p] += confidences[oi][c as usize] * weight;
                    den[p] += weight;
                }
            }
            for p in 0..n_participants {
                self.reliability[p] = (num[p] / den[p]).clamp(0.05, 0.99);
            }

            // M-step (difficulty): disagreement rate with the current truth.
            for (oi, view) in idx.views().iter().enumerate() {
                let Some(t) = truths[oi] else { continue };
                let total = (view.sources.len() + view.workers.len()) as f64;
                if total == 0.0 {
                    continue;
                }
                let agree: f64 = view
                    .sources
                    .iter()
                    .map(|&(_, c)| c)
                    .chain(view.workers.iter().map(|&(_, c)| c))
                    .filter(|&c| view.candidates[c as usize] == t)
                    .count() as f64;
                self.difficulty[oi] = ((1.0 - agree / total) * 0.9).min(self.cfg.max_difficulty);
            }
        }

        TruthEstimate {
            truths: truths_from_confidences(idx, &confidences),
            confidences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::ObjectId;
    use tdh_hierarchy::HierarchyBuilder;

    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let good3 = ds.intern_source("good3");
        let liar = ds.intern_source("liar");
        for i in 0..24 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let f = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, good1, t);
            ds.add_record(o, good2, t);
            // Half the objects are "hard": the third good source errs too.
            if i % 2 == 0 {
                ds.add_record(o, good3, t);
            } else {
                ds.add_record(o, good3, f);
            }
            ds.add_record(o, liar, f);
        }
        ds
    }

    #[test]
    fn recovers_truths() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let est = Mdc::default().infer(&ds, &idx);
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o));
        }
    }

    #[test]
    fn contested_objects_are_harder() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut mdc = Mdc::default();
        mdc.infer(&ds, &idx);
        // Object 1 (2v2) should be rated harder than object 0 (3v1).
        assert!(
            mdc.difficulty(ObjectId(1)) > mdc.difficulty(ObjectId(0)),
            "2v2 difficulty {} vs 3v1 difficulty {}",
            mdc.difficulty(ObjectId(1)),
            mdc.difficulty(ObjectId(0))
        );
    }

    #[test]
    fn reliability_separates_good_from_liar() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let mut mdc = Mdc::default();
        mdc.infer(&ds, &idx);
        assert!(mdc.reliability[0] > mdc.reliability[3]);
    }
}
