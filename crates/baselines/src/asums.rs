//! ASUMS (Beretta et al., WIMS 2016): the SUMS fixed point adapted to
//! hierarchies — the only prior work that uses hierarchies for truth
//! discovery, and TDH's most direct competitor.
//!
//! SUMS (Pasternack & Roth 2010) runs a hubs-and-authorities iteration
//! between source trust `t(s)` and value belief `B(v)`. ASUMS adapts it by
//! letting a claim support *its ancestors* as well: `B_o(v) = Σ t(s)` over
//! sources whose claim is `v` or a descendant of `v`. Truth selection then
//! needs a granularity threshold `τ`: the deepest candidate whose belief is
//! at least `τ · max_v B_o(v)` wins — the threshold the TDH paper calls out
//! as ASUMS's structural drawback.
//!
//! Because `t(s)` is a *single* number, a source that systematically
//! generalizes gets blamed for "missing" the specific truth — the
//! reliability-underestimation effect Figure 5 demonstrates.

use tdh_core::{TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObservationIndex, SourceId};

use crate::common::normalize;
use tdh_hierarchy::NodeId;

/// Configuration for [`Asums`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsumsConfig {
    /// Fixed-point iterations.
    pub max_iters: usize,
    /// Granularity threshold `τ`: the deepest candidate with belief
    /// `≥ τ · max` is selected.
    pub tau: f64,
}

impl Default for AsumsConfig {
    fn default() -> Self {
        AsumsConfig {
            max_iters: 20,
            tau: 0.8,
        }
    }
}

/// The ASUMS algorithm.
#[derive(Debug, Clone)]
pub struct Asums {
    cfg: AsumsConfig,
    trust: Vec<f64>,
}

impl Asums {
    /// ASUMS with the given configuration.
    pub fn new(cfg: AsumsConfig) -> Self {
        Asums {
            cfg,
            trust: Vec::new(),
        }
    }

    /// The fitted scalar trust `t(s)` — the quantity Figure 5 plots against
    /// TDH's `φ_s`.
    pub fn source_trust(&self, s: SourceId) -> f64 {
        self.trust[s.index()]
    }
}

impl Default for Asums {
    fn default() -> Self {
        Asums::new(AsumsConfig::default())
    }
}

impl TruthDiscovery for Asums {
    fn name(&self) -> &'static str {
        "ASUMS"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let h = ds.hierarchy();
        self.trust = vec![0.5; ds.n_sources()];
        let mut worker_trust = 0.5f64;
        let mut beliefs: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|v| vec![0.0; v.n_candidates()])
            .collect();

        // Per candidate, the set of candidate indices it supports: itself
        // plus its candidate ancestors.
        let supports: Vec<Vec<Vec<u32>>> = idx
            .views()
            .iter()
            .map(|view| {
                (0..view.n_candidates() as u32)
                    .map(|c| {
                        let mut sup = vec![c];
                        sup.extend(view.ancestors[c as usize].iter().copied());
                        sup
                    })
                    .collect()
            })
            .collect();

        for _ in 0..self.cfg.max_iters {
            // Belief step: B_o(v) = Σ trust over supporting claims.
            for (oi, view) in idx.views().iter().enumerate() {
                let b = &mut beliefs[oi];
                b.iter_mut().for_each(|x| *x = 0.0);
                for &(s, c) in &view.sources {
                    for &v in &supports[oi][c as usize] {
                        b[v as usize] += self.trust[s.index()];
                    }
                }
                for &(_, c) in &view.workers {
                    for &v in &supports[oi][c as usize] {
                        b[v as usize] += worker_trust;
                    }
                }
                // SUMS-style normalisation by the max to prevent blow-up.
                let max = b.iter().copied().fold(0.0f64, f64::max);
                if max > 0.0 {
                    b.iter_mut().for_each(|x| *x /= max);
                }
            }

            // Trust step: t(s) = mean belief of the source's claims.
            let mut num = vec![0.0f64; ds.n_sources()];
            let mut den = vec![0.0f64; ds.n_sources()];
            let mut wnum = 0.0f64;
            let mut wden = 0.0f64;
            for (oi, view) in idx.views().iter().enumerate() {
                for &(s, c) in &view.sources {
                    num[s.index()] += beliefs[oi][c as usize];
                    den[s.index()] += 1.0;
                }
                for &(_, c) in &view.workers {
                    wnum += beliefs[oi][c as usize];
                    wden += 1.0;
                }
            }
            for s in 0..ds.n_sources() {
                if den[s] > 0.0 {
                    self.trust[s] = num[s] / den[s];
                }
            }
            if wden > 0.0 {
                worker_trust = wnum / wden;
            }
        }

        // Truth selection: deepest candidate with belief ≥ τ·max.
        let truths: Vec<Option<NodeId>> = idx
            .views()
            .iter()
            .zip(&beliefs)
            .map(|(view, b)| {
                if view.candidates.is_empty() {
                    return None;
                }
                let max = b.iter().copied().fold(0.0f64, f64::max);
                view.candidates
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| b[i] >= self.cfg.tau * max)
                    .max_by_key(|&(_, &v)| h.depth(v))
                    .map(|(_, &v)| v)
            })
            .collect();

        let confidences = beliefs
            .into_iter()
            .map(|mut b| {
                normalize(&mut b);
                b
            })
            .collect();
        TruthEstimate {
            truths,
            confidences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    #[test]
    fn descendant_claims_support_ancestors() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("sol");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, li);
        ds.add_record(o, s3, la);
        let idx = ObservationIndex::build(&ds);
        let est = Asums::default().infer(&ds, &idx);
        // NY has support 2 (itself + LI's claim); LI has 1; but LI passes
        // the τ = 0.8 bar only if its belief is ≥ 0.8·max. Beliefs: NY = 2t,
        // LI = t, LA = t → LI fails the bar, NY wins.
        assert_eq!(est.truths[0], Some(ny));
    }

    #[test]
    fn threshold_controls_granularity() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("sol");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, li);
        ds.add_record(o, s3, li);
        let idx = ObservationIndex::build(&ds);
        // Beliefs: NY = 3t, LI = 2t. τ = 0.8 → LI (2/3 < 0.8) loses.
        let est_strict = Asums::default().infer(&ds, &idx);
        assert_eq!(est_strict.truths[0], Some(ny));
        // At the SUMS fixed point B(LI) → 0.5·max, so a looser τ = 0.45
        // lets the deeper LI through.
        let est_loose = Asums::new(AsumsConfig {
            tau: 0.45,
            ..Default::default()
        })
        .infer(&ds, &idx);
        assert_eq!(est_loose.truths[0], Some(li));
    }

    #[test]
    fn scalar_trust_misrepresents_reliability() {
        // The Fig. 5 effect: a single scalar trust cannot represent both
        // reliability and generalization tendency. Here the *exact* sources
        // are 100% accurate, yet their trust collapses to ≈ 0.5 because the
        // generalizer's ancestor value absorbs everyone's support — t(s)
        // diverges badly from the source's actual accuracy, which is what
        // the paper shows for sources 4, 5 and 7.
        let mut b = HierarchyBuilder::new();
        for i in 0..10 {
            b.add_path(&[&format!("C{i}"), &format!("R{i}"), &format!("T{i}")]);
        }
        let mut ds = Dataset::new(b.build());
        let exact = ds.intern_source("exact");
        let exact2 = ds.intern_source("exact2");
        let generalizer = ds.intern_source("generalizer");
        for i in 0..10 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let t = h.node_by_name(&format!("T{i}")).unwrap();
            let r = h.node_by_name(&format!("R{i}")).unwrap();
            ds.set_gold(o, t);
            ds.add_record(o, exact, t);
            ds.add_record(o, exact2, t);
            ds.add_record(o, generalizer, r);
        }
        let idx = ObservationIndex::build(&ds);
        let mut asums = Asums::default();
        asums.infer(&ds, &idx);
        let t_exact = asums.source_trust(SourceId(0));
        // The exact source's true accuracy is 1.0, but its trust is pulled
        // far below it.
        assert!(
            t_exact < 0.7,
            "scalar trust should underestimate the exact source: {t_exact}"
        );
        // And the two perfectly-reliable sources end up with very different
        // trusts purely because of generalization level.
        let t_gen = asums.source_trust(SourceId(2));
        assert!(
            (t_gen - t_exact).abs() > 0.2,
            "trusts should diverge: exact {t_exact} vs generalizer {t_gen}"
        );
    }
}
