//! VOTE: the majority baseline.
//!
//! Selects the value with the highest claim frequency (records + answers).
//! In hierarchy-rich corpora VOTE tends to pick *generalized* values —
//! many sources claim them — which is why the paper finds it near the top on
//! GenAccuracy but weak on Accuracy and AvgDistance.

use tdh_core::{TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObservationIndex};

use crate::common::normalize;

/// The majority-vote algorithm.
#[derive(Debug, Clone, Default)]
pub struct Vote;

impl TruthDiscovery for Vote {
    fn name(&self) -> &'static str {
        "VOTE"
    }

    fn infer(&mut self, _ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let confidences: Vec<Vec<f64>> = idx
            .views()
            .iter()
            .map(|view| {
                let mut freq: Vec<f64> = (0..view.n_candidates())
                    .map(|v| f64::from(view.source_count[v] + view.worker_count[v]))
                    .collect();
                normalize(&mut freq);
                freq
            })
            .collect();
        TruthEstimate::from_confidences(idx, confidences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    #[test]
    fn majority_wins_and_answers_count() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        b.add_path(&["X", "B"]);
        let mut ds = Dataset::new(b.build());
        let a = ds.hierarchy().node_by_name("A").unwrap();
        let bb = ds.hierarchy().node_by_name("B").unwrap();
        let o = ds.intern_object("o");
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        ds.add_record(o, s1, a);
        ds.add_record(o, s2, bb);
        ds.add_record(o, s3, bb);
        let idx = ObservationIndex::build(&ds);
        let est = Vote.infer(&ds, &idx);
        assert_eq!(est.truths[0], Some(bb));

        // Two worker answers flip the majority to A.
        let mut ds2 = ds.clone();
        let w1 = ds2.intern_worker("w1");
        let w2 = ds2.intern_worker("w2");
        let w3 = ds2.intern_worker("w3");
        ds2.add_answer(o, w1, a);
        ds2.add_answer(o, w2, a);
        ds2.add_answer(o, w3, a);
        let idx2 = ObservationIndex::build(&ds2);
        let est2 = Vote.infer(&ds2, &idx2);
        assert_eq!(est2.truths[0], Some(a));
    }

    #[test]
    fn confidences_are_frequencies() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        b.add_path(&["X", "B"]);
        let mut ds = Dataset::new(b.build());
        let a = ds.hierarchy().node_by_name("A").unwrap();
        let bb = ds.hierarchy().node_by_name("B").unwrap();
        let o = ds.intern_object("o");
        for i in 0..3 {
            let s = ds.intern_source(&format!("sa{i}"));
            ds.add_record(o, s, a);
        }
        let s = ds.intern_source("sb");
        ds.add_record(o, s, bb);
        let idx = ObservationIndex::build(&ds);
        let est = Vote.infer(&ds, &idx);
        let view = idx.view(o);
        let ai = view.cand_index(a).unwrap() as usize;
        assert!((est.confidences[0][ai] - 0.75).abs() < 1e-12);
    }
}
