//! The comparison suite: every algorithm the paper evaluates against TDH.
//!
//! Truth inference (§5.1, Table 3):
//!
//! | name | module | reference |
//! |------|--------|-----------|
//! | VOTE | [`Vote`] | majority baseline |
//! | ACCU | [`Accu`] | Dong, Berti-Equille & Srivastava, PVLDB 2009 |
//! | POPACCU | [`PopAccu`] | Dong, Saha & Srivastava, PVLDB 2012 |
//! | LFC | [`Lfc`] | Raykar et al., JMLR 2010 |
//! | CRH | [`Crh`] | Li et al., SIGMOD 2014 |
//! | LCA | [`Lca`] | Pasternack & Roth, WWW 2013 (GuessLCA) |
//! | ASUMS | [`Asums`] | Beretta et al., WIMS 2016 |
//! | MDC | [`Mdc`] | Li et al., WSDM 2017 |
//! | DOCS | [`Docs`] | Zheng, Li & Cheng, PVLDB 2016 |
//!
//! Multi-truth discovery (§5.7, Table 5): [`LfcMt`], [`Ltm`] (Zhao et al.,
//! PVLDB 2012), [`Dart`] (Lin & Chen, PVLDB 2018).
//!
//! Numeric truth discovery (§5.8, Table 6): [`numeric`] hosts MEAN, numeric
//! VOTE, numeric CRH, CATD (Li et al., PVLDB 2014) and a flat (no-hierarchy)
//! numeric LCA.
//!
//! Task assignment (§5.1): [`Qasca`] (Zheng et al., SIGMOD 2015), [`MbAssigner`]
//! (DOCS's entropy-based assigner) and [`MeAssigner`] (uncertainty sampling).
//!
//! Implementations follow the published algorithms; where the offline
//! setting forces a substitution (e.g. DOCS domains derived from the
//! hierarchy instead of a knowledge base), the module docs say so.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accu;
mod asums;
pub mod common;
mod crh;
mod dart;
mod docs;
mod lca;
mod lfc;
mod ltm;
mod mdc;
pub mod numeric;
mod qasca;
mod uncertainty;
mod vote;

pub use accu::{Accu, AccuConfig, PopAccu};
pub use asums::{Asums, AsumsConfig};
pub use crh::{Crh, CrhConfig};
pub use dart::{Dart, DartConfig};
pub use docs::{Docs, DocsConfig, MbAssigner};
pub use lca::{Lca, LcaConfig};
pub use lfc::{Lfc, LfcConfig, LfcMt};
pub use ltm::{Ltm, LtmConfig};
pub use mdc::{Mdc, MdcConfig};
pub use qasca::Qasca;
pub use uncertainty::MeAssigner;
pub use vote::Vote;

/// A multi-truth discovery algorithm: emits a *set* of believed-true values
/// per object (paper §5.7).
pub trait MultiTruthDiscovery {
    /// Algorithm name as used in Table 5.
    fn name(&self) -> &'static str;

    /// Per-object sets of values believed true.
    fn infer_multi(
        &mut self,
        ds: &tdh_data::Dataset,
        idx: &tdh_data::ObservationIndex,
    ) -> Vec<Vec<tdh_hierarchy::NodeId>>;
}
