//! Random hierarchy generation.
//!
//! The paper's hierarchies are geographic trees (continent → country → region
//! → city → site) with ~5,000 (BirthPlaces) and ~1,000 (Heritages) nodes and
//! heights 5–6. The generator reproduces those shapes: a fixed height, a
//! controllable node budget, and branching that fans out with depth (few
//! continents, many cities).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdh_hierarchy::{Hierarchy, HierarchyBuilder, NodeId};

use crate::sampling::pick_weighted;

/// Shape parameters for [`generate_hierarchy`].
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Total node budget, including the root.
    pub n_nodes: usize,
    /// Height of the tree (max depth). BirthPlaces: 5, Heritages: 6.
    pub height: u32,
    /// Number of depth-1 nodes ("continents"); the rest of the budget is
    /// spread over deeper levels.
    pub top_level: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            n_nodes: 5_000,
            height: 5,
            top_level: 6,
        }
    }
}

/// Generate a random hierarchy with roughly `n_nodes` nodes and exactly the
/// configured height (provided the budget allows one full-depth path).
///
/// Interior structure: each new node attaches to an existing node of depth
/// `< height`, weighted towards deeper parents so that the node count grows
/// with depth like real gazetteers.
pub fn generate_hierarchy(cfg: &HierarchyConfig, seed: u64) -> Hierarchy {
    assert!(cfg.height >= 1, "height must be at least 1");
    assert!(
        cfg.n_nodes > cfg.top_level + cfg.height as usize,
        "node budget too small for the requested shape"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HierarchyBuilder::new();

    let mut nodes: Vec<(NodeId, u32)> = Vec::new(); // (id, depth)
    for i in 0..cfg.top_level {
        let id = b.add_child_of_root(&format!("L1-{i}"));
        nodes.push((id, 1));
    }
    // Guarantee the full height with one spine.
    let mut spine = nodes[0].0;
    for d in 2..=cfg.height {
        spine = b
            .add_child(spine, &format!("L{d}-spine"))
            .expect("unique names");
        nodes.push((spine, d));
    }

    let mut counter = 0usize;
    while b.len() < cfg.n_nodes {
        // Parent weight grows with depth, but never at the max depth.
        let weights: Vec<f64> = nodes
            .iter()
            .map(|&(_, d)| {
                if d >= cfg.height {
                    0.0
                } else {
                    (f64::from(d) + 1.0).powi(2)
                }
            })
            .collect();
        let pi = pick_weighted(&mut rng, &weights).expect("some non-leaf parent exists");
        let (parent, pd) = nodes[pi];
        let name = format!("L{}-{}", pd + 1, counter);
        counter += 1;
        let id = b
            .add_child(parent, &name)
            .expect("generated names are unique");
        nodes.push((id, pd + 1));
        // Occasionally extend chains faster to diversify leaf depths.
        let _ = rng.random::<f64>();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_budget_and_height() {
        let cfg = HierarchyConfig {
            n_nodes: 500,
            height: 5,
            top_level: 6,
        };
        let h = generate_hierarchy(&cfg, 7);
        assert_eq!(h.len(), 500);
        assert_eq!(h.height(), 5);
        h.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = HierarchyConfig::default();
        let a = generate_hierarchy(&cfg, 11);
        let b = generate_hierarchy(&cfg, 11);
        assert_eq!(a.len(), b.len());
        for v in a.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
            assert_eq!(a.name(v), b.name(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = HierarchyConfig {
            n_nodes: 300,
            height: 4,
            top_level: 5,
        };
        let a = generate_hierarchy(&cfg, 1);
        let b = generate_hierarchy(&cfg, 2);
        let same = a
            .nodes()
            .filter(|&v| v != NodeId::ROOT)
            .all(|v| a.parent(v) == b.parent(v));
        assert!(!same, "seeds should shuffle structure");
    }

    #[test]
    fn deeper_levels_are_denser() {
        let h = generate_hierarchy(&HierarchyConfig::default(), 3);
        let mut per_depth = vec![0usize; h.height() as usize + 1];
        for v in h.nodes() {
            per_depth[h.depth(v) as usize] += 1;
        }
        // Cities outnumber continents.
        assert!(per_depth[3] > per_depth[1]);
    }
}
