//! The two calibrated categorical corpora (paper §5, "Datasets").

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::categorical::{generate_categorical, CategoricalConfig, Corpus, SourceSpec};
use crate::hierarchy_gen::HierarchyConfig;
use crate::sampling::{dirichlet, Zipf};

/// Configuration for the BirthPlaces stand-in.
///
/// The real corpus: 13,510 records about 6,005 celebrities from 7 websites,
/// IMDb gold standard, geographic hierarchy of 4,999 nodes and height 5,
/// mean source accuracy 72.1%, per-source claim counts
/// {5975, 5272, 605, 340, 532, 399, 387} (Fig. 5), and visibly heterogeneous
/// generalization tendencies (Fig. 1).
#[derive(Debug, Clone)]
pub struct BirthPlacesConfig {
    /// Number of objects (paper: 6,005). Lower it for quick tests.
    pub n_objects: usize,
    /// Hierarchy node budget (paper: 4,999).
    pub hierarchy_nodes: usize,
}

impl Default for BirthPlacesConfig {
    fn default() -> Self {
        BirthPlacesConfig {
            n_objects: 6_005,
            hierarchy_nodes: 4_999,
        }
    }
}

/// Generate the BirthPlaces stand-in corpus.
///
/// The seven sources keep the published claim-count profile (scaled to the
/// configured object count) and use hand-set `φ` vectors whose
/// claim-weighted mean exact accuracy is ≈ 0.72, with two pronounced
/// generalizers — the structure Figures 1 and 5 display.
pub fn generate_birthplaces(cfg: &BirthPlacesConfig, seed: u64) -> Corpus {
    // Published per-source claim counts, rescaled to the object budget.
    let paper_counts = [5_975usize, 5_272, 605, 340, 532, 399, 387];
    let scale = cfg.n_objects as f64 / 6_005.0;
    // (exact, generalized, wrong) per source; weighted mean φ1 ≈ 0.72.
    let phis: [[f64; 3]; 7] = [
        [0.80, 0.12, 0.08], // head source, precise
        [0.72, 0.16, 0.12], // head source, mild generalizer
        [0.60, 0.28, 0.12], // generalizer
        [0.38, 0.47, 0.15], // strong generalizer (Fig. 5's source 4)
        [0.52, 0.18, 0.30], // noisy
        [0.78, 0.06, 0.16], // precise but sometimes wrong
        [0.45, 0.38, 0.17], // generalizer (Fig. 5's source 7)
    ];
    let sources = paper_counts
        .iter()
        .zip(phis.iter())
        .map(|(&c, &phi)| SourceSpec {
            n_claims: ((c as f64 * scale).round() as usize).max(1),
            phi,
        })
        .collect();
    let cat = CategoricalConfig {
        name: "birthplaces".into(),
        n_objects: cfg.n_objects,
        sources,
        hierarchy: HierarchyConfig {
            n_nodes: cfg.hierarchy_nodes,
            height: 5,
            top_level: 6,
        },
        min_truth_depth: 2,
        decoy_prob: 0.3,
        shallow_general_prob: 0.65,
        popularity_skew: 1.2,
        difficulty_coupling: 0.7,
    };
    generate_categorical(&cat, seed)
}

/// Configuration for the Heritages stand-in.
///
/// The real corpus: 4,424 claims about 785 World Heritage Sites from 1,577
/// distinct websites found via Bing search, hierarchy of 1,027 nodes and
/// height 6, mean source accuracy 58.0%. Most sources contribute only a
/// handful of claims — the regime where per-source reliability estimation
/// is hard and VOTE is a strong baseline.
#[derive(Debug, Clone)]
pub struct HeritagesConfig {
    /// Number of objects (paper: 785).
    pub n_objects: usize,
    /// Number of sources (paper: 1,577).
    pub n_sources: usize,
    /// Total claim budget (paper: 4,424).
    pub n_claims: usize,
    /// Hierarchy node budget (paper: 1,027).
    pub hierarchy_nodes: usize,
}

impl Default for HeritagesConfig {
    fn default() -> Self {
        HeritagesConfig {
            n_objects: 785,
            n_sources: 1_577,
            n_claims: 4_424,
            hierarchy_nodes: 1_027,
        }
    }
}

/// Generate the Heritages stand-in corpus.
///
/// Claim counts follow a Zipf law over sources (long tail of one-claim
/// sources); per-source `φ` vectors are drawn from a Dirichlet prior tuned
/// to a mean exact accuracy ≈ 0.58 with substantial generalization mass.
pub fn generate_heritages(cfg: &HeritagesConfig, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xd134_2543_de82_ef95));
    let zipf = Zipf::new(40, 1.25);
    let mut sources = Vec::with_capacity(cfg.n_sources);
    let mut budget = cfg.n_claims;
    for i in 0..cfg.n_sources {
        let remaining_sources = cfg.n_sources - i;
        // Every remaining source still needs at least one claim.
        let max_take = budget.saturating_sub(remaining_sources - 1).max(1);
        let take = zipf.sample(&mut rng).min(max_take);
        budget = budget.saturating_sub(take);
        // Mean φ ≈ (0.58, 0.22, 0.20); concentration keeps sources diverse.
        let phi = dirichlet(&mut rng, &[5.8, 2.6, 1.6]);
        sources.push(SourceSpec {
            n_claims: take,
            phi,
        });
    }
    let cat = CategoricalConfig {
        name: "heritages".into(),
        n_objects: cfg.n_objects,
        sources,
        hierarchy: HierarchyConfig {
            n_nodes: cfg.hierarchy_nodes,
            height: 6,
            top_level: 6,
        },
        min_truth_depth: 2,
        decoy_prob: 0.35,
        shallow_general_prob: 0.75,
        popularity_skew: 1.5,
        difficulty_coupling: 0.8,
    };
    generate_categorical(&cat, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::ObservationIndex;
    use tdh_eval::source_reliability;

    #[test]
    fn birthplaces_statistics_match_paper_shape() {
        let cfg = BirthPlacesConfig {
            n_objects: 1_000,
            hierarchy_nodes: 1_200,
        };
        let c = generate_birthplaces(&cfg, 3);
        let stats = c.dataset.stats();
        assert_eq!(stats.n_sources, 7);
        assert_eq!(stats.hierarchy_height, 5);
        // Head-heavy claim profile: first two sources dominate.
        assert!(stats.claims_per_source[0] > stats.claims_per_source[2]);
        assert!(stats.claims_per_source[1] > stats.claims_per_source[3]);

        // Claim-weighted mean source accuracy ≈ 0.72 (±0.06 tolerance).
        let idx = ObservationIndex::build(&c.dataset);
        let rel = source_reliability(&c.dataset, &idx);
        let (mut num, mut den) = (0.0, 0.0);
        for r in &rel {
            num += r.accuracy * r.n_claims as f64;
            den += r.n_claims as f64;
        }
        let mean_acc = num / den;
        assert!(
            (mean_acc - 0.721).abs() < 0.06,
            "mean source accuracy {mean_acc} should be ≈ 0.721"
        );
    }

    #[test]
    fn birthplaces_sources_generalize_heterogeneously() {
        let cfg = BirthPlacesConfig {
            n_objects: 1_000,
            hierarchy_nodes: 1_200,
        };
        let c = generate_birthplaces(&cfg, 4);
        let idx = ObservationIndex::build(&c.dataset);
        let rel = source_reliability(&c.dataset, &idx);
        // Source 3 is the strong generalizer: big gap between generalized
        // and exact accuracy (it sits far above Fig. 1's diagonal).
        let gap = rel[3].gen_accuracy - rel[3].accuracy;
        assert!(gap > 0.3, "generalizer gap {gap}");
        // Source 0 is precise: small gap.
        let gap0 = rel[0].gen_accuracy - rel[0].accuracy;
        assert!(gap0 < 0.2, "precise source gap {gap0}");
    }

    #[test]
    fn heritages_is_long_tailed_and_noisy() {
        let cfg = HeritagesConfig {
            n_objects: 300,
            n_sources: 600,
            n_claims: 1_700,
            hierarchy_nodes: 500,
        };
        let c = generate_heritages(&cfg, 5);
        let stats = c.dataset.stats();
        assert_eq!(stats.n_sources, 600);
        assert_eq!(stats.hierarchy_height, 6);
        // Long tail: the median source has very few claims.
        let mut counts = stats.claims_per_source.clone();
        counts.sort_unstable();
        assert!(counts[counts.len() / 2] <= 3);

        let idx = ObservationIndex::build(&c.dataset);
        let rel = source_reliability(&c.dataset, &idx);
        let (mut num, mut den) = (0.0, 0.0);
        for r in &rel {
            num += r.accuracy * r.n_claims as f64;
            den += r.n_claims as f64;
        }
        let mean_acc = num / den;
        assert!(
            (mean_acc - 0.58).abs() < 0.08,
            "mean source accuracy {mean_acc} should be ≈ 0.58"
        );
    }

    #[test]
    fn heritages_claim_budget_respected() {
        let cfg = HeritagesConfig {
            n_objects: 200,
            n_sources: 400,
            n_claims: 1_100,
            hierarchy_nodes: 400,
        };
        let c = generate_heritages(&cfg, 6);
        let n = c.dataset.records().len();
        // Coverage top-ups may add a few records beyond the budget.
        assert!(n >= 1_000 && n <= 1_100 + cfg.n_objects, "records {n}");
    }
}
