//! Distribution samplers used by the generators.
//!
//! The workspace deliberately depends only on `rand` (not `rand_distr`), so
//! the handful of distributions the generators need — normal, gamma,
//! Dirichlet, Zipf — are implemented here. They are exercised directly by
//! unit tests and indirectly by every generated corpus.

use rand::Rng;

/// A standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// A Gamma(shape, 1) sample via the Marsaglia–Tsang squeeze method,
/// with the standard boost for `shape < 1`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// A Dirichlet(α) sample: normalised independent Gamma draws.
pub fn dirichlet<R: Rng + ?Sized, const K: usize>(rng: &mut R, alpha: &[f64; K]) -> [f64; K] {
    let mut out = [0.0; K];
    let mut sum = 0.0;
    for (o, &a) in out.iter_mut().zip(alpha.iter()) {
        *o = gamma(rng, a).max(f64::MIN_POSITIVE);
        sum += *o;
    }
    for o in &mut out {
        *o /= sum;
    }
    out
}

/// Sampler for a Zipf distribution over ranks `1..=n` with exponent `s`,
/// using a precomputed CDF (the generators draw from modest `n`, so the
/// O(n) setup and O(log n) draws are the simple, right choice).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over ranks `1..=n` with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Index sampled proportionally to `weights` (which need not be normalised).
/// Returns `None` when all weights are zero.
pub fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return Some(i);
        }
    }
    Some(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean ≈ 3, got {mean}");
        assert!((var - 4.0).abs() < 0.25, "var ≈ 4, got {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        for &shape in &[0.5, 1.0, 3.0, 9.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "E[Gamma({shape})] = {shape}, got {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut rng = StdRng::seed_from_u64(3);
        let alpha = [6.0, 3.0, 1.0];
        let mut acc = [0.0; 3];
        let n = 10_000;
        for _ in 0..n {
            let d = dirichlet(&mut rng, &alpha);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for (a, x) in acc.iter_mut().zip(d.iter()) {
                *a += x;
            }
        }
        // E[d_i] = alpha_i / sum(alpha) = 0.6, 0.3, 0.1.
        assert!((acc[0] / n as f64 - 0.6).abs() < 0.02);
        assert!((acc[1] / n as f64 - 0.3).abs() < 0.02);
        assert!((acc[2] / n as f64 - 0.1).abs() < 0.02);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = StdRng::seed_from_u64(4);
        let z = Zipf::new(100, 1.2);
        let n = 20_000;
        let mut count1 = 0;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
            if r == 1 {
                count1 += 1;
            }
        }
        // Rank-1 mass for s=1.2, n=100 is ≈ 0.27.
        let p1 = count1 as f64 / n as f64;
        assert!(p1 > 0.2 && p1 < 0.35, "rank-1 mass {p1}");
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[pick_weighted(&mut rng, &w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
        assert_eq!(pick_weighted(&mut rng, &[0.0, 0.0]), None);
    }
}
