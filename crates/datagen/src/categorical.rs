//! The general-purpose categorical corpus generator.
//!
//! Models exactly the three-way claim behaviour the TDH paper attributes to
//! real sources (Fig. 1): each source `s` carries a trustworthiness vector
//! `φ_s = (exact, generalized, wrong)` and emits, per claim,
//!
//! * the exact truth with probability `φ_s,1`,
//! * a uniformly chosen proper ancestor of the truth (a *generalization*)
//!   with probability `φ_s,2`,
//! * a wrong value with probability `φ_s,3` — drawn either near the truth
//!   (a confusable sibling) or from a per-object *decoy* value shared across
//!   sources, reproducing the "widespread misinformation" the worker model's
//!   popularity terms are designed for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdh_data::Dataset;
use tdh_hierarchy::{Hierarchy, NodeId};

use crate::hierarchy_gen::{generate_hierarchy, HierarchyConfig};

/// Per-source generation profile.
#[derive(Debug, Clone, Copy)]
pub struct SourceSpec {
    /// Number of claims the source contributes.
    pub n_claims: usize,
    /// Three-way trustworthiness `(exact, generalized, wrong)`; must sum
    /// to ≈ 1.
    pub phi: [f64; 3],
}

/// Configuration for [`generate_categorical`].
#[derive(Debug, Clone)]
pub struct CategoricalConfig {
    /// Corpus name (used in reports).
    pub name: String,
    /// Number of objects `|O|`.
    pub n_objects: usize,
    /// One spec per source.
    pub sources: Vec<SourceSpec>,
    /// Shape of the value hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Minimum depth of true values; ≥ 2 guarantees every truth has a
    /// non-root proper ancestor to generalize to.
    pub min_truth_depth: u32,
    /// Probability that a wrong claim picks the object's shared decoy value
    /// instead of an independent confusion.
    pub decoy_prob: f64,
    /// Probability that a generalized claim uses the truth's *depth-1*
    /// ancestor (the "country level") instead of a uniformly chosen
    /// ancestor. Real sources concentrate their generalizations on a
    /// canonical coarse level, which is what lets generalized values outvote
    /// the exact truth (the VOTE accuracy/GenAccuracy gap of Table 3).
    pub shallow_general_prob: f64,
    /// Popularity skew of claim coverage. `0.0` spreads each source's
    /// claims uniformly over objects; larger values concentrate coverage on
    /// popular objects, leaving a long tail of obscure objects with one or
    /// two claims — the evidence-starved regime real crawls exhibit and the
    /// one evidence-aware task assignment (EAI) is designed for.
    pub popularity_skew: f64,
    /// Strength of the popularity → difficulty coupling in `[0, 1]`.
    /// Web data about popular entities is comparatively clean, while obscure
    /// entities attract extraction errors; at strength `x`, a claim about
    /// the most popular object keeps only `(1 − x)` of the source's wrong
    /// probability while the most obscure object gets it boosted by
    /// `(1 + x)` (mass shifts to/from the exact case). This concentrates
    /// contested objects in the sparse tail, the regime the paper's corpora
    /// exhibit.
    pub difficulty_coupling: f64,
}

impl Default for CategoricalConfig {
    fn default() -> Self {
        CategoricalConfig {
            name: "categorical".into(),
            n_objects: 500,
            sources: vec![
                SourceSpec {
                    n_claims: 450,
                    phi: [0.8, 0.1, 0.1],
                };
                5
            ],
            hierarchy: HierarchyConfig::default(),
            min_truth_depth: 2,
            decoy_prob: 0.5,
            shallow_general_prob: 0.6,
            popularity_skew: 1.0,
            difficulty_coupling: 0.7,
        }
    }
}

/// A generated corpus: the dataset (records + gold standard) plus the
/// hidden per-object truths for diagnostics.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Corpus name.
    pub name: String,
    /// The dataset, with gold labels set for every object.
    pub dataset: Dataset,
    /// The true value of each object (same as the gold labels, kept as a
    /// plain vector for convenience).
    pub truths: Vec<NodeId>,
}

/// Nodes eligible as truths or confusions (depth ≥ `min_depth`).
fn eligible_nodes(h: &Hierarchy, min_depth: u32) -> Vec<NodeId> {
    h.nodes().filter(|&v| h.depth(v) >= min_depth).collect()
}

/// Draw a wrong value for `truth`: a node that is neither the truth nor one
/// of its ancestors. Prefers confusable nodes (same top-level branch).
fn draw_wrong(rng: &mut StdRng, h: &Hierarchy, pool: &[NodeId], truth: NodeId) -> NodeId {
    let branch = h.top_level_branch(truth);
    for attempt in 0..64 {
        let v = pool[rng.random_range(0..pool.len())];
        if v == truth || h.is_strict_ancestor(v, truth) {
            continue;
        }
        // First tries stay local (confusable values share the branch).
        if attempt < 8 {
            if h.top_level_branch(v) == branch {
                return v;
            }
        } else {
            return v;
        }
    }
    // Degenerate hierarchies: fall back to any non-ancestor node.
    pool.iter()
        .copied()
        .find(|&v| v != truth && !h.is_strict_ancestor(v, truth))
        .expect("hierarchy has at least two unrelated eligible nodes")
}

/// Generate a categorical truth-discovery corpus.
///
/// Every object receives at least one record (uncovered objects are topped
/// up from the largest source), so candidate sets are never empty.
pub fn generate_categorical(cfg: &CategoricalConfig, seed: u64) -> Corpus {
    assert!(cfg.min_truth_depth >= 2, "truths need a non-root ancestor");
    assert!(!cfg.sources.is_empty(), "need at least one source");
    let mut rng = StdRng::seed_from_u64(seed);
    let h = generate_hierarchy(&cfg.hierarchy, seed ^ 0x9e37_79b9_7f4a_7c15);
    let pool = eligible_nodes(&h, cfg.min_truth_depth);
    assert!(
        pool.len() >= 2,
        "hierarchy too small for min_truth_depth {}",
        cfg.min_truth_depth
    );

    // Hidden truths and shared decoys.
    let truths: Vec<NodeId> = (0..cfg.n_objects)
        .map(|_| pool[rng.random_range(0..pool.len())])
        .collect();
    let decoys: Vec<NodeId> = truths
        .iter()
        .map(|&t| draw_wrong(&mut rng, &h, &pool, t))
        .collect();

    let mut ds = Dataset::new(h);
    let objects: Vec<_> = (0..cfg.n_objects)
        .map(|i| ds.intern_object(&format!("{}-obj-{i}", cfg.name)))
        .collect();
    let sources: Vec<_> = (0..cfg.sources.len())
        .map(|i| ds.intern_source(&format!("{}-src-{i}", cfg.name)))
        .collect();
    for (o, &t) in objects.iter().zip(&truths) {
        ds.set_gold(*o, t);
    }

    // Popularity permutation (rank 0 = most popular) and the induced
    // per-object difficulty in [0, 1].
    let mut popularity: Vec<usize> = (0..cfg.n_objects).collect();
    for i in 0..cfg.n_objects {
        let j = rng.random_range(i..cfg.n_objects);
        popularity.swap(i, j);
    }
    let mut difficulty = vec![0.0f64; cfg.n_objects];
    for (rank, &oi) in popularity.iter().enumerate() {
        difficulty[oi] = rank as f64 / (cfg.n_objects - 1).max(1) as f64;
    }

    let mut covered = vec![false; cfg.n_objects];
    let emit = |ds: &mut Dataset,
                rng: &mut StdRng,
                covered: &mut Vec<bool>,
                src_idx: usize,
                obj_idx: usize| {
        let truth = truths[obj_idx];
        let h = ds.hierarchy();
        let spec = &cfg.sources[src_idx];
        // Popularity-coupled difficulty: obscure objects inflate the wrong
        // probability at the expense of the exact case.
        let factor = 1.0 + cfg.difficulty_coupling * (2.0 * difficulty[obj_idx] - 1.0);
        let wrong = (spec.phi[2] * factor).clamp(0.0, 1.0 - spec.phi[1] - 0.01);
        let exact = (1.0 - spec.phi[1] - wrong).max(0.01);
        let roll: f64 = rng.random();
        let value = if roll < exact {
            truth
        } else if roll < exact + spec.phi[1] {
            // Generalized truth: concentrated on the depth-1 ancestor with
            // probability `shallow_general_prob`, else a uniform proper
            // non-root ancestor.
            let ancestors: Vec<NodeId> =
                h.ancestors(truth).filter(|&a| a != NodeId::ROOT).collect();
            if ancestors.is_empty() {
                truth // unreachable when min_truth_depth ≥ 2
            } else if rng.random::<f64>() < cfg.shallow_general_prob {
                *ancestors.last().expect("non-empty") // nearest to the root
            } else {
                ancestors[rng.random_range(0..ancestors.len())]
            }
        } else if rng.random::<f64>() < cfg.decoy_prob {
            decoys[obj_idx]
        } else {
            draw_wrong(rng, h, &pool, truth)
        };
        ds.add_record(objects[obj_idx], sources[src_idx], value);
        covered[obj_idx] = true;
    };

    // Each source claims over a subset of objects without replacement.
    // Coverage is popularity-biased: object rank `r` (the permutation fixed
    // above, shared by all sources) is sampled with density ∝ u^(1+skew),
    // so head objects are claimed by many sources while tail objects end up
    // with one or two claims.
    let mut taken = vec![false; cfg.n_objects];
    for (si, spec) in cfg.sources.iter().enumerate() {
        let take = spec.n_claims.min(cfg.n_objects);
        taken.iter_mut().for_each(|t| *t = false);
        let mut emitted = 0usize;
        if take * 2 >= cfg.n_objects || cfg.popularity_skew == 0.0 {
            // Dense source: biased sampling would thrash on retries; a
            // uniform partial shuffle covers essentially everything anyway.
            let mut order: Vec<usize> = (0..cfg.n_objects).collect();
            for i in 0..take {
                let j = rng.random_range(i..cfg.n_objects);
                order.swap(i, j);
            }
            for &oi in order.iter().take(take) {
                emit(&mut ds, &mut rng, &mut covered, si, oi);
            }
            continue;
        }
        let mut retries = 0usize;
        let retry_budget = 30 * take + 64;
        while emitted < take {
            let u: f64 = rng.random();
            let rank = ((cfg.n_objects as f64) * u.powf(1.0 + cfg.popularity_skew)) as usize;
            let oi = popularity[rank.min(cfg.n_objects - 1)];
            if taken[oi] {
                retries += 1;
                if retries > retry_budget {
                    // Degenerate corner: fall back to a linear scan over the
                    // remaining objects in popularity order.
                    for &cand in &popularity {
                        if emitted >= take {
                            break;
                        }
                        if !taken[cand] {
                            taken[cand] = true;
                            emit(&mut ds, &mut rng, &mut covered, si, cand);
                            emitted += 1;
                        }
                    }
                    break;
                }
                continue;
            }
            taken[oi] = true;
            emit(&mut ds, &mut rng, &mut covered, si, oi);
            emitted += 1;
        }
    }

    // Guarantee coverage: uncovered objects get one claim from the largest
    // source.
    let biggest = cfg
        .sources
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.n_claims)
        .map(|(i, _)| i)
        .expect("non-empty sources");
    for oi in 0..cfg.n_objects {
        if !covered[oi] {
            emit(&mut ds, &mut rng, &mut covered, biggest, oi);
        }
    }

    Corpus {
        name: cfg.name.clone(),
        dataset: ds,
        truths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::ObservationIndex;

    fn small_cfg() -> CategoricalConfig {
        CategoricalConfig {
            name: "t".into(),
            n_objects: 120,
            sources: vec![
                SourceSpec {
                    n_claims: 110,
                    phi: [0.9, 0.05, 0.05],
                },
                SourceSpec {
                    n_claims: 80,
                    phi: [0.2, 0.7, 0.1],
                },
                SourceSpec {
                    n_claims: 60,
                    phi: [0.3, 0.1, 0.6],
                },
            ],
            hierarchy: HierarchyConfig {
                n_nodes: 300,
                height: 4,
                top_level: 5,
            },
            min_truth_depth: 2,
            decoy_prob: 0.5,
            shallow_general_prob: 0.6,
            popularity_skew: 1.0,
            difficulty_coupling: 0.7,
        }
    }

    #[test]
    fn every_object_is_covered_and_golded() {
        let c = generate_categorical(&small_cfg(), 9);
        let idx = ObservationIndex::build(&c.dataset);
        for o in c.dataset.objects() {
            assert!(!idx.view(o).candidates.is_empty());
            assert!(c.dataset.gold(o).is_some());
        }
        assert_eq!(c.truths.len(), 120);
    }

    #[test]
    fn claim_counts_match_specs_modulo_coverage() {
        let cfg = small_cfg();
        let c = generate_categorical(&cfg, 10);
        let stats = c.dataset.stats();
        // Sources 1 and 2 are exact; source 0 may gain coverage top-ups.
        assert!(stats.claims_per_source[0] >= 110);
        assert_eq!(stats.claims_per_source[1], 80);
        assert_eq!(stats.claims_per_source[2], 60);
    }

    #[test]
    fn phi_controls_observed_reliability() {
        let cfg = small_cfg();
        let c = generate_categorical(&cfg, 11);
        let ds = &c.dataset;
        let h = ds.hierarchy();
        // Count per-source exact and generalized hits against the truth.
        let mut exact = vec![0f64; 3];
        let mut gen = vec![0f64; 3];
        let mut tot = vec![0f64; 3];
        for r in ds.records() {
            let t = ds.gold(r.object).unwrap();
            tot[r.source.index()] += 1.0;
            if r.value == t {
                exact[r.source.index()] += 1.0;
            } else if h.is_strict_ancestor(r.value, t) {
                gen[r.source.index()] += 1.0;
            }
        }
        for s in 0..3 {
            let spec = cfg.sources[s].phi;
            assert!(
                (exact[s] / tot[s] - spec[0]).abs() < 0.12,
                "source {s}: exact rate {} vs φ1 {}",
                exact[s] / tot[s],
                spec[0]
            );
            assert!(
                (gen[s] / tot[s] - spec[1]).abs() < 0.12,
                "source {s}: gen rate {} vs φ2 {}",
                gen[s] / tot[s],
                spec[1]
            );
        }
    }

    #[test]
    fn wrong_values_are_never_ancestors_of_truth() {
        let c = generate_categorical(&small_cfg(), 12);
        let ds = &c.dataset;
        let h = ds.hierarchy();
        for r in ds.records() {
            let t = ds.gold(r.object).unwrap();
            if r.value != t && !h.is_strict_ancestor(r.value, t) {
                // Wrong by construction — must not be the root either.
                assert!(r.value != NodeId::ROOT);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small_cfg();
        let a = generate_categorical(&cfg, 13);
        let b = generate_categorical(&cfg, 13);
        assert_eq!(a.dataset.records(), b.dataset.records());
        assert_eq!(a.truths, b.truths);
        let c = generate_categorical(&cfg, 14);
        assert_ne!(a.dataset.records(), c.dataset.records());
    }
}
