//! Synthetic corpora calibrated to the paper's evaluation datasets.
//!
//! The original corpora (BirthPlaces and Heritages crawls, the Stock deep-web
//! dataset, AMT answer logs) are not redistributable, so this crate generates
//! statistical stand-ins that preserve the properties the paper's experiments
//! actually exercise — see `DESIGN.md` §3 for the substitution argument.
//! Every generator is deterministic given a seed.
//!
//! * [`generate_birthplaces`] — 7 head-heavy sources over ~6,000 objects with
//!   a deep geographic hierarchy (BirthPlaces, §5 "Datasets").
//! * [`generate_heritages`] — ~1,600 long-tail sources over ~800 objects
//!   (Heritages), the corpus where per-source evidence is scarce.
//! * [`generate_stock`] — numeric claims with significant-figure truncation
//!   and heavy-tailed outliers (the Stock dataset of Table 6).
//! * [`generate_categorical`] — the general-purpose generator behind the two
//!   categorical corpora, usable directly for custom experiments.
//! * [`generate_webscale`] — paper-scale streamed corpora (10⁵–10⁶ claims)
//!   for the parallel-fit scaling benchmarks, where the accuracy-calibrated
//!   generators above are orders of magnitude too small.
//!
//! Sources are sampled with individual three-way trustworthiness vectors
//! `φ_s = (exact, generalized, wrong)`, reproducing Figure 1's observation
//! that *each source has its own tendency of generalization*.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod categorical;
mod corpora;
mod hierarchy_gen;
mod largescale;
pub mod sampling;
mod stock;

pub use categorical::{generate_categorical, CategoricalConfig, Corpus, SourceSpec};
pub use corpora::{generate_birthplaces, generate_heritages, BirthPlacesConfig, HeritagesConfig};
pub use hierarchy_gen::{generate_hierarchy, HierarchyConfig};
pub use largescale::{generate_webscale, WebScaleConfig};
pub use stock::{generate_stock, StockAttribute, StockConfig};
