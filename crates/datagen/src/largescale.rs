//! Paper-scale streamed corpus generation.
//!
//! The evaluation corpora ([`crate::generate_birthplaces`] /
//! [`crate::generate_heritages`]) are calibrated for *accuracy* experiments —
//! a few thousand claims, rich per-source structure. Demonstrating that the
//! parallel fit path actually wins needs corpora two to three orders of
//! magnitude bigger, where per-iteration E-step work dwarfs coordination
//! overhead. [`generate_webscale`] produces them: millions of records over
//! hundreds of thousands of objects, **streamed** one object at a time —
//! per-object working memory is constant (a handful of claimed values), so
//! generation cost is linear in the claim count and never materializes
//! intermediate per-source claim lists the way the without-replacement
//! categorical generator does.
//!
//! The statistical shape keeps what the TDH model exercises at scale:
//! per-source three-way trustworthiness `φ_s` drawn from a Dirichlet, Zipf
//! claim volume across sources (head sources contribute most records),
//! shallow generalizations that put objects in `O_H`, shared per-object
//! decoy values (widespread misinformation), and worker answers selecting
//! among the object's claimed values with a popularity bias.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdh_data::Dataset;
use tdh_hierarchy::{Hierarchy, NodeId};

use crate::categorical::Corpus;
use crate::hierarchy_gen::{generate_hierarchy, HierarchyConfig};
use crate::sampling::{dirichlet, Zipf};

/// Configuration for [`generate_webscale`].
#[derive(Debug, Clone)]
pub struct WebScaleConfig {
    /// Corpus name (used in reports).
    pub name: String,
    /// Number of objects `|O|`.
    pub n_objects: usize,
    /// Number of sources `|S|`.
    pub n_sources: usize,
    /// Number of crowd workers available to answer.
    pub n_workers: usize,
    /// Total number of source records to emit (spread near-uniformly over
    /// objects: every object gets `n_claims / n_objects` claims, the first
    /// `n_claims % n_objects` one extra).
    pub n_claims: usize,
    /// Expected worker answers per object (answers select among the
    /// object's claimed values, so they never extend candidate sets).
    pub answer_rate: f64,
    /// Shape of the value hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Zipf exponent of claim volume across sources (rank 1 = the head
    /// crawler contributing the most records).
    pub source_zipf: f64,
    /// Dirichlet concentration the per-source `φ_s = (exact, generalized,
    /// wrong)` vectors are drawn from.
    pub phi_alpha: [f64; 3],
    /// Probability that a generalized claim uses the truth's depth-1
    /// ancestor rather than a uniformly chosen proper ancestor.
    pub shallow_general_prob: f64,
    /// Probability that a wrong claim picks the object's shared decoy value
    /// instead of an independent wrong value.
    pub decoy_prob: f64,
}

impl WebScaleConfig {
    /// The paper-scale corpus: one million records. Generation stays in the
    /// low seconds; fitting it is the point of the `scaling` benchmark.
    pub fn paper() -> Self {
        WebScaleConfig {
            name: "webscale-1m".into(),
            n_objects: 200_000,
            n_sources: 2_000,
            n_workers: 400,
            n_claims: 1_000_000,
            answer_rate: 0.3,
            hierarchy: HierarchyConfig {
                n_nodes: 3_000,
                height: 4,
                top_level: 8,
            },
            source_zipf: 1.1,
            phi_alpha: [12.0, 4.0, 4.0],
            shallow_general_prob: 0.6,
            decoy_prob: 0.5,
        }
    }

    /// A scaled-down variant (~100k claims) for CI and `--quick` bench runs:
    /// same shape, one tenth the volume.
    pub fn quick() -> Self {
        WebScaleConfig {
            name: "webscale-100k".into(),
            n_objects: 20_000,
            n_sources: 600,
            n_workers: 120,
            n_claims: 100_000,
            hierarchy: HierarchyConfig {
                n_nodes: 1_500,
                height: 4,
                top_level: 8,
            },
            ..WebScaleConfig::paper()
        }
    }
}

/// Proper non-root ancestors of `v`, nearest first (depth order follows
/// [`Hierarchy::ancestors`]).
fn non_root_ancestors(h: &Hierarchy, v: NodeId) -> Vec<NodeId> {
    h.ancestors(v).filter(|&a| a != NodeId::ROOT).collect()
}

/// Generate a web-scale corpus. Deterministic given `(cfg, seed)`; the total
/// record count is exactly `cfg.n_claims`.
///
/// # Panics
/// Panics when the hierarchy budget yields no nodes of depth ≥ 2 (truths
/// need a non-root proper ancestor to generalize to) or when
/// `n_objects == 0` with `n_claims > 0`.
pub fn generate_webscale(cfg: &WebScaleConfig, seed: u64) -> Corpus {
    assert!(
        cfg.n_objects > 0 || cfg.n_claims == 0,
        "claims need objects to land on"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let h = generate_hierarchy(&cfg.hierarchy, seed ^ 0x5eed_cafe);

    // Truth pool: depth ≥ 2, so every truth has a non-root generalization.
    let eligible: Vec<NodeId> = h.nodes().filter(|&v| h.depth(v) >= 2).collect();
    assert!(
        !eligible.is_empty(),
        "hierarchy has no nodes of depth >= 2 to serve as truths"
    );
    // Ancestor chains cached once per node — the generalization draw in the
    // claim loop must not walk the tree per record.
    let max_node = h.nodes().map(|v| v.index()).max().unwrap_or(0);
    let mut anc_cache: Vec<Vec<NodeId>> = vec![Vec::new(); max_node + 1];
    for &v in &eligible {
        anc_cache[v.index()] = non_root_ancestors(&h, v);
    }

    let mut ds = Dataset::new(h);
    let objects: Vec<_> = (0..cfg.n_objects)
        .map(|i| ds.intern_object(&format!("e{i}")))
        .collect();
    let sources: Vec<_> = (0..cfg.n_sources)
        .map(|i| ds.intern_source(&format!("crawl{i}")))
        .collect();
    let workers: Vec<_> = (0..cfg.n_workers)
        .map(|i| ds.intern_worker(&format!("w{i}")))
        .collect();
    let phis: Vec<[f64; 3]> = (0..cfg.n_sources)
        .map(|_| dirichlet(&mut rng, &cfg.phi_alpha))
        .collect();
    let source_ranks = Zipf::new(cfg.n_sources.max(1), cfg.source_zipf);

    let base = if cfg.n_objects == 0 {
        0
    } else {
        cfg.n_claims / cfg.n_objects
    };
    let extra = if cfg.n_objects == 0 {
        0
    } else {
        cfg.n_claims % cfg.n_objects
    };

    let mut truths = Vec::with_capacity(cfg.n_objects);
    // Per-object scratch, reused: the distinct claimed values so far.
    let mut claimed: Vec<NodeId> = Vec::new();
    let mut claim_counts: Vec<u32> = Vec::new();

    for (oi, &o) in objects.iter().enumerate() {
        let truth = eligible[rng.random_range(0..eligible.len())];
        ds.set_gold(o, truth);
        truths.push(truth);
        let anc = &anc_cache[truth.index()];

        // The object's shared decoy: one wrong value many sources repeat.
        let decoy = loop {
            let v = eligible[rng.random_range(0..eligible.len())];
            if v != truth && !anc.contains(&v) {
                break v;
            }
        };

        claimed.clear();
        claim_counts.clear();
        let n_claims_o = base + usize::from(oi < extra);
        for _ in 0..n_claims_o {
            let si = source_ranks.sample(&mut rng) - 1;
            let phi = &phis[si];
            let u: f64 = rng.random();
            let value = if u < phi[0] {
                truth
            } else if u < phi[0] + phi[1] {
                if rng.random::<f64>() < cfg.shallow_general_prob {
                    // The canonical coarse level: the depth-1 ancestor is
                    // the last entry (chains run nearest-first).
                    *anc.last().expect("eligible truths have depth >= 2")
                } else {
                    anc[rng.random_range(0..anc.len())]
                }
            } else if rng.random::<f64>() < cfg.decoy_prob {
                decoy
            } else {
                loop {
                    let v = eligible[rng.random_range(0..eligible.len())];
                    if v != truth && !anc.contains(&v) {
                        break v;
                    }
                }
            };
            ds.add_record(o, sources[si], value);
            match claimed.iter().position(|&v| v == value) {
                Some(i) => claim_counts[i] += 1,
                None => {
                    claimed.push(value);
                    claim_counts.push(1);
                }
            }
        }

        // Worker answers: popularity-biased selection among the claimed
        // values (workers echo what the web says), with a boost for the
        // truth when it was claimed at all.
        if claimed.is_empty() || workers.is_empty() {
            continue;
        }
        let mut expected = cfg.answer_rate;
        while expected > 0.0 {
            let emit = expected >= 1.0 || rng.random::<f64>() < expected;
            expected -= 1.0;
            if !emit {
                continue;
            }
            let w = workers[rng.random_range(0..workers.len())];
            let value = if claimed.contains(&truth) && rng.random::<f64>() < 0.7 {
                truth
            } else {
                // Proportional to claim count: widespread misinformation
                // attracts worker answers too.
                let total: u32 = claim_counts.iter().sum();
                let mut target = rng.random_range(0..total);
                let mut pick = claimed[0];
                for (v, &c) in claimed.iter().zip(&claim_counts) {
                    if target < c {
                        pick = *v;
                        break;
                    }
                    target -= c;
                }
                pick
            };
            ds.add_answer(o, w, value);
        }
    }

    Corpus {
        name: cfg.name.clone(),
        dataset: ds,
        truths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::ObservationIndex;

    fn small() -> WebScaleConfig {
        WebScaleConfig {
            name: "webscale-test".into(),
            n_objects: 300,
            n_sources: 40,
            n_workers: 12,
            n_claims: 2_000,
            hierarchy: HierarchyConfig {
                n_nodes: 200,
                height: 4,
                top_level: 5,
            },
            ..WebScaleConfig::paper()
        }
    }

    #[test]
    fn claim_count_is_exact_and_objects_covered() {
        let c = generate_webscale(&small(), 7);
        assert_eq!(c.dataset.records().len(), 2_000);
        assert_eq!(c.dataset.n_objects(), 300);
        assert_eq!(c.truths.len(), 300);
        // Every object gets at least base = 6 claims.
        let idx = ObservationIndex::build(&c.dataset);
        for oi in 0..idx.n_objects() {
            assert!(!idx.views()[oi].candidates.is_empty());
        }
    }

    #[test]
    fn answers_select_among_candidates() {
        let c = generate_webscale(&small(), 11);
        assert!(
            !c.dataset.answers().is_empty(),
            "answer_rate 0.3 over 300 objects"
        );
        // build() panics on any answer outside the candidate set.
        let idx = ObservationIndex::build(&c.dataset);
        assert!(idx.n_workers() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_webscale(&small(), 3);
        let b = generate_webscale(&small(), 3);
        assert_eq!(a.dataset.records(), b.dataset.records());
        assert_eq!(a.dataset.answers(), b.dataset.answers());
        assert_eq!(a.truths, b.truths);
        let c = generate_webscale(&small(), 4);
        assert_ne!(a.dataset.records(), c.dataset.records());
    }

    #[test]
    fn corpus_is_hierarchical_and_misinformed() {
        // The statistical properties the scaling fit relies on: a healthy
        // share of objects in O_H (generalized claims land ancestors in the
        // candidate sets) and multi-candidate objects (decoys contested).
        let c = generate_webscale(&small(), 5);
        let idx = ObservationIndex::build(&c.dataset);
        let in_oh = idx.views().iter().filter(|v| v.in_oh).count();
        let multi = idx
            .views()
            .iter()
            .filter(|v| v.candidates.len() > 1)
            .count();
        assert!(in_oh > 50, "O_H objects: {in_oh}/300");
        assert!(multi > 150, "contested objects: {multi}/300");
    }

    #[test]
    fn truth_is_the_plurality_claim_for_most_objects() {
        // φ ~ Dir(12, 4, 4) sources claim the exact truth ~60% of the time,
        // so a simple per-object plurality should already land most truths —
        // the corpus is learnable, not noise.
        let c = generate_webscale(&small(), 9);
        let idx = ObservationIndex::build(&c.dataset);
        let mut correct = 0;
        for (oi, view) in idx.views().iter().enumerate() {
            let best = (0..view.candidates.len())
                .max_by_key(|&v| view.source_count[v])
                .unwrap();
            if view.candidates[best] == c.truths[oi] {
                correct += 1;
            }
        }
        assert!(correct > 240, "plurality recovers {correct}/300");
    }
}
