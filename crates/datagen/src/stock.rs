//! The numeric (stock-style) corpus behind Table 6.
//!
//! The paper evaluates the numeric extension on the deep-web stock dataset of
//! Li et al. (2012): 1,000 symbols × 55 sources, with attributes reported at
//! wildly varying significant figures and the occasional gross outlier. The
//! generator reproduces those failure modes:
//!
//! * every source has a *resolution* — it truncates the truth to its number
//!   of decimal places (creating the implicit rounding hierarchy §3.2 uses);
//! * some claims are *wrong* (stale or scraped off the wrong row): truth
//!   plus noise at the source's resolution;
//! * rare claims are *outliers*: the truth scaled by a large power of ten or
//!   an unrelated magnitude — the claims that wreck averaging baselines
//!   (MEAN, CATD) but not candidate-selection ones (TDH, VOTE).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdh_data::{NumericDataset, ObjectId, SourceId};
use tdh_hierarchy::numeric::round_to_place;

use crate::sampling::normal;

/// The three stock attributes of Table 6, each with its own truth
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StockAttribute {
    /// Daily change rate: small signed ratios (e.g. `0.0123`).
    ChangeRate,
    /// Opening price: positive dollars-and-cents values.
    OpenPrice,
    /// Earnings per share: small signed values around a dollar.
    Eps,
}

impl StockAttribute {
    /// All attributes, in Table 6 order.
    pub const ALL: [StockAttribute; 3] = [
        StockAttribute::ChangeRate,
        StockAttribute::OpenPrice,
        StockAttribute::Eps,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StockAttribute::ChangeRate => "change rate",
            StockAttribute::OpenPrice => "open price",
            StockAttribute::Eps => "EPS",
        }
    }

    /// Draw a ground-truth value for one object.
    fn draw_truth(self, rng: &mut StdRng) -> f64 {
        match self {
            // Typical daily change rates, 4 decimals, avoiding exact zero.
            StockAttribute::ChangeRate => {
                let v = round_to_place(normal(rng, 0.0, 0.02), -4);
                if v == 0.0 {
                    0.0001
                } else {
                    v
                }
            }
            // Log-normal-ish prices in roughly $1–$500, cents resolution.
            StockAttribute::OpenPrice => {
                let v = (normal(rng, 3.0, 1.0)).exp().clamp(0.5, 800.0);
                round_to_place(v, -2)
            }
            // EPS around $0.5, 2 decimals.
            StockAttribute::Eps => {
                let v = round_to_place(normal(rng, 0.5, 0.8), -2);
                if v == 0.0 {
                    0.01
                } else {
                    v
                }
            }
        }
    }
}

/// Configuration for [`generate_stock`].
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// The attribute to generate (truth distribution differs per attribute).
    pub attribute: StockAttribute,
    /// Number of objects (paper: 1,000 symbols).
    pub n_objects: usize,
    /// Number of sources (paper: 55).
    pub n_sources: usize,
    /// Probability that a source reports on a given object.
    pub coverage: f64,
    /// Probability of a wrong (noisy) claim.
    pub wrong_prob: f64,
    /// Probability of a gross outlier claim.
    pub outlier_prob: f64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            attribute: StockAttribute::OpenPrice,
            n_objects: 1_000,
            n_sources: 55,
            coverage: 0.6,
            wrong_prob: 0.15,
            outlier_prob: 0.02,
        }
    }
}

/// Generate a numeric truth-discovery corpus for one stock attribute.
pub fn generate_stock(cfg: &StockConfig, seed: u64) -> NumericDataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_ef01_2345_6789);
    let mut ds = NumericDataset::new(cfg.n_objects, cfg.n_sources);

    let truths: Vec<f64> = (0..cfg.n_objects)
        .map(|_| cfg.attribute.draw_truth(&mut rng))
        .collect();
    for (i, &t) in truths.iter().enumerate() {
        ds.set_gold(ObjectId::from_index(i), t);
    }

    // Per-source resolution: how many decimal places the source keeps.
    // Finer than the truth's own resolution just reproduces the truth.
    let resolutions: Vec<i32> = (0..cfg.n_sources)
        .map(|_| match cfg.attribute {
            StockAttribute::ChangeRate => -rng.random_range(1i32..=4),
            StockAttribute::OpenPrice => -rng.random_range(0i32..=2),
            StockAttribute::Eps => -rng.random_range(0i32..=2),
        })
        .collect();

    // Outliers concentrate in a few sloppy sources (scraper bugs live in
    // specific extraction pipelines, as in the real deep-web stock data):
    // 20% of the sources carry 4× the mean outlier rate, the rest 1/4 of
    // it. This is what lets weighting baselines (CRH, CATD) partially
    // recover while plain MEAN cannot.
    let outlier_rate: Vec<f64> = (0..cfg.n_sources)
        .map(|_| {
            if rng.random::<f64>() < 0.2 {
                (cfg.outlier_prob * 4.0).min(0.9)
            } else {
                cfg.outlier_prob / 4.0
            }
        })
        .collect();

    for oi in 0..cfg.n_objects {
        let truth = truths[oi];
        for si in 0..cfg.n_sources {
            if rng.random::<f64>() >= cfg.coverage {
                continue;
            }
            let roll: f64 = rng.random();
            let value = if roll < outlier_rate[si] {
                // Decimal-shift scrape errors or an unrelated magnitude.
                if rng.random_bool(0.5) {
                    truth * 10f64.powi(rng.random_range(2..=4))
                } else {
                    truth + normal(&mut rng, 0.0, 100.0 * truth.abs().max(1.0))
                }
            } else if roll < outlier_rate[si] + cfg.wrong_prob {
                // Plausibly wrong: off by noise at the source's resolution.
                let noise_scale = 10f64.powi(resolutions[si]) * 4.0;
                round_to_place(truth + normal(&mut rng, 0.0, noise_scale), resolutions[si])
            } else {
                // Correct at the source's resolution (possibly generalized).
                round_to_place(truth, resolutions[si])
            };
            if value.is_finite() {
                ds.add_claim(ObjectId::from_index(oi), SourceId::from_index(si), value);
            }
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::numeric::place_of;

    #[test]
    fn all_objects_have_gold_and_claims() {
        let cfg = StockConfig {
            n_objects: 100,
            ..Default::default()
        };
        let ds = generate_stock(&cfg, 1);
        let by_obj = ds.claims_by_object();
        let mut with_claims = 0;
        for o in ds.objects() {
            assert!(ds.gold(o).is_some());
            if !by_obj[o.index()].is_empty() {
                with_claims += 1;
            }
        }
        // Coverage 0.6 over 55 sources: virtually every object is claimed.
        assert!(with_claims >= 99);
    }

    #[test]
    fn truths_avoid_exact_zero() {
        for attr in StockAttribute::ALL {
            let cfg = StockConfig {
                attribute: attr,
                n_objects: 300,
                ..Default::default()
            };
            let ds = generate_stock(&cfg, 2);
            for o in ds.objects() {
                assert_ne!(ds.gold(o), Some(0.0), "{}", attr.name());
            }
        }
    }

    #[test]
    fn most_claims_are_rounded_truths() {
        let cfg = StockConfig {
            attribute: StockAttribute::OpenPrice,
            n_objects: 200,
            ..Default::default()
        };
        let ds = generate_stock(&cfg, 3);
        let mut correctish = 0usize;
        for c in ds.claims() {
            let t = ds.gold(c.object).unwrap();
            if (round_to_place(t, place_of(c.value)) - c.value).abs() < 1e-9 {
                correctish += 1;
            }
        }
        let frac = correctish as f64 / ds.claims().len() as f64;
        assert!(frac > 0.7, "rounded-truth fraction {frac}");
    }

    #[test]
    fn outliers_exist_but_are_rare() {
        let cfg = StockConfig {
            attribute: StockAttribute::OpenPrice,
            n_objects: 500,
            ..Default::default()
        };
        let ds = generate_stock(&cfg, 4);
        let mut outliers = 0usize;
        for c in ds.claims() {
            let t = ds.gold(c.object).unwrap();
            if (c.value - t).abs() > 10.0 * t.abs().max(1.0) {
                outliers += 1;
            }
        }
        let frac = outliers as f64 / ds.claims().len() as f64;
        assert!(frac > 0.001 && frac < 0.05, "outlier fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StockConfig {
            n_objects: 50,
            ..Default::default()
        };
        let a = generate_stock(&cfg, 9);
        let b = generate_stock(&cfg, 9);
        assert_eq!(a.claims(), b.claims());
    }
}
