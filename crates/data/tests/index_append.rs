//! Property suite: `ObservationIndex::append_from` — the online-ingestion
//! path used by `tdh-serve` — leaves the index **field-for-field identical**
//! to a full `ObservationIndex::build` over the grown dataset.
//!
//! Random cases cover: batches that add brand-new objects/sources/workers,
//! records that insert new candidates into the middle of a sorted candidate
//! set (forcing index remaps of `S_o`/`W_o`, `O_s`/`O_w` and the popularity
//! counts while earlier answers are already in place), repeated appends,
//! empty batches, and datasets that start empty.

use proptest::prelude::*;
use tdh_data::{Dataset, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh_hierarchy::{HierarchyBuilder, NodeId};

/// Assert complete structural equality between two indexes over `ds`.
fn assert_index_eq(_ds: &Dataset, a: &ObservationIndex, b: &ObservationIndex, label: &str) {
    assert_eq!(a.n_objects(), b.n_objects(), "{label}: n_objects");
    for oi in 0..a.n_objects() {
        let (va, vb) = (&a.views()[oi], &b.views()[oi]);
        assert_eq!(va.candidates, vb.candidates, "{label}: candidates[{oi}]");
        assert_eq!(va.sources, vb.sources, "{label}: sources[{oi}]");
        assert_eq!(va.workers, vb.workers, "{label}: workers[{oi}]");
        assert_eq!(va.ancestors, vb.ancestors, "{label}: ancestors[{oi}]");
        assert_eq!(va.descendants, vb.descendants, "{label}: descendants[{oi}]");
        assert_eq!(va.in_oh, vb.in_oh, "{label}: in_oh[{oi}]");
        assert_eq!(
            va.source_count, vb.source_count,
            "{label}: source_count[{oi}]"
        );
        assert_eq!(
            va.worker_count, vb.worker_count,
            "{label}: worker_count[{oi}]"
        );
    }
    assert_eq!(a.n_sources(), b.n_sources(), "{label}: n_sources");
    for si in 0..a.n_sources() {
        let s = SourceId(si as u32);
        assert_eq!(
            a.objects_of_source(s),
            b.objects_of_source(s),
            "{label}: O_s[{si}]"
        );
    }
    assert_eq!(a.n_workers(), b.n_workers(), "{label}: n_workers");
    for wi in 0..a.n_workers() {
        let w = WorkerId(wi as u32);
        assert_eq!(
            a.objects_of_worker(w),
            b.objects_of_worker(w),
            "{label}: O_w[{wi}]"
        );
    }
    for wi in 0..a.n_workers() {
        for oi in 0..a.n_objects() {
            let (w, o) = (WorkerId(wi as u32), ObjectId(oi as u32));
            assert_eq!(
                a.has_answered(w, o),
                b.has_answered(w, o),
                "{label}: answered({wi}, {oi})"
            );
        }
    }
}

/// The hierarchy every case draws values from: `n_top` top-level branches
/// with `n_leaf` leaves each (so candidate sets mix flat and hierarchical
/// pairs). Returns the node universe in a fixed order.
fn build_hierarchy(n_top: usize, n_leaf: usize) -> (tdh_hierarchy::Hierarchy, Vec<NodeId>) {
    let mut b = HierarchyBuilder::new();
    let mut names = Vec::new();
    for t in 0..n_top {
        let top = format!("T{t}");
        for l in 0..n_leaf {
            let leaf = format!("T{t}L{l}");
            b.add_path(&[&top, &leaf]);
            names.push(leaf);
        }
        names.push(top);
    }
    let h = b.build();
    let nodes = names.iter().map(|n| h.node_by_name(n).unwrap()).collect();
    (h, nodes)
}

/// Apply one phase of raw draws to `ds`: intern the phase's entity universe
/// (ids grow monotonically, so later phases can add new entities), append
/// its records, then answers that select among currently-claimed candidates
/// (draws landing on candidate-less objects are skipped, §2.1).
fn apply_phase(
    ds: &mut Dataset,
    nodes: &[NodeId],
    n_obj: usize,
    n_src: usize,
    n_wrk: usize,
    raw_records: &[(usize, usize, usize)],
    raw_answers: &[(usize, usize, usize)],
) {
    for o in 0..n_obj {
        ds.intern_object(&format!("o{o}"));
    }
    for s in 0..n_src {
        ds.intern_source(&format!("s{s}"));
    }
    for w in 0..n_wrk {
        ds.intern_worker(&format!("w{w}"));
    }
    if ds.n_objects() == 0 {
        return;
    }
    let (n_obj, n_src, n_wrk) = (ds.n_objects(), ds.n_sources(), ds.n_workers());
    for &(o, s, v) in raw_records {
        ds.add_record(
            ObjectId((o % n_obj) as u32),
            SourceId((s % n_src) as u32),
            nodes[v % nodes.len()],
        );
    }
    let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n_obj];
    for r in ds.records() {
        cands[r.object.index()].push(r.value);
    }
    for c in &mut cands {
        c.sort_unstable();
        c.dedup();
    }
    for &(o, w, pick) in raw_answers {
        let oi = o % n_obj;
        if cands[oi].is_empty() {
            continue;
        }
        ds.add_answer(
            ObjectId(oi as u32),
            WorkerId((w % n_wrk) as u32),
            cands[oi][pick % cands[oi].len()],
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn append_equals_rebuild(
        shape in (1usize..4, 1usize..4),
        base_dims in (0usize..5, 1usize..4, 1usize..3),
        grow_dims in (0usize..8, 1usize..6, 1usize..5),
        base in (
            proptest::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 0..20),
            proptest::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 0..12)),
        grow in (
            proptest::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 0..20),
            proptest::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 0..12)),
        batch2 in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..15),
    ) {
        let (n_top, n_leaf) = shape;
        let (base_records, base_answers) = base;
        let (batch1, batch1_answers) = grow;
        let (h, nodes) = build_hierarchy(n_top, n_leaf);
        let mut ds = Dataset::new(h);
        let (n_obj, n_src, n_wrk) = base_dims;
        apply_phase(&mut ds, &nodes, n_obj, n_src, n_wrk, &base_records, &base_answers);
        let mut idx = ObservationIndex::build(&ds);

        // First batch may also grow the entity universe.
        let (g_obj, g_src, g_wrk) = grow_dims;
        let (nr, na) = (ds.records().len(), ds.answers().len());
        apply_phase(&mut ds, &nodes, n_obj + g_obj, n_src + g_src, n_wrk + g_wrk,
            &batch1, &batch1_answers);
        idx.append_from(&ds, nr, na);
        assert_index_eq(&ds, &ObservationIndex::build(&ds), &idx, "batch 1");

        // Second batch: records only (answers already covered), repeated
        // append on the already-appended index.
        let (nr, na) = (ds.records().len(), ds.answers().len());
        apply_phase(&mut ds, &nodes, 0, 0, 0, &batch2, &[]);
        idx.append_from(&ds, nr, na);
        assert_index_eq(&ds, &ObservationIndex::build(&ds), &idx, "batch 2");

        // Empty batch is a no-op.
        idx.append_from(&ds, ds.records().len(), ds.answers().len());
        assert_index_eq(&ds, &ObservationIndex::build(&ds), &idx, "empty batch");
    }
}

#[test]
fn candidate_insertion_remaps_existing_answers() {
    // An object with answered candidates {B, D} gains claims of A and C —
    // one inserted before every existing index, one in the middle — while a
    // second object keeps the shared source's incidence list honest.
    let mut b = HierarchyBuilder::new();
    for name in ["A", "B", "C", "D"] {
        b.add_path(&["top", name]);
    }
    let mut ds = Dataset::new(b.build());
    let o0 = ds.intern_object("o0");
    let o1 = ds.intern_object("o1");
    let s = ds.intern_source("s");
    let w = ds.intern_worker("w");
    let node = |ds: &Dataset, n: &str| ds.hierarchy().node_by_name(n).unwrap();
    let (a, c, d) = (node(&ds, "A"), node(&ds, "C"), node(&ds, "D"));
    let bb = node(&ds, "B");
    ds.add_record(o0, s, bb);
    ds.add_record(o0, s, d);
    ds.add_record(o1, s, d);
    ds.add_answer(o0, w, d);
    let mut idx = ObservationIndex::build(&ds);

    let (nr, na) = (ds.records().len(), ds.answers().len());
    ds.add_record(o0, s, a);
    ds.add_record(o0, s, c);
    ds.add_answer(o0, w, a);
    idx.append_from(&ds, nr, na);
    assert_index_eq(&ds, &ObservationIndex::build(&ds), &idx, "remap");

    let view = idx.view(o0);
    assert_eq!(view.n_candidates(), 4);
    // The old answer still points at D after two insertions shifted it.
    let d_idx = view.cand_index(d).unwrap();
    assert_eq!(view.workers[0], (w, d_idx));
}

#[test]
fn rejected_batch_leaves_the_index_untouched() {
    // Batch atomicity: a batch whose *last* claim is invalid (an answer
    // selecting a never-claimed value) must not leave its earlier records
    // half-applied — the WAL-replay path in tdh-serve re-applies logged
    // batches through `append_from` and relies on all-or-nothing. Before
    // the up-front validation this panicked only *after* pushing the
    // batch's records, leaving `idx` diverged from a clean rebuild.
    let (h, nodes) = build_hierarchy(2, 2);
    let mut ds = Dataset::new(h);
    apply_phase(
        &mut ds,
        &nodes,
        2,
        2,
        1,
        &[(0, 0, 0), (1, 1, 3)],
        &[(0, 0, 0)],
    );
    let mut idx = ObservationIndex::build(&ds);
    let pristine = ObservationIndex::build(&ds);

    // Grow the dataset with a bad batch: two valid records, then an answer
    // whose value (nodes[1]) no record ever claimed for object 1.
    let (nr, na) = (ds.records().len(), ds.answers().len());
    ds.add_record(ObjectId(0), SourceId(1), nodes[1]);
    ds.add_record(ObjectId(1), SourceId(0), nodes[2]);
    ds.add_answer(ObjectId(1), WorkerId(0), nodes[1]);

    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        idx.append_from(&ds, nr, na);
    }));
    std::panic::set_hook(hook);
    let err = outcome.expect_err("an invalid answer must still panic");
    let message = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(message.contains("candidate"), "unexpected panic: {message}");

    // The failed batch must not have touched the index at all.
    assert_index_eq(&ds, &pristine, &idx, "after rejected batch");

    // A cursor past the dataset's counts is also rejected pre-mutation.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        idx.append_from(&ds, ds.records().len() + 1, na);
    }));
    std::panic::set_hook(hook);
    assert!(outcome.is_err(), "out-of-range cursor must panic");
    assert_index_eq(&ds, &pristine, &idx, "after out-of-range cursor");

    // And the same batch minus the bad answer still applies cleanly.
    let mut ds_ok = Dataset::new(build_hierarchy(2, 2).0);
    apply_phase(
        &mut ds_ok,
        &nodes,
        2,
        2,
        1,
        &[(0, 0, 0), (1, 1, 3)],
        &[(0, 0, 0)],
    );
    let mut idx_ok = ObservationIndex::build(&ds_ok);
    let (nr, na) = (ds_ok.records().len(), ds_ok.answers().len());
    ds_ok.add_record(ObjectId(0), SourceId(1), nodes[1]);
    ds_ok.add_record(ObjectId(1), SourceId(0), nodes[2]);
    ds_ok.add_answer(ObjectId(1), WorkerId(0), nodes[2]);
    idx_ok.append_from(&ds_ok, nr, na);
    assert_index_eq(
        &ds_ok,
        &ObservationIndex::build(&ds_ok),
        &idx_ok,
        "good batch",
    );
}

#[test]
fn append_from_empty_start() {
    // The serve path where a snapshot of an empty corpus is grown online.
    let (h, nodes) = build_hierarchy(2, 2);
    let mut ds = Dataset::new(h);
    let mut idx = ObservationIndex::build(&ds);
    apply_phase(
        &mut ds,
        &nodes,
        3,
        2,
        1,
        &[(0, 0, 0), (1, 1, 3), (0, 1, 1)],
        &[(0, 0, 0)],
    );
    idx.append_from(&ds, 0, 0);
    assert_index_eq(&ds, &ObservationIndex::build(&ds), &idx, "from empty");
}
