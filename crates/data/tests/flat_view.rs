//! Property suite: the dense-id struct-of-arrays view
//! (`ObservationIndex::flatten`) agrees **field for field** with the
//! per-object `ObjectView`s it was derived from — on arbitrary datasets,
//! including empty datasets, claim-less objects, non-hierarchical candidate
//! sets, and candidate growth through `append_from`.
//!
//! Two contracts:
//!
//! 1. *Projection*: every window of the flat tables (candidates, record and
//!    answer columns, ancestor/descendant arenas, the ancestor bitmask, the
//!    popularity counts and the per-entity incidence totals) reproduces the
//!    corresponding view field exactly — the flat view holds no state of its
//!    own.
//! 2. *Append == rebuild*: flattening an index grown in place by
//!    `append_from` is bit-identical to flattening a from-scratch rebuild of
//!    the grown dataset, so a refit after ingestion sees exactly the tables
//!    a cold build would produce (candidate insertion remaps every dense id;
//!    the flat view must follow).

use proptest::prelude::*;
use tdh_data::{Dataset, FlatObservations, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh_hierarchy::HierarchyBuilder;

/// Field-for-field agreement of the flat tables with the index's views.
fn assert_flat_matches_views(idx: &ObservationIndex, flat: &FlatObservations, label: &str) {
    assert_eq!(flat.n_objects(), idx.n_objects(), "{label}: n_objects");
    let mut slots = 0usize;
    let mut recs = 0usize;
    let mut answers = 0usize;
    for oi in 0..idx.n_objects() {
        let view = &idx.views()[oi];
        let fo = flat.object(oi);
        let k = view.n_candidates();
        assert_eq!(fo.n_candidates(), k, "{label}: k[{oi}]");
        assert_eq!(fo.cand_base(), slots, "{label}: cand_base[{oi}]");
        assert_eq!(fo.candidates(), &view.candidates[..], "{label}: V[{oi}]");
        assert_eq!(
            fo.source_count(),
            &view.source_count[..],
            "{label}: sc[{oi}]"
        );
        assert_eq!(
            fo.worker_count(),
            &view.worker_count[..],
            "{label}: wc[{oi}]"
        );
        assert_eq!(fo.in_oh, view.in_oh, "{label}: in_oh[{oi}]");
        assert_eq!(
            fo.n_evidence(),
            view.sources.len() + view.workers.len(),
            "{label}: evidence[{oi}]"
        );
        let (src, src_cand): (Vec<u32>, Vec<u32>) =
            view.sources.iter().map(|&(s, c)| (s.0, c)).unzip();
        assert_eq!(fo.rec_src(), &src[..], "{label}: rec_src[{oi}]");
        assert_eq!(fo.rec_cand(), &src_cand[..], "{label}: rec_cand[{oi}]");
        let (wrk, ans_cand): (Vec<u32>, Vec<u32>) =
            view.workers.iter().map(|&(w, c)| (w.0, c)).unzip();
        assert_eq!(fo.ans_wrk(), &wrk[..], "{label}: ans_wrk[{oi}]");
        assert_eq!(fo.ans_cand(), &ans_cand[..], "{label}: ans_cand[{oi}]");
        for t in 0..k as u32 {
            assert_eq!(
                fo.ancestors(t),
                &view.ancestors[t as usize][..],
                "{label}: G[{oi}][{t}]"
            );
            assert_eq!(
                fo.descendants(t),
                &view.descendants[t as usize][..],
                "{label}: D[{oi}][{t}]"
            );
            assert_eq!(fo.anc_len(t), view.ancestors[t as usize].len());
            assert_eq!(
                fo.n_wrong(t),
                view.n_wrong(t),
                "{label}: n_wrong[{oi}][{t}]"
            );
            for c in 0..k as u32 {
                assert_eq!(
                    fo.is_ancestor(t, c),
                    view.ancestors[t as usize].contains(&c),
                    "{label}: mask[{oi}]({t},{c})"
                );
                if view.ancestors[t as usize].contains(&c) {
                    assert_eq!(
                        fo.pop2(t, c),
                        view.pop2(t, c),
                        "{label}: pop2[{oi}]({t},{c})"
                    );
                } else if c != t {
                    assert_eq!(
                        fo.pop3(t, c),
                        view.pop3(t, c),
                        "{label}: pop3[{oi}]({t},{c})"
                    );
                }
            }
        }
        slots += k;
        recs += view.sources.len();
        answers += view.workers.len();
    }
    assert_eq!(flat.n_slots(), slots, "{label}: slot total");
    assert_eq!(flat.n_records(), recs, "{label}: record total");
    assert_eq!(flat.n_answers(), answers, "{label}: answer total");
    // Per-entity incidence totals match the O_s / O_w list lengths.
    assert_eq!(flat.recs_per_source.len(), idx.n_sources(), "{label}");
    for si in 0..idx.n_sources() {
        assert_eq!(
            flat.recs_per_source[si] as usize,
            idx.objects_of_source(SourceId(si as u32)).len(),
            "{label}: |O_s|[{si}]"
        );
    }
    assert_eq!(flat.ans_per_worker.len(), idx.n_workers(), "{label}");
    for wi in 0..idx.n_workers() {
        assert_eq!(
            flat.ans_per_worker[wi] as usize,
            idx.objects_of_worker(WorkerId(wi as u32)).len(),
            "{label}: |O_w|[{wi}]"
        );
    }
}

/// Build a dataset from raw generator draws (same scheme as the
/// `index_parallel` suite): every entity interned up front so claim-less
/// objects and answer-less workers exist, answers selecting among the
/// candidate set the records defined.
fn build_dataset(
    n_top: usize,
    n_leaf: usize,
    n_obj: usize,
    n_src: usize,
    n_wrk: usize,
    raw_records: &[(usize, usize, usize)],
    raw_answers: &[(usize, usize, usize)],
) -> Dataset {
    let mut b = HierarchyBuilder::new();
    let mut names = Vec::new();
    for t in 0..n_top {
        let top = format!("T{t}");
        for l in 0..n_leaf {
            let leaf = format!("T{t}L{l}");
            b.add_path(&[&top, &leaf]);
            names.push(leaf);
        }
        names.push(top);
    }
    let mut ds = Dataset::new(b.build());
    for o in 0..n_obj {
        ds.intern_object(&format!("o{o}"));
    }
    for s in 0..n_src {
        ds.intern_source(&format!("s{s}"));
    }
    for w in 0..n_wrk {
        ds.intern_worker(&format!("w{w}"));
    }
    if n_obj > 0 {
        for &(o, s, v) in raw_records {
            let value = ds
                .hierarchy()
                .node_by_name(&names[v % names.len()])
                .unwrap();
            ds.add_record(
                ObjectId((o % n_obj) as u32),
                SourceId((s % n_src) as u32),
                value,
            );
        }
        let mut cands: Vec<Vec<_>> = vec![Vec::new(); n_obj];
        for r in ds.records() {
            cands[r.object.index()].push(r.value);
        }
        for c in &mut cands {
            c.sort_unstable();
            c.dedup();
        }
        for &(o, w, pick) in raw_answers {
            let oi = o % n_obj;
            if cands[oi].is_empty() {
                continue;
            }
            let value = cands[oi][pick % cands[oi].len()];
            ds.add_answer(ObjectId(oi as u32), WorkerId((w % n_wrk) as u32), value);
        }
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_view_matches_object_views(
        n_top in 1usize..5,
        n_leaf in 1usize..4,
        n_obj in 0usize..7,
        dims in (1usize..5, 1usize..4),
        raw_records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..40),
        raw_answers in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..25),
    ) {
        let (n_src, n_wrk) = dims;
        let ds = build_dataset(n_top, n_leaf, n_obj, n_src, n_wrk, &raw_records, &raw_answers);
        let idx = ObservationIndex::build(&ds);
        assert_flat_matches_views(&idx, &idx.flatten(), "build");
        // The threaded build flattens identically (its views are pinned
        // field-for-field equal by the index_parallel suite).
        let par = ObservationIndex::build_threaded(&ds, 3);
        prop_assert_eq!(par.flatten(), idx.flatten());
    }

    #[test]
    fn append_then_flatten_equals_rebuild_then_flatten(
        n_obj in 1usize..6,
        dims in (1usize..4, 1usize..3),
        base_records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..20),
        grow_records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 1..20),
        grow_answers in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..12),
    ) {
        let (n_src, n_wrk) = dims;
        // Base corpus, indexed; then the dataset grows (new values insert
        // candidates mid-row, remapping dense ids) and the index follows
        // in place via append_from.
        let base = build_dataset(4, 3, n_obj, n_src, n_wrk, &base_records, &[]);
        let mut idx = ObservationIndex::build(&base);
        let (n_recs, n_ans) = (base.records().len(), base.answers().len());

        let mut raw = base_records.clone();
        raw.extend_from_slice(&grow_records);
        let grown = build_dataset(4, 3, n_obj, n_src, n_wrk, &raw, &grow_answers);
        idx.append_from(&grown, n_recs, n_ans);

        let rebuilt = ObservationIndex::build(&grown);
        let (inc, reb) = (idx.flatten(), rebuilt.flatten());
        prop_assert_eq!(&inc, &reb, "append_from and rebuild must flatten identically");
        assert_flat_matches_views(&idx, &inc, "appended");
    }

    #[test]
    fn refresh_equals_rebuild_then_flatten(
        n_obj in 1usize..6,
        dims in (1usize..4, 1usize..3),
        base_records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..20),
        grow_records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 1..20),
        grow_answers in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..12),
        split in 0usize..20,
    ) {
        let (n_src, n_wrk) = dims;
        // Flatten the base corpus, grow the dataset in TWO appends (their
        // deltas merged), then refresh the stale flat view: it must equal a
        // from-scratch rebuild + flatten, bit for bit.
        let base = build_dataset(4, 3, n_obj, n_src, n_wrk, &base_records, &[]);
        let mut idx = ObservationIndex::build(&base);
        let mut flat = idx.flatten();
        let (n_recs, n_ans) = (base.records().len(), base.answers().len());

        let split = split.min(grow_records.len());
        let mut raw = base_records.clone();
        raw.extend_from_slice(&grow_records[..split]);
        let mid = build_dataset(4, 3, n_obj, n_src, n_wrk, &raw, &[]);
        let mut delta = idx.append_from(&mid, n_recs, n_ans);
        let (m_recs, m_ans) = (mid.records().len(), mid.answers().len());

        raw.extend_from_slice(&grow_records[split..]);
        let grown = build_dataset(4, 3, n_obj, n_src, n_wrk, &raw, &grow_answers);
        delta.merge(&idx.append_from(&grown, m_recs, m_ans));

        flat.refresh(&idx, &delta);
        let reb = ObservationIndex::build(&grown).flatten();
        prop_assert_eq!(&flat, &reb, "refresh must equal rebuild + flatten");
    }
}

#[test]
fn empty_dataset_flattens_empty() {
    let ds = Dataset::new(HierarchyBuilder::new().build());
    let flat = ObservationIndex::build(&ds).flatten();
    assert_eq!(flat.n_objects(), 0);
    assert_eq!(flat.n_slots(), 0);
    assert_eq!(flat.n_records(), 0);
    assert_eq!(flat.n_answers(), 0);
}

#[test]
fn claim_less_objects_own_empty_windows() {
    // Three objects, only the middle one claimed about: its neighbours'
    // windows are empty but addressable.
    let ds = build_dataset(2, 2, 3, 1, 1, &[(1, 0, 0), (1, 0, 4)], &[(1, 0, 0)]);
    let idx = ObservationIndex::build(&ds);
    let flat = idx.flatten();
    assert_flat_matches_views(&idx, &flat, "claim-less");
    for oi in [0, 2] {
        let fo = flat.object(oi);
        assert_eq!(fo.n_candidates(), 0);
        assert_eq!(fo.n_evidence(), 0);
    }
    assert_eq!(flat.object(1).n_evidence(), 3);
}
