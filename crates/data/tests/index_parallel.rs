//! Property suite: `ObservationIndex::build_threaded` is field-for-field
//! identical to the sequential `ObservationIndex::build` — for every thread
//! count, over randomly generated datasets that include empty datasets,
//! claim-less ("empty") objects, single-source and single-worker corpora,
//! hierarchical and flat candidate sets, and workers with no answers.
//!
//! The index has no floating-point state, so the contract is exact
//! equality, not a tolerance: candidates, ancestor/descendant sets,
//! incidence lists and popularity counts must come out in exactly the
//! sequential order regardless of chunking.

use proptest::prelude::*;
use tdh_data::{Dataset, ObjectId, ObservationIndex, SourceId, WorkerId};
use tdh_hierarchy::HierarchyBuilder;

/// Thread counts compared against the sequential reference in every case:
/// in-caller (1), fewer chunks than entities, more chunks than entities.
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Assert complete structural equality between two indexes built from `ds`.
fn assert_index_eq(ds: &Dataset, a: &ObservationIndex, b: &ObservationIndex, label: &str) {
    assert_eq!(a.n_objects(), b.n_objects(), "{label}: n_objects");
    for oi in 0..a.n_objects() {
        let (va, vb) = (&a.views()[oi], &b.views()[oi]);
        assert_eq!(va.candidates, vb.candidates, "{label}: candidates[{oi}]");
        assert_eq!(va.sources, vb.sources, "{label}: sources[{oi}]");
        assert_eq!(va.workers, vb.workers, "{label}: workers[{oi}]");
        assert_eq!(va.ancestors, vb.ancestors, "{label}: ancestors[{oi}]");
        assert_eq!(va.descendants, vb.descendants, "{label}: descendants[{oi}]");
        assert_eq!(va.in_oh, vb.in_oh, "{label}: in_oh[{oi}]");
        assert_eq!(
            va.source_count, vb.source_count,
            "{label}: source_count[{oi}]"
        );
        assert_eq!(
            va.worker_count, vb.worker_count,
            "{label}: worker_count[{oi}]"
        );
    }
    assert_eq!(a.n_sources(), b.n_sources(), "{label}: n_sources");
    for si in 0..a.n_sources() {
        let s = SourceId(si as u32);
        assert_eq!(
            a.objects_of_source(s),
            b.objects_of_source(s),
            "{label}: O_s[{si}]"
        );
    }
    assert_eq!(a.n_workers(), b.n_workers(), "{label}: n_workers");
    for wi in 0..a.n_workers() {
        let w = WorkerId(wi as u32);
        assert_eq!(
            a.objects_of_worker(w),
            b.objects_of_worker(w),
            "{label}: O_w[{wi}]"
        );
    }
    // The answered set is compared over the full worker × object grid.
    for wi in 0..a.n_workers() {
        for oi in 0..a.n_objects() {
            let (w, o) = (WorkerId(wi as u32), ObjectId(oi as u32));
            assert_eq!(
                a.has_answered(w, o),
                b.has_answered(w, o),
                "{label}: answered({wi}, {oi})"
            );
        }
    }
    // And every recorded answer must be marked on both.
    for ans in ds.answers() {
        assert!(
            a.has_answered(ans.worker, ans.object),
            "{label}: seq lost an answer"
        );
        assert!(
            b.has_answered(ans.worker, ans.object),
            "{label}: par lost an answer"
        );
    }
}

/// Build a dataset from raw generator draws. Interns every entity up front
/// (so claim-less objects, record-less sources and answer-less workers all
/// exist), then resolves each draw against the hierarchy/candidate sets.
fn build_dataset(
    n_top: usize,
    n_leaf: usize,
    n_obj: usize,
    n_src: usize,
    n_wrk: usize,
    raw_records: &[(usize, usize, usize)],
    raw_answers: &[(usize, usize, usize)],
) -> Dataset {
    let mut b = HierarchyBuilder::new();
    let mut names = Vec::new();
    for t in 0..n_top {
        let top = format!("T{t}");
        for l in 0..n_leaf {
            let leaf = format!("T{t}L{l}");
            b.add_path(&[&top, &leaf]);
            names.push(leaf);
        }
        names.push(top);
    }
    let mut ds = Dataset::new(b.build());
    for o in 0..n_obj {
        ds.intern_object(&format!("o{o}"));
    }
    for s in 0..n_src {
        ds.intern_source(&format!("s{s}"));
    }
    for w in 0..n_wrk {
        ds.intern_worker(&format!("w{w}"));
    }
    if n_obj > 0 {
        for &(o, s, v) in raw_records {
            let value = ds
                .hierarchy()
                .node_by_name(&names[v % names.len()])
                .unwrap();
            ds.add_record(
                ObjectId((o % n_obj) as u32),
                SourceId((s % n_src) as u32),
                value,
            );
        }
        // Candidate sets are defined by the records; answers select among
        // them (objects with no candidates take no answers, §2.1).
        let mut cands: Vec<Vec<_>> = vec![Vec::new(); n_obj];
        for r in ds.records() {
            cands[r.object.index()].push(r.value);
        }
        for c in &mut cands {
            c.sort_unstable();
            c.dedup();
        }
        for &(o, w, pick) in raw_answers {
            let oi = o % n_obj;
            if cands[oi].is_empty() {
                continue;
            }
            let value = cands[oi][pick % cands[oi].len()];
            ds.add_answer(ObjectId(oi as u32), WorkerId((w % n_wrk) as u32), value);
        }
    }
    ds
}

fn check_all_thread_counts(ds: &Dataset) {
    let seq = ObservationIndex::build(ds);
    for t in THREADS {
        let par = ObservationIndex::build_threaded(ds, t);
        assert_index_eq(ds, &seq, &par, &format!("threads={t}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn threaded_build_matches_sequential(
        n_top in 1usize..5,
        n_leaf in 1usize..4,
        n_obj in 0usize..7,
        dims in (1usize..5, 1usize..4),
        raw_records in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..40),
        raw_answers in proptest::collection::vec(
            (0usize..1000, 0usize..1000, 0usize..1000), 0..25),
    ) {
        let (n_src, n_wrk) = dims;
        let ds = build_dataset(n_top, n_leaf, n_obj, n_src, n_wrk, &raw_records, &raw_answers);
        check_all_thread_counts(&ds);
    }
}

#[test]
fn empty_dataset_builds_on_every_thread_count() {
    let ds = Dataset::new(HierarchyBuilder::new().build());
    check_all_thread_counts(&ds);
    let idx = ObservationIndex::build_threaded(&ds, 8);
    assert_eq!(idx.n_objects(), 0);
    assert_eq!(idx.n_sources(), 0);
    assert_eq!(idx.n_workers(), 0);
}

#[test]
fn single_source_single_worker_corpus() {
    // The smallest non-trivial corpus: one source claims about two objects
    // (one hierarchical pair), one worker answers one of them.
    let ds = build_dataset(
        2,
        2,
        3, // the third object stays claim-less
        1,
        1,
        &[(0, 0, 0), (0, 0, 4), (1, 0, 1)],
        &[(0, 0, 0), (2, 0, 1)], // second answer lands on a claim-less object and is skipped
    );
    assert_eq!(ds.n_sources(), 1);
    assert_eq!(ds.n_workers(), 1);
    check_all_thread_counts(&ds);
}

#[test]
fn threaded_build_matches_incremental_answers() {
    // The crowd loop's invariant, now across the pooled build: building
    // after answers arrive equals building before and pushing them.
    let records = [
        (0, 0, 0),
        (0, 1, 3),
        (1, 2, 1),
        (2, 0, 2),
        (3, 1, 5),
        (4, 2, 0),
    ];
    let answers = [(0, 0, 0), (1, 1, 0), (2, 0, 1), (4, 1, 2)];
    let ds_full = build_dataset(3, 3, 5, 3, 2, &records, &answers);
    let ds_records_only = build_dataset(3, 3, 5, 3, 2, &records, &[]);
    let mut incremental = ObservationIndex::build_threaded(&ds_records_only, 4);
    for a in ds_full.answers() {
        incremental.push_answer(*a);
    }
    let direct = ObservationIndex::build_threaded(&ds_full, 4);
    assert_index_eq(&ds_full, &direct, &incremental, "incremental");
}
