//! Data model for crowdsourced truth discovery.
//!
//! The problem input (paper §2) is a set of **records** `(o, s, v_o^s)`
//! collected from web sources and a growing set of **answers** `(o, w, v_o^w)`
//! collected from crowd workers, where every claimed value is a node of a
//! hierarchy tree `H`.
//!
//! * [`Dataset`] owns the hierarchy, the interned object/source/worker
//!   universes, the records, the answers, and the gold standard.
//! * [`ObservationIndex`] is the per-object view every inference algorithm
//!   consumes: candidate sets `V_o`, the source/worker incidence lists
//!   (`S_o`, `W_o`, `O_s`, `O_w`), the within-candidate ancestor/descendant
//!   sets (`G_o(v)`, `D_o(v)`), the `O_H` membership flag, and the claim
//!   counts behind the worker popularity terms `Pop2`/`Pop3`.
//! * [`NumericDataset`] is the flat `(object, source, f64)` form used by the
//!   numeric-truth experiments (paper §3.2 extension and Table 6).
//!
//! The index is built once from the records and then kept up to date
//! incrementally as crowdsourcing answers arrive
//! ([`ObservationIndex::push_answer`]), matching the paper's loop that
//! alternates inference and task assignment. On large corpora the build
//! itself is a hot path: [`ObservationIndex::build_threaded`] shards the
//! per-object view construction and the incidence/popularity passes over
//! the deterministic chunk primitives in [`par`], producing output
//! field-for-field identical to the sequential [`ObservationIndex::build`]
//! for every thread count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod delta;
mod flat;
mod ids;
mod index;
pub mod io;
mod numeric;
pub mod par;

pub use dataset::{Dataset, DatasetStats};
pub use delta::{DeltaSet, TouchedObject};
pub use flat::{FlatObject, FlatObservations};
pub use ids::{ObjectId, SourceId, WorkerId};
pub use index::{ObjectView, ObservationIndex};
pub use numeric::{NumericClaim, NumericDataset};

/// A record `(o, s, v_o^s)`: source `s` claims value `v` for object `o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// The object the claim is about.
    pub object: ObjectId,
    /// The claiming source.
    pub source: SourceId,
    /// The claimed value, a node of the dataset's hierarchy.
    pub value: tdh_hierarchy::NodeId,
}

/// An answer `(o, w, v_o^w)`: worker `w` answers value `v` for object `o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// The object the task was about.
    pub object: ObjectId,
    /// The answering worker.
    pub worker: WorkerId,
    /// The selected value; workers choose among the object's candidates.
    pub value: tdh_hierarchy::NodeId,
}
