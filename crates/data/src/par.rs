//! Deterministic chunking primitives shared by every parallel phase.
//!
//! Both the index build ([`crate::ObservationIndex::build_threaded`]) and the
//! EM phases in `tdh-core` split `0..n` entity ranges into contiguous chunks
//! whose boundaries depend only on `(n, n_threads)` — never on scheduling —
//! and merge per-chunk results in fixed chunk order. That discipline is what
//! makes every multi-threaded path in this workspace bit-identical
//! run-to-run. The primitives live here, in the lowest crate that needs
//! them; `tdh-core::par` re-exports them unchanged and layers its persistent
//! worker pool on top.
//!
//! * [`chunk_ranges`] splits `0..n` into at most `n_threads` contiguous,
//!   near-equal ranges.
//! * [`map_chunks`] runs one closure per chunk on scoped threads
//!   ([`std::thread::scope`], no vendored dependencies) and returns the
//!   per-chunk results **in chunk order**. It spawns per call, which is fine
//!   for one-shot phases such as an index build; iterated phases (the EM
//!   loop) should use the persistent pool in `tdh-core::par` instead.
//! * [`effective_threads`] resolves a configured thread count (`0` = auto).

use std::ops::Range;

/// Resolve a configured thread count to an effective one.
///
/// `0` means "auto": the `TDH_N_THREADS` environment variable when it parses
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to `1` when even that is unavailable). Any non-zero value is
/// returned unchanged.
pub fn effective_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(s) = std::env::var("TDH_N_THREADS") {
        match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            // Falling back silently would let a typo'd override (CI pins
            // the sequential leg through this variable) masquerade as the
            // requested thread count.
            _ => eprintln!(
                "warning: ignoring invalid TDH_N_THREADS={s:?} (want a positive integer); \
                 using available parallelism"
            ),
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `0..n` into at most `n_threads` contiguous, near-equal, non-empty
/// ranges covering `0..n` exactly, in ascending order.
///
/// The first `n % chunks` ranges carry one extra element, so lengths differ
/// by at most one. Returns an empty vector when `n == 0`; `n_threads == 0`
/// is treated as 1, so every call site degrades to the sequential single
/// chunk rather than panicking.
pub fn chunk_ranges(n: usize, n_threads: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = n_threads.clamp(1, n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Split `0..n` into at most `n_threads` contiguous, non-empty ranges whose
/// item-**weight** totals are near-equal, in ascending order.
///
/// `prefix` is the weight prefix-sum array (`prefix.len() == n + 1`,
/// `prefix[0] == 0`, non-decreasing): item `i` weighs
/// `prefix[i + 1] - prefix[i]`. Boundary `j` of chunk `i` is the first index
/// whose cumulative weight reaches `total * i / n_chunks`, so boundaries
/// depend only on `(prefix, n_threads)` — never on scheduling — exactly like
/// [`chunk_ranges`]. Used by the EM kernels to balance E-step chunks by
/// *claim* count instead of object count (Zipf corpora put most claims on
/// few objects, so equal object counts starve most threads). Degenerate
/// all-zero weights fall back to [`chunk_ranges`].
///
/// # Panics
/// Panics when `prefix` is empty (it must at least hold the leading 0).
pub fn chunk_ranges_weighted(n_threads: usize, prefix: &[u64]) -> Vec<Range<usize>> {
    let n = prefix
        .len()
        .checked_sub(1)
        .expect("prefix holds a leading 0");
    let total = prefix[n];
    if n == 0 {
        return Vec::new();
    }
    if total == 0 {
        return chunk_ranges(n, n_threads);
    }
    let chunks = n_threads.clamp(1, n);
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 1..=chunks {
        // First boundary whose cumulative weight reaches the i-th quantile;
        // the final chunk always closes at n.
        let target = total as u128 * i as u128 / chunks as u128;
        let end = if i == chunks {
            n
        } else {
            // Smallest boundary whose cumulative weight reaches the target,
            // clamped so every chunk (including the remaining ones) keeps at
            // least one item.
            prefix
                .partition_point(|&w| (w as u128) < target)
                .clamp(start + 1, n - (chunks - i))
        };
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Run `f` once per chunk of `0..n` and return `(range, result)` pairs in
/// chunk order.
///
/// With more than one chunk, each invocation runs on its own scoped thread;
/// with zero or one chunk, `f` runs on the calling thread (no spawn, exact
/// sequential order). The output order is the chunk order regardless of
/// which thread finishes first, which is what makes downstream merges
/// deterministic.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn map_chunks<T, F>(n: usize, n_threads: usize, f: F) -> Vec<(Range<usize>, T)>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, n_threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| (r.clone(), f(r))).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| (r.clone(), scope.spawn(move || f(r))))
            .collect();
        handles
            .into_iter()
            .map(|(r, h)| (r, h.join().expect("chunk worker thread panicked")))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_passthrough() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        // Auto resolves to something positive whatever the environment.
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn chunk_ranges_edge_cases() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(0, 0).is_empty());
        assert_eq!(chunk_ranges(1, 4), vec![0..1]);
        assert_eq!(chunk_ranges(5, 1), vec![0..5]);
        // Zero threads degrades to the single sequential chunk.
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
        assert_eq!(chunk_ranges(5, 2), vec![0..3, 3..5]);
        // More threads than items: one singleton chunk per item.
        assert_eq!(chunk_ranges(3, 8), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn weighted_chunks_balance_by_weight() {
        // Item weights 100, 1, 1, 1, 1, 1: object-count chunking would put
        // the heavy item plus half the rest in chunk 0; weighted chunking
        // isolates the heavy item.
        let weights = [100u64, 1, 1, 1, 1, 1];
        let mut prefix = vec![0u64];
        for w in weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        let ranges = chunk_ranges_weighted(2, &prefix);
        assert_eq!(ranges, vec![0..1, 1..6]);
        // Covering + ordered + non-empty for a spread of chunk counts.
        for t in 1..=8 {
            let ranges = chunk_ranges_weighted(t, &prefix);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 6);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn weighted_chunks_edge_cases() {
        // One thread: a single covering chunk.
        assert_eq!(chunk_ranges_weighted(1, &[0, 5, 9]), vec![0..2]);
        // No items: only the leading zero.
        assert!(chunk_ranges_weighted(4, &[0]).is_empty());
        // All-zero weights degrade to plain count chunking.
        assert_eq!(
            chunk_ranges_weighted(2, &[0, 0, 0, 0, 0]),
            chunk_ranges(4, 2)
        );
        // More threads than items: singleton chunks, never empty ones.
        let ranges = chunk_ranges_weighted(8, &[0, 1, 2, 3]);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let out = map_chunks(10, 4, |r| r.start);
        let starts: Vec<usize> = out.iter().map(|(_, s)| *s).collect();
        assert_eq!(starts, vec![0, 3, 6, 8]);
        for (r, s) in &out {
            assert_eq!(r.start, *s);
        }
    }
}
