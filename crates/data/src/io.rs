//! Plain-text interchange format for truth-discovery datasets.
//!
//! The paper's corpora are distributed as flat files of `(object, source,
//! claimed value)` triples plus a gold standard; this module reads and
//! writes an equivalent tab-separated format so that users with access to
//! the original crawls (or their own) can run every algorithm in this
//! workspace on them:
//!
//! * **records**: `object \t source \t value-path` — one claim per line,
//!   where `value-path` is the slash-separated root path of the claimed
//!   value (`USA/NY/Liberty Island`). The hierarchy is the union of all
//!   paths seen in the records, answers and gold files.
//! * **answers** (optional): `object \t worker \t value-path`.
//! * **gold** (optional): `object \t value-path`.
//!
//! Lines starting with `#` and blank lines are skipped. Paths must be
//! consistent (a name cannot appear under two different parents), which is
//! checked and reported with line numbers.

use std::fmt;
use std::path::Path;

use tdh_hierarchy::{HierarchyBuilder, NodeId};

use crate::dataset::Dataset;

/// Errors raised while parsing the TSV interchange format.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A malformed line (wrong number of fields, empty path, …).
    Parse {
        /// Which input unit the error was found in.
        section: &'static str,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse {
                section,
                line,
                message,
            } => write!(f, "{section} line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// In-memory text inputs for [`parse_dataset`]; use [`load_dataset`] for
/// files.
#[derive(Debug, Clone, Default)]
pub struct TextInputs<'a> {
    /// Records TSV content (required).
    pub records: &'a str,
    /// Answers TSV content (optional).
    pub answers: Option<&'a str>,
    /// Gold TSV content (optional).
    pub gold: Option<&'a str>,
}

fn split_line<'a>(
    section: &'static str,
    lineno: usize,
    line: &'a str,
    want: usize,
) -> Result<Vec<&'a str>, IoError> {
    let fields: Vec<&str> = line.split('\t').map(str::trim).collect();
    if fields.len() != want || fields.iter().any(|f| f.is_empty()) {
        return Err(IoError::Parse {
            section,
            line: lineno,
            message: format!(
                "expected {want} non-empty tab-separated fields, got {:?}",
                fields
            ),
        });
    }
    Ok(fields)
}

fn add_path(
    b: &mut HierarchyBuilder,
    section: &'static str,
    lineno: usize,
    path: &str,
) -> Result<NodeId, IoError> {
    let mut cur = NodeId::ROOT;
    for part in path.split('/').map(str::trim) {
        if part.is_empty() {
            return Err(IoError::Parse {
                section,
                line: lineno,
                message: format!("empty component in value path {path:?}"),
            });
        }
        cur = b.add_child(cur, part).map_err(|e| IoError::Parse {
            section,
            line: lineno,
            message: e.to_string(),
        })?;
    }
    if cur == NodeId::ROOT {
        return Err(IoError::Parse {
            section,
            line: lineno,
            message: "value path must have at least one component".into(),
        });
    }
    Ok(cur)
}

fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

/// Parse a dataset from in-memory TSV text.
pub fn parse_dataset(inputs: &TextInputs<'_>) -> Result<Dataset, IoError> {
    // Pass 1: build the hierarchy from every path mentioned anywhere.
    let mut builder = HierarchyBuilder::new();
    struct Row<'a> {
        line: usize,
        a: &'a str,
        b: &'a str,
        value: NodeId,
    }
    let mut record_rows = Vec::new();
    for (lineno, line) in content_lines(inputs.records) {
        let f = split_line("records", lineno, line, 3)?;
        let value = add_path(&mut builder, "records", lineno, f[2])?;
        record_rows.push(Row {
            line: lineno,
            a: f[0],
            b: f[1],
            value,
        });
    }
    let mut answer_rows = Vec::new();
    if let Some(answers) = inputs.answers {
        for (lineno, line) in content_lines(answers) {
            let f = split_line("answers", lineno, line, 3)?;
            let value = add_path(&mut builder, "answers", lineno, f[2])?;
            answer_rows.push(Row {
                line: lineno,
                a: f[0],
                b: f[1],
                value,
            });
        }
    }
    let mut gold_rows = Vec::new();
    if let Some(gold) = inputs.gold {
        for (lineno, line) in content_lines(gold) {
            let f = split_line("gold", lineno, line, 2)?;
            let value = add_path(&mut builder, "gold", lineno, f[1])?;
            gold_rows.push(Row {
                line: lineno,
                a: f[0],
                b: "",
                value,
            });
        }
    }

    // Pass 2: intern entities and materialise the dataset.
    let mut ds = Dataset::new(builder.build());
    for row in &record_rows {
        let o = ds.intern_object(row.a);
        let s = ds.intern_source(row.b);
        ds.add_record(o, s, row.value);
    }
    for row in &answer_rows {
        let o = ds.intern_object(row.a);
        let w = ds.intern_worker(row.b);
        ds.add_answer(o, w, row.value);
    }
    for row in &gold_rows {
        let o = ds.object_by_name(row.a).ok_or(IoError::Parse {
            section: "gold",
            line: row.line,
            message: format!("gold label for unknown object {:?}", row.a),
        })?;
        ds.set_gold(o, row.value);
    }
    Ok(ds)
}

/// Load a dataset from TSV files. `answers` and `gold` are optional.
pub fn load_dataset(
    records: &Path,
    answers: Option<&Path>,
    gold: Option<&Path>,
) -> Result<Dataset, IoError> {
    let records_text = std::fs::read_to_string(records)?;
    let answers_text = answers.map(std::fs::read_to_string).transpose()?;
    let gold_text = gold.map(std::fs::read_to_string).transpose()?;
    parse_dataset(&TextInputs {
        records: &records_text,
        answers: answers_text.as_deref(),
        gold: gold_text.as_deref(),
    })
}

/// The root-path of a node, slash-separated (inverse of the parse format).
fn path_of(ds: &Dataset, v: NodeId) -> String {
    let h = ds.hierarchy();
    let mut parts: Vec<&str> = h
        .ancestors(v)
        .filter(|&a| a != NodeId::ROOT)
        .map(|a| h.name(a))
        .collect();
    parts.reverse();
    parts.push(h.name(v));
    parts.join("/")
}

/// Serialise the records, answers and gold standard back to TSV strings
/// `(records, answers, gold)`. Round-trips with [`parse_dataset`].
pub fn to_tsv(ds: &Dataset) -> (String, String, String) {
    let mut records = String::from("# object\tsource\tvalue-path\n");
    for r in ds.records() {
        records.push_str(&format!(
            "{}\t{}\t{}\n",
            ds.object_name(r.object),
            ds.source_name(r.source),
            path_of(ds, r.value)
        ));
    }
    let mut answers = String::from("# object\tworker\tvalue-path\n");
    for a in ds.answers() {
        answers.push_str(&format!(
            "{}\t{}\t{}\n",
            ds.object_name(a.object),
            ds.worker_name(a.worker),
            path_of(ds, a.value)
        ));
    }
    let mut gold = String::from("# object\tvalue-path\n");
    for o in ds.objects() {
        if let Some(g) = ds.gold(o) {
            gold.push_str(&format!("{}\t{}\n", ds.object_name(o), path_of(ds, g)));
        }
    }
    (records, answers, gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORDS: &str = "\
# comment line
Statue of Liberty\tUNESCO\tUSA/NY
Statue of Liberty\tWikipedia\tUSA/NY/Liberty Island
Statue of Liberty\tArrangy\tUSA/CA/LA

Big Ben\tQuora\tUK/Manchester
Big Ben\ttripadvisor\tUK/London
";

    const ANSWERS: &str = "Big Ben\tEmma Stone\tUK/London\n";
    const GOLD: &str = "Statue of Liberty\tUSA/NY/Liberty Island\nBig Ben\tUK/London\n";

    #[test]
    fn parses_table1() {
        let ds = parse_dataset(&TextInputs {
            records: RECORDS,
            answers: Some(ANSWERS),
            gold: Some(GOLD),
        })
        .unwrap();
        assert_eq!(ds.n_objects(), 2);
        assert_eq!(ds.n_sources(), 5);
        assert_eq!(ds.n_workers(), 1);
        assert_eq!(ds.records().len(), 5);
        assert_eq!(ds.answers().len(), 1);
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        assert_eq!(ds.gold(sol), Some(li));
        assert_eq!(ds.hierarchy().height(), 3);
    }

    #[test]
    fn roundtrip() {
        let ds = parse_dataset(&TextInputs {
            records: RECORDS,
            answers: Some(ANSWERS),
            gold: Some(GOLD),
        })
        .unwrap();
        let (r, a, g) = to_tsv(&ds);
        let ds2 = parse_dataset(&TextInputs {
            records: &r,
            answers: Some(&a),
            gold: Some(&g),
        })
        .unwrap();
        assert_eq!(ds.n_objects(), ds2.n_objects());
        assert_eq!(ds.records().len(), ds2.records().len());
        assert_eq!(ds.answers().len(), ds2.answers().len());
        for (x, y) in ds.records().iter().zip(ds2.records()) {
            assert_eq!(ds.object_name(x.object), ds2.object_name(y.object));
            assert_eq!(ds.hierarchy().name(x.value), ds2.hierarchy().name(y.value));
        }
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = parse_dataset(&TextInputs {
            records: "only-two-fields\tsrc\n",
            ..Default::default()
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("records line 1"), "{msg}");

        let err = parse_dataset(&TextInputs {
            records: "o\ts\tUSA//NY\n",
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("empty component"));
    }

    #[test]
    fn inconsistent_hierarchy_rejected() {
        let err = parse_dataset(&TextInputs {
            records: "o1\ts\tUSA/Springfield\no2\ts\tUK/Springfield\n",
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("Springfield"), "{err}");
    }

    #[test]
    fn gold_for_unknown_object_rejected() {
        let err = parse_dataset(&TextInputs {
            records: "o1\ts\tUSA/NY\n",
            gold: Some("phantom\tUSA/NY\n"),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown object"));
    }

    #[test]
    fn file_loading() {
        let dir = std::env::temp_dir().join("tdh-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let rp = dir.join("records.tsv");
        std::fs::write(&rp, RECORDS).unwrap();
        let gp = dir.join("gold.tsv");
        std::fs::write(&gp, GOLD).unwrap();
        let ds = load_dataset(&rp, None, Some(&gp)).unwrap();
        assert_eq!(ds.n_objects(), 2);
        assert_eq!(ds.n_workers(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
