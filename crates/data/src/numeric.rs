//! Flat numeric claims for the paper's §3.2 extension (Table 6).

use crate::ids::{ObjectId, SourceId};

/// One numeric claim `(object, source, value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericClaim {
    /// The object the claim is about.
    pub object: ObjectId,
    /// The claiming source.
    pub source: SourceId,
    /// The claimed numeric value (e.g. an open price or a change rate).
    pub value: f64,
}

/// A numeric truth-discovery instance: per-object conflicting `f64` claims
/// from multiple sources, plus the gold standard.
///
/// This is the input shape of the stock experiment (Table 6): 1,000 symbols ×
/// 55 sources reporting `change rate`, `open price` and `EPS` at varying
/// significant figures, with occasional extreme outliers.
#[derive(Debug, Clone, Default)]
pub struct NumericDataset {
    n_objects: usize,
    n_sources: usize,
    claims: Vec<NumericClaim>,
    gold: Vec<Option<f64>>,
}

impl NumericDataset {
    /// A dataset over `n_objects` objects and `n_sources` sources.
    pub fn new(n_objects: usize, n_sources: usize) -> Self {
        NumericDataset {
            n_objects,
            n_sources,
            claims: Vec::new(),
            gold: vec![None; n_objects],
        }
    }

    /// Number of objects.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of sources.
    #[inline]
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// Add a claim.
    ///
    /// # Panics
    /// Panics on out-of-range ids or non-finite values.
    pub fn add_claim(&mut self, object: ObjectId, source: SourceId, value: f64) {
        assert!(object.index() < self.n_objects, "object out of range");
        assert!(source.index() < self.n_sources, "source out of range");
        assert!(value.is_finite(), "claims must be finite");
        self.claims.push(NumericClaim {
            object,
            source,
            value,
        });
    }

    /// Set the gold truth for an object.
    pub fn set_gold(&mut self, o: ObjectId, truth: f64) {
        self.gold[o.index()] = Some(truth);
    }

    /// Gold truth for an object, if known.
    #[inline]
    pub fn gold(&self, o: ObjectId) -> Option<f64> {
        self.gold[o.index()]
    }

    /// All claims.
    #[inline]
    pub fn claims(&self) -> &[NumericClaim] {
        &self.claims
    }

    /// Claims grouped by object: `result[o]` lists `(source, value)`.
    pub fn claims_by_object(&self) -> Vec<Vec<(SourceId, f64)>> {
        let mut out = vec![Vec::new(); self.n_objects];
        for c in &self.claims {
            out[c.object.index()].push((c.source, c.value));
        }
        out
    }

    /// Iterate over object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.n_objects).map(ObjectId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let mut ds = NumericDataset::new(2, 3);
        ds.add_claim(ObjectId(0), SourceId(0), 605.196);
        ds.add_claim(ObjectId(0), SourceId(1), 605.2);
        ds.add_claim(ObjectId(1), SourceId(2), 42.0);
        ds.set_gold(ObjectId(0), 605.196);
        assert_eq!(ds.claims().len(), 3);
        assert_eq!(ds.gold(ObjectId(0)), Some(605.196));
        assert_eq!(ds.gold(ObjectId(1)), None);
        let by_obj = ds.claims_by_object();
        assert_eq!(by_obj[0].len(), 2);
        assert_eq!(by_obj[1], vec![(SourceId(2), 42.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut ds = NumericDataset::new(1, 1);
        ds.add_claim(ObjectId(0), SourceId(0), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_object() {
        let mut ds = NumericDataset::new(1, 1);
        ds.add_claim(ObjectId(5), SourceId(0), 1.0);
    }
}
