//! The per-object observation index consumed by every inference algorithm.

use std::collections::HashSet;

use tdh_hierarchy::{Hierarchy, NodeId};

use crate::dataset::Dataset;
use crate::delta::{DeltaSet, TouchedObject};
use crate::ids::{ObjectId, SourceId, WorkerId};
use crate::par;
use crate::{Answer, Record};

/// Everything an algorithm needs to know about one object `o`.
///
/// Candidate values are the distinct values claimed by sources (`V_o`);
/// workers answer by selecting among them, so answers never extend the
/// candidate set. Candidates are addressed by their dense index `0..|V_o|`
/// within this view.
#[derive(Debug, Clone)]
pub struct ObjectView {
    /// `V_o`: the distinct claimed values, sorted by node id.
    pub candidates: Vec<NodeId>,
    /// `S_o` with the candidate index each source claimed.
    pub sources: Vec<(SourceId, u32)>,
    /// `W_o` with the candidate index each worker answered.
    pub workers: Vec<(WorkerId, u32)>,
    /// `G_o(v)` per candidate: indices of candidates that are *proper*
    /// ancestors of `v` in the hierarchy (the root is never a candidate).
    pub ancestors: Vec<Vec<u32>>,
    /// `D_o(v)` per candidate: indices of candidates that are proper
    /// descendants of `v`.
    pub descendants: Vec<Vec<u32>>,
    /// `o ∈ O_H`: some pair of candidates is in ancestor-descendant relation.
    pub in_oh: bool,
    /// Per candidate: number of source records claiming exactly that value.
    /// These counts drive the popularity terms `Pop2`/`Pop3`.
    pub source_count: Vec<u32>,
    /// Per candidate: number of worker answers selecting that value.
    pub worker_count: Vec<u32>,
}

impl ObjectView {
    /// Number of candidate values `|V_o|`.
    #[inline]
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Dense index of candidate `v`, if claimed for this object.
    pub fn cand_index(&self, v: NodeId) -> Option<u32> {
        self.candidates.binary_search(&v).ok().map(|i| i as u32)
    }

    /// `Pop2(v' | v* = v)`: among records claiming a *generalization* of the
    /// truth `v`, the fraction claiming exactly `v'` (paper §3.1, worker
    /// case 2). Falls back to uniform over `G_o(v)` when no source claims any
    /// generalization (the paper's ratio is then 0/0).
    pub fn pop2(&self, truth: u32, claim: u32) -> f64 {
        debug_assert!(
            self.ancestors[truth as usize].contains(&claim),
            "pop2 requires claim ∈ Go(truth)"
        );
        let denom: u32 = self.ancestors[truth as usize]
            .iter()
            .map(|&a| self.source_count[a as usize])
            .sum();
        if denom == 0 {
            1.0 / self.ancestors[truth as usize].len() as f64
        } else {
            f64::from(self.source_count[claim as usize]) / f64::from(denom)
        }
    }

    /// `Pop3(v' | v* = v)`: among records claiming a *wrong* value for truth
    /// `v` (neither `v` nor a generalization of it), the fraction claiming
    /// exactly `v'`. Falls back to uniform over the wrong candidates when no
    /// source claims any of them.
    pub fn pop3(&self, truth: u32, claim: u32) -> f64 {
        debug_assert!(claim != truth && !self.ancestors[truth as usize].contains(&claim));
        let n_sources: u32 = self.source_count.iter().sum();
        let correctish: u32 = self.source_count[truth as usize]
            + self.ancestors[truth as usize]
                .iter()
                .map(|&a| self.source_count[a as usize])
                .sum::<u32>();
        let denom = n_sources - correctish;
        if denom == 0 {
            let n_wrong = self.candidates.len() - self.ancestors[truth as usize].len() - 1;
            if n_wrong == 0 {
                0.0
            } else {
                1.0 / n_wrong as f64
            }
        } else {
            f64::from(self.source_count[claim as usize]) / f64::from(denom)
        }
    }

    /// Number of wrong candidates for truth index `t`:
    /// `|V_o| - |G_o(v_t)| - 1` (paper Eq. 1, third case's denominator).
    #[inline]
    pub fn n_wrong(&self, t: u32) -> usize {
        self.candidates.len() - self.ancestors[t as usize].len() - 1
    }
}

/// The observation index: one [`ObjectView`] per object plus the inverse
/// incidence lists `O_s` / `O_w` and the worker-assignment bookkeeping.
///
/// Built once from a [`Dataset`]'s records and answers; kept current during
/// crowdsourcing via [`ObservationIndex::push_answer`].
#[derive(Debug, Clone)]
pub struct ObservationIndex {
    views: Vec<ObjectView>,
    /// `O_s`: objects claimed by each source, with the claimed candidate idx.
    by_source: Vec<Vec<(ObjectId, u32)>>,
    /// `O_w`: objects answered by each worker, with the answered candidate idx.
    by_worker: Vec<Vec<(ObjectId, u32)>>,
    /// Pairs `(worker, object)` already asked, to avoid re-assignment.
    answered: HashSet<(WorkerId, ObjectId)>,
}

impl ObservationIndex {
    /// Build the index from a dataset's records and already-collected answers.
    ///
    /// This is deliberately an independent implementation rather than a
    /// delegation to [`ObservationIndex::build_threaded`]`(ds, 1)`: it is
    /// the sequential *oracle* the `index_parallel` property suite compares
    /// the chunked build against, field for field, so a semantic change to
    /// either copy that misses the other fails tests instead of shipping.
    ///
    /// # Panics
    /// Panics if an answer's value is not among its object's candidates
    /// (workers select from `V_o` by problem definition, §2.1).
    pub fn build(ds: &Dataset) -> Self {
        let h = ds.hierarchy();
        let n_obj = ds.n_objects();

        // Pass 1: collect candidate sets.
        let mut cand_sets: Vec<Vec<NodeId>> = vec![Vec::new(); n_obj];
        for r in ds.records() {
            cand_sets[r.object.index()].push(r.value);
        }
        let mut views: Vec<ObjectView> = cand_sets
            .into_iter()
            .map(|mut cands| {
                cands.sort_unstable();
                cands.dedup();
                let k = cands.len();
                let mut ancestors = vec![Vec::new(); k];
                let mut descendants = vec![Vec::new(); k];
                for i in 0..k {
                    for j in 0..k {
                        if i != j && h.is_strict_ancestor(cands[j], cands[i]) {
                            ancestors[i].push(j as u32);
                            descendants[j].push(i as u32);
                        }
                    }
                }
                let in_oh = ancestors.iter().any(|a| !a.is_empty());
                ObjectView {
                    source_count: vec![0; k],
                    worker_count: vec![0; k],
                    sources: Vec::new(),
                    workers: Vec::new(),
                    ancestors,
                    descendants,
                    in_oh,
                    candidates: cands,
                }
            })
            .collect();

        // Pass 2: incidence lists and counts.
        let mut by_source: Vec<Vec<(ObjectId, u32)>> = vec![Vec::new(); ds.n_sources()];
        for r in ds.records() {
            let view = &mut views[r.object.index()];
            let idx = view
                .cand_index(r.value)
                .expect("record value is a candidate by construction");
            view.sources.push((r.source, idx));
            view.source_count[idx as usize] += 1;
            by_source[r.source.index()].push((r.object, idx));
        }

        let mut index = ObservationIndex {
            views,
            by_source,
            by_worker: vec![Vec::new(); ds.n_workers()],
            answered: HashSet::new(),
        };
        for a in ds.answers() {
            index.push_answer(*a);
        }
        index
    }

    /// [`ObservationIndex::build`] with the per-object view construction and
    /// the `O_s`/`O_w` incidence passes sharded over `n_threads` contiguous
    /// chunks (see [`crate::par`]).
    ///
    /// The expensive part of a build is the per-object work — candidate
    /// dedup, the `O(|V_o|^2)` ancestor/descendant scans behind `G_o`/`D_o`,
    /// and the popularity counts — which is independent across objects, just
    /// as the incidence lists are independent across sources and workers.
    /// Each chunk only writes entities it owns, so the output is
    /// **field-for-field identical** to the sequential build for every
    /// thread count (asserted by the `index_parallel` property suite);
    /// `n_threads <= 1` runs the whole pass on the calling thread.
    ///
    /// # Panics
    /// Panics if an answer's value is not among its object's candidates,
    /// exactly like the sequential build.
    pub fn build_threaded(ds: &Dataset, n_threads: usize) -> Self {
        let records = ds.records();
        let answers = ds.answers();
        let n_obj = ds.n_objects();

        // Cheap sequential grouping passes: record/answer ids per entity, in
        // scan order. These give every parallel chunk an O(1) handle on
        // exactly the evidence it owns, and scan order is what makes the
        // chunked incidence lists identical to the sequential ones.
        let mut recs_by_obj: Vec<Vec<u32>> = vec![Vec::new(); n_obj];
        for (ri, r) in records.iter().enumerate() {
            recs_by_obj[r.object.index()].push(ri as u32);
        }
        let mut ans_by_obj: Vec<Vec<u32>> = vec![Vec::new(); n_obj];
        for (ai, a) in answers.iter().enumerate() {
            ans_by_obj[a.object.index()].push(ai as u32);
        }

        // Parallel pass 1: one fully-populated view per object.
        let views: Vec<ObjectView> = par::map_chunks(n_obj, n_threads, |range| {
            range
                .map(|oi| {
                    build_object_view(
                        ds.hierarchy(),
                        records,
                        answers,
                        &recs_by_obj[oi],
                        &ans_by_obj[oi],
                    )
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flat_map(|(_, chunk)| chunk)
        .collect();

        // Parallel pass 2: the inverse incidence lists `O_s` / `O_w`.
        let n_src = ds.n_sources();
        let mut recs_by_src: Vec<Vec<u32>> = vec![Vec::new(); n_src];
        for (ri, r) in records.iter().enumerate() {
            recs_by_src[r.source.index()].push(ri as u32);
        }
        let by_source: Vec<Vec<(ObjectId, u32)>> = par::map_chunks(n_src, n_threads, |range| {
            range
                .map(|si| {
                    recs_by_src[si]
                        .iter()
                        .map(|&ri| {
                            let r = &records[ri as usize];
                            let idx = views[r.object.index()]
                                .cand_index(r.value)
                                .expect("record value is a candidate by construction");
                            (r.object, idx)
                        })
                        .collect()
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flat_map(|(_, chunk)| chunk)
        .collect();

        // The sequential build grows `O_w` on demand, so its final length is
        // the larger of the dataset's worker universe and the answers' ids.
        let n_wrk = ds.n_workers().max(
            answers
                .iter()
                .map(|a| a.worker.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut ans_by_wrk: Vec<Vec<u32>> = vec![Vec::new(); n_wrk];
        for (ai, a) in answers.iter().enumerate() {
            ans_by_wrk[a.worker.index()].push(ai as u32);
        }
        let by_worker: Vec<Vec<(ObjectId, u32)>> = par::map_chunks(n_wrk, n_threads, |range| {
            range
                .map(|wi| {
                    ans_by_wrk[wi]
                        .iter()
                        .map(|&ai| {
                            let a = &answers[ai as usize];
                            let idx = views[a.object.index()]
                                .cand_index(a.value)
                                .expect("answers select among the object's candidate values");
                            (a.object, idx)
                        })
                        .collect()
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flat_map(|(_, chunk)| chunk)
        .collect();

        let answered = answers.iter().map(|a| (a.worker, a.object)).collect();
        ObservationIndex {
            views,
            by_source,
            by_worker,
            answered,
        }
    }

    /// Append every record and answer `ds` gained since this index was last
    /// in sync with it: `ds.records()[n_prev_records..]` and
    /// `ds.answers()[n_prev_answers..]`, in dataset order.
    ///
    /// This is the online-ingestion path used by `tdh-serve`: instead of a
    /// full [`ObservationIndex::build`] over the grown dataset, the index is
    /// updated **in place** — new objects/sources enter with empty views and
    /// incidence lists, and a record claiming a value the object has never
    /// seen inserts the new candidate into the sorted candidate set,
    /// remapping every stored candidate index (`S_o`/`W_o` pairs, the
    /// `O_s`/`O_w` incidence lists and the popularity counts) and recomputing
    /// the object's ancestor/descendant sets and `O_H` membership. The result
    /// is **field-for-field identical** to rebuilding from scratch (pinned
    /// by the `index_append` property suite).
    ///
    /// Candidate insertion costs `O(|V_o|^2)` for the ancestor rescan plus
    /// `O(Σ_{s ∈ S_o} |O_s|)` for the incidence remap — proportional to the
    /// evidence touching the one affected object, never to the corpus.
    ///
    /// The append is **batch-atomic**: the whole batch is validated before
    /// the index is touched, so a panicking call leaves the index exactly
    /// as it was — the WAL-replay path in `tdh-serve` relies on a batch
    /// applying fully or not at all.
    ///
    /// Returns the batch's [`DeltaSet`]: the touched objects (with their
    /// pre-batch claim-prefix lengths) and the sources/workers they
    /// implicate, one-hop closed — the footprint an incremental refit
    /// (`TdhModel::fit_delta`) re-estimates while everything else stays
    /// frozen. Callers that refit unconditionally may ignore it.
    ///
    /// # Panics
    /// Panics if an appended answer's value is not among its object's
    /// candidates after the batch's records are applied (workers select
    /// from `V_o` by problem definition, §2.1), or if `n_prev_records` /
    /// `n_prev_answers` exceed the dataset's current counts. Either way
    /// the index is left unmodified.
    pub fn append_from(
        &mut self,
        ds: &Dataset,
        n_prev_records: usize,
        n_prev_answers: usize,
    ) -> DeltaSet {
        // Validate the whole batch up front, before any mutation.
        assert!(
            n_prev_records <= ds.records().len() && n_prev_answers <= ds.answers().len(),
            "append_from cursor past the dataset's counts \
             ({n_prev_records}/{} records, {n_prev_answers}/{} answers)",
            ds.records().len(),
            ds.answers().len(),
        );
        let new_answers = &ds.answers()[n_prev_answers..];
        if !new_answers.is_empty() {
            // An answer may select a candidate the index already knows or
            // one introduced by this batch's records.
            let new_values: std::collections::HashSet<(ObjectId, NodeId)> = ds.records()
                [n_prev_records..]
                .iter()
                .map(|r| (r.object, r.value))
                .collect();
            for a in new_answers {
                let known = self
                    .views
                    .get(a.object.index())
                    .is_some_and(|v| v.cand_index(a.value).is_some());
                assert!(
                    known || new_values.contains(&(a.object, a.value)),
                    "answers select among the object's candidate values"
                );
            }
        }

        // New entities enter empty; ids are dense and append-only, so
        // resizing to the dataset's universe is all that is needed.
        if self.views.len() < ds.n_objects() {
            self.views.resize_with(ds.n_objects(), || ObjectView {
                candidates: Vec::new(),
                sources: Vec::new(),
                workers: Vec::new(),
                ancestors: Vec::new(),
                descendants: Vec::new(),
                in_oh: false,
                source_count: Vec::new(),
                worker_count: Vec::new(),
            });
        }
        if self.by_source.len() < ds.n_sources() {
            self.by_source.resize(ds.n_sources(), Vec::new());
        }
        if self.by_worker.len() < ds.n_workers() {
            self.by_worker.resize(ds.n_workers(), Vec::new());
        }

        // Snapshot each touched object's pre-batch claim-prefix lengths
        // before any mutation; appends only ever push at the end of a
        // view's `S_o`/`W_o` rows, so these prefixes survive the batch.
        let mut touched: Vec<ObjectId> = ds.records()[n_prev_records..]
            .iter()
            .map(|r| r.object)
            .chain(ds.answers()[n_prev_answers..].iter().map(|a| a.object))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let objects: Vec<TouchedObject> = touched
            .iter()
            .map(|&o| {
                let view = &self.views[o.index()];
                TouchedObject {
                    object: o,
                    old_records: view.sources.len() as u32,
                    old_answers: view.workers.len() as u32,
                }
            })
            .collect();

        for r in &ds.records()[n_prev_records..] {
            self.push_record(ds.hierarchy(), *r);
        }
        for a in &ds.answers()[n_prev_answers..] {
            self.push_answer(*a);
        }

        // One-hop closure: every source/worker with any claim on a touched
        // object (old or new — a delta refit moves *all* their statistics).
        let mut sources: Vec<SourceId> = Vec::new();
        let mut workers: Vec<WorkerId> = Vec::new();
        for t in &objects {
            let view = &self.views[t.object.index()];
            sources.extend(view.sources.iter().map(|&(s, _)| s));
            workers.extend(view.workers.iter().map(|&(w, _)| w));
        }
        sources.sort_unstable();
        sources.dedup();
        workers.sort_unstable();
        workers.dedup();
        DeltaSet::from_parts(objects, sources, workers)
    }

    /// Append one record, extending the object's candidate set when the
    /// claimed value is new.
    fn push_record(&mut self, h: &Hierarchy, r: Record) {
        let idx = match self.views[r.object.index()].cand_index(r.value) {
            Some(i) => i,
            None => self.insert_candidate(h, r.object, r.value),
        };
        let view = &mut self.views[r.object.index()];
        view.sources.push((r.source, idx));
        view.source_count[idx as usize] += 1;
        self.by_source[r.source.index()].push((r.object, idx));
    }

    /// Insert a never-claimed value into `o`'s sorted candidate set and
    /// remap every candidate index that referred to the old ordering.
    /// Returns the new value's candidate index.
    fn insert_candidate(&mut self, h: &Hierarchy, o: ObjectId, v: NodeId) -> u32 {
        let view = &mut self.views[o.index()];
        let pos = view
            .candidates
            .binary_search(&v)
            .expect_err("caller checked the value is new");
        let pos32 = pos as u32;
        view.candidates.insert(pos, v);
        view.source_count.insert(pos, 0);
        view.worker_count.insert(pos, 0);
        for (_, i) in &mut view.sources {
            if *i >= pos32 {
                *i += 1;
            }
        }
        for (_, i) in &mut view.workers {
            if *i >= pos32 {
                *i += 1;
            }
        }
        // The ancestor/descendant sets are functions of the candidate set;
        // recompute them exactly as the full build does.
        let k = view.candidates.len();
        view.ancestors = vec![Vec::new(); k];
        view.descendants = vec![Vec::new(); k];
        for i in 0..k {
            for j in 0..k {
                if i != j && h.is_strict_ancestor(view.candidates[j], view.candidates[i]) {
                    view.ancestors[i].push(j as u32);
                    view.descendants[j].push(i as u32);
                }
            }
        }
        view.in_oh = view.ancestors.iter().any(|a| !a.is_empty());
        // Remap the inverse incidence entries pointing at this object. Only
        // sources/workers that touched `o` can hold stale indices.
        let mut sources: Vec<SourceId> = view.sources.iter().map(|&(s, _)| s).collect();
        sources.sort_unstable_by_key(|s| s.index());
        sources.dedup();
        let mut workers: Vec<WorkerId> = view.workers.iter().map(|&(w, _)| w).collect();
        workers.sort_unstable_by_key(|w| w.index());
        workers.dedup();
        for s in sources {
            for (obj, i) in &mut self.by_source[s.index()] {
                if *obj == o && *i >= pos32 {
                    *i += 1;
                }
            }
        }
        for w in workers {
            for (obj, i) in &mut self.by_worker[w.index()] {
                if *obj == o && *i >= pos32 {
                    *i += 1;
                }
            }
        }
        pos32
    }

    /// Record a fresh crowdsourcing answer, updating `W_o`, `O_w`, the
    /// per-candidate worker counts and the assignment bookkeeping.
    ///
    /// # Panics
    /// Panics if the worker id is out of range or the value is not among the
    /// object's candidates.
    pub fn push_answer(&mut self, a: Answer) {
        let view = &mut self.views[a.object.index()];
        let idx = view
            .cand_index(a.value)
            .expect("answers select among the object's candidate values");
        view.workers.push((a.worker, idx));
        view.worker_count[idx as usize] += 1;
        if self.by_worker.len() <= a.worker.index() {
            self.by_worker.resize(a.worker.index() + 1, Vec::new());
        }
        self.by_worker[a.worker.index()].push((a.object, idx));
        self.answered.insert((a.worker, a.object));
    }

    /// Number of objects.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.views.len()
    }

    /// The view of object `o`.
    #[inline]
    pub fn view(&self, o: ObjectId) -> &ObjectView {
        &self.views[o.index()]
    }

    /// All views, indexed by object id.
    #[inline]
    pub fn views(&self) -> &[ObjectView] {
        &self.views
    }

    /// `O_s`: objects source `s` claimed about, with candidate indices.
    #[inline]
    pub fn objects_of_source(&self, s: SourceId) -> &[(ObjectId, u32)] {
        &self.by_source[s.index()]
    }

    /// `O_w`: objects worker `w` answered about, with candidate indices.
    #[inline]
    pub fn objects_of_worker(&self, w: WorkerId) -> &[(ObjectId, u32)] {
        self.by_worker
            .get(w.index())
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Number of sources with at least one record (length of `O_s` table).
    #[inline]
    pub fn n_sources(&self) -> usize {
        self.by_source.len()
    }

    /// Number of workers tracked (grows as unseen workers answer).
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.by_worker.len()
    }

    /// `true` iff worker `w` already answered about object `o`.
    #[inline]
    pub fn has_answered(&self, w: WorkerId, o: ObjectId) -> bool {
        self.answered.contains(&(w, o))
    }
}

/// Build one object's complete view from its record/answer ids (in scan
/// order, which keeps `sources`/`workers` ordered exactly as the sequential
/// build leaves them).
fn build_object_view(
    h: &Hierarchy,
    records: &[Record],
    answers: &[Answer],
    rec_ids: &[u32],
    ans_ids: &[u32],
) -> ObjectView {
    let mut cands: Vec<NodeId> = rec_ids
        .iter()
        .map(|&ri| records[ri as usize].value)
        .collect();
    cands.sort_unstable();
    cands.dedup();
    let k = cands.len();
    let mut ancestors = vec![Vec::new(); k];
    let mut descendants = vec![Vec::new(); k];
    for i in 0..k {
        for j in 0..k {
            if i != j && h.is_strict_ancestor(cands[j], cands[i]) {
                ancestors[i].push(j as u32);
                descendants[j].push(i as u32);
            }
        }
    }
    let in_oh = ancestors.iter().any(|a| !a.is_empty());
    let mut view = ObjectView {
        source_count: vec![0; k],
        worker_count: vec![0; k],
        sources: Vec::with_capacity(rec_ids.len()),
        workers: Vec::with_capacity(ans_ids.len()),
        ancestors,
        descendants,
        in_oh,
        candidates: cands,
    };
    for &ri in rec_ids {
        let r = &records[ri as usize];
        let idx = view
            .cand_index(r.value)
            .expect("record value is a candidate by construction");
        view.sources.push((r.source, idx));
        view.source_count[idx as usize] += 1;
    }
    for &ai in ans_ids {
        let a = &answers[ai as usize];
        let idx = view
            .cand_index(a.value)
            .expect("answers select among the object's candidate values");
        view.workers.push((a.worker, idx));
        view.worker_count[idx as usize] += 1;
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// The paper's Table 1: locations of tourist attractions.
    fn table1() -> (Dataset, ObservationIndex) {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        b.add_path(&["UK", "London"]);
        b.add_path(&["UK", "Manchester"]);
        let mut ds = Dataset::new(b.build());

        let sol = ds.intern_object("Statue of Liberty");
        let bb = ds.intern_object("Big Ben");
        let unesco = ds.intern_source("UNESCO");
        let wiki = ds.intern_source("Wikipedia");
        let arrangy = ds.intern_source("Arrangy");
        let quora = ds.intern_source("Quora");
        let trip = ds.intern_source("tripadvisor");

        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        let man = ds.hierarchy().node_by_name("Manchester").unwrap();
        let lon = ds.hierarchy().node_by_name("London").unwrap();

        ds.add_record(sol, unesco, ny);
        ds.add_record(sol, wiki, li);
        ds.add_record(sol, arrangy, la);
        ds.add_record(bb, quora, man);
        ds.add_record(bb, trip, lon);

        let idx = ObservationIndex::build(&ds);
        (ds, idx)
    }

    #[test]
    fn candidate_sets() {
        let (ds, idx) = table1();
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let view = idx.view(sol);
        assert_eq!(view.n_candidates(), 3); // NY, Liberty Island, LA
        assert!(view.in_oh);
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let ny_i = view.cand_index(ny).unwrap() as usize;
        let li_i = view.cand_index(li).unwrap() as usize;
        // NY is an ancestor candidate of Liberty Island.
        assert_eq!(view.ancestors[li_i], vec![ny_i as u32]);
        assert_eq!(view.descendants[ny_i], vec![li_i as u32]);
        assert!(view.ancestors[ny_i].is_empty());
    }

    #[test]
    fn big_ben_not_in_oh() {
        let (ds, idx) = table1();
        let bb = ds.object_by_name("Big Ben").unwrap();
        let view = idx.view(bb);
        assert_eq!(view.n_candidates(), 2);
        assert!(!view.in_oh, "London and Manchester are unrelated");
    }

    #[test]
    fn incidence_lists() {
        let (ds, idx) = table1();
        let wiki = 1; // interned second
        assert_eq!(idx.objects_of_source(SourceId(wiki)).len(), 1);
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let view = idx.view(sol);
        assert_eq!(view.sources.len(), 3);
        assert_eq!(view.source_count.iter().sum::<u32>(), 3);
    }

    #[test]
    fn popularity_terms() {
        let (ds, idx) = table1();
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let view = idx.view(sol);
        let li_i = view
            .cand_index(ds.hierarchy().node_by_name("Liberty Island").unwrap())
            .unwrap();
        let ny_i = view
            .cand_index(ds.hierarchy().node_by_name("NY").unwrap())
            .unwrap();
        let la_i = view
            .cand_index(ds.hierarchy().node_by_name("LA").unwrap())
            .unwrap();
        // Truth = Liberty Island: the only generalization claimed is NY
        // (1 record), so Pop2(NY | LI) = 1.
        assert_eq!(view.pop2(li_i, ny_i), 1.0);
        // Wrong values for truth LI: LA only (1 of 1 wrong records).
        assert_eq!(view.pop3(li_i, la_i), 1.0);
        // Truth = NY: wrong candidates are LI? No — LI is a *descendant*,
        // which counts as wrong under the three-way model. Wrong records for
        // truth NY: LI (1) + LA (1) = 2.
        assert_eq!(view.pop3(ny_i, li_i), 0.5);
        assert_eq!(view.pop3(ny_i, la_i), 0.5);
        assert_eq!(view.n_wrong(li_i), 1);
        assert_eq!(view.n_wrong(ny_i), 2);
    }

    #[test]
    fn answers_update_incrementally() {
        let (mut ds, mut idx) = table1();
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let w = ds.intern_worker("Emma Stone");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        assert!(!idx.has_answered(w, sol));
        ds.add_answer(sol, w, ny);
        idx.push_answer(*ds.answers().last().unwrap());
        assert!(idx.has_answered(w, sol));
        let view = idx.view(sol);
        assert_eq!(view.workers.len(), 1);
        let ny_i = view.cand_index(ny).unwrap() as usize;
        assert_eq!(view.worker_count[ny_i], 1);
        assert_eq!(idx.objects_of_worker(w).len(), 1);
    }

    #[test]
    fn rebuild_equals_incremental() {
        let (mut ds, mut idx) = table1();
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let w = ds.intern_worker("w0");
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.add_answer(sol, w, li);
        idx.push_answer(*ds.answers().last().unwrap());

        let rebuilt = ObservationIndex::build(&ds);
        let (a, b) = (idx.view(sol), rebuilt.view(sol));
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.worker_count, b.worker_count);
        assert_eq!(idx.objects_of_worker(w), rebuilt.objects_of_worker(w));
    }

    #[test]
    fn append_from_reports_the_delta() {
        let (mut ds, mut idx) = table1();
        let (nr, na) = (ds.records().len(), ds.answers().len());
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let w = ds.intern_worker("w0");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        ds.add_answer(sol, w, ny);
        let d = idx.append_from(&ds, nr, na);
        // Only the Statue of Liberty was touched, with its pre-batch
        // three-record / zero-answer prefix recorded.
        assert_eq!(d.objects().len(), 1);
        let t = d.touched(sol).expect("sol touched");
        assert_eq!(t.old_records, 3);
        assert_eq!(t.old_answers, 0);
        // One-hop closure: every source that ever claimed about sol is
        // implicated (UNESCO, Wikipedia, Arrangy), plus the new worker.
        assert_eq!(
            d.sources(),
            &[SourceId(0), SourceId(1), SourceId(2)],
            "sol's three sources"
        );
        assert_eq!(d.workers(), &[w]);
        assert!((d.touched_frac(idx.n_objects()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn untouched_append_reports_an_empty_delta() {
        let (ds, mut idx) = table1();
        let d = idx.append_from(&ds, ds.records().len(), ds.answers().len());
        assert!(d.is_empty());
        assert_eq!(d.touched_frac(idx.n_objects()), 0.0);
    }

    #[test]
    #[should_panic(expected = "candidate")]
    fn non_candidate_answer_rejected() {
        let (mut ds, mut idx) = table1();
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let w = ds.intern_worker("w0");
        // London was never claimed for the Statue of Liberty.
        let lon = ds.hierarchy().node_by_name("London").unwrap();
        ds.add_answer(sol, w, lon);
        idx.push_answer(*ds.answers().last().unwrap());
    }
}
