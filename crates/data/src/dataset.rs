//! Owning container for a truth-discovery problem instance.

use std::collections::HashMap;

use tdh_hierarchy::{Hierarchy, NodeId};

use crate::ids::{ObjectId, SourceId, WorkerId};
use crate::{Answer, Record};

/// A complete truth-discovery problem: hierarchy, entity universes, records,
/// answers, and (optionally) the gold standard used for evaluation.
///
/// Entities are interned by name; all algorithm-facing structures use the
/// dense ids. Mutation is append-only: records/answers are added, never
/// removed, mirroring how knowledge-fusion pipelines accumulate evidence.
#[derive(Debug, Clone)]
pub struct Dataset {
    hierarchy: Hierarchy,
    object_names: Vec<String>,
    object_by_name: HashMap<String, ObjectId>,
    source_names: Vec<String>,
    source_by_name: HashMap<String, SourceId>,
    worker_names: Vec<String>,
    worker_by_name: HashMap<String, WorkerId>,
    records: Vec<Record>,
    answers: Vec<Answer>,
    /// Gold-standard truth per object (`None` where unknown).
    gold: Vec<Option<NodeId>>,
}

impl Dataset {
    /// A dataset over the given hierarchy, initially without entities.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Dataset {
            hierarchy,
            object_names: Vec::new(),
            object_by_name: HashMap::new(),
            source_names: Vec::new(),
            source_by_name: HashMap::new(),
            worker_names: Vec::new(),
            worker_by_name: HashMap::new(),
            records: Vec::new(),
            answers: Vec::new(),
            gold: Vec::new(),
        }
    }

    /// The value hierarchy `H`.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Intern (or look up) an object by name.
    pub fn intern_object(&mut self, name: &str) -> ObjectId {
        if let Some(&id) = self.object_by_name.get(name) {
            return id;
        }
        let id = ObjectId::from_index(self.object_names.len());
        self.object_names.push(name.to_string());
        self.object_by_name.insert(name.to_string(), id);
        self.gold.push(None);
        id
    }

    /// Intern (or look up) a source by name.
    pub fn intern_source(&mut self, name: &str) -> SourceId {
        if let Some(&id) = self.source_by_name.get(name) {
            return id;
        }
        let id = SourceId::from_index(self.source_names.len());
        self.source_names.push(name.to_string());
        self.source_by_name.insert(name.to_string(), id);
        id
    }

    /// Intern (or look up) a worker by name.
    pub fn intern_worker(&mut self, name: &str) -> WorkerId {
        if let Some(&id) = self.worker_by_name.get(name) {
            return id;
        }
        let id = WorkerId::from_index(self.worker_names.len());
        self.worker_names.push(name.to_string());
        self.worker_by_name.insert(name.to_string(), id);
        id
    }

    /// Number of objects `|O|`.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.object_names.len()
    }

    /// Number of sources `|S|`.
    #[inline]
    pub fn n_sources(&self) -> usize {
        self.source_names.len()
    }

    /// Number of workers `|W|`.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.worker_names.len()
    }

    /// Display name of an object.
    pub fn object_name(&self, o: ObjectId) -> &str {
        &self.object_names[o.index()]
    }

    /// Display name of a source.
    pub fn source_name(&self, s: SourceId) -> &str {
        &self.source_names[s.index()]
    }

    /// Display name of a worker.
    pub fn worker_name(&self, w: WorkerId) -> &str {
        &self.worker_names[w.index()]
    }

    /// Look an object up by name.
    pub fn object_by_name(&self, name: &str) -> Option<ObjectId> {
        self.object_by_name.get(name).copied()
    }

    /// Look a source up by name.
    pub fn source_by_name(&self, name: &str) -> Option<SourceId> {
        self.source_by_name.get(name).copied()
    }

    /// Look a worker up by name.
    pub fn worker_by_name(&self, name: &str) -> Option<WorkerId> {
        self.worker_by_name.get(name).copied()
    }

    /// Append a record `(o, s, v)`.
    ///
    /// # Panics
    /// Panics if `v` is the hierarchy root: the paper excludes root claims as
    /// information-free ("Earth as a birthplace").
    pub fn add_record(&mut self, object: ObjectId, source: SourceId, value: NodeId) {
        assert!(value != NodeId::ROOT, "root claims carry no information");
        self.records.push(Record {
            object,
            source,
            value,
        });
    }

    /// Append a crowdsourcing answer `(o, w, v)`.
    ///
    /// # Panics
    /// Panics if `v` is the hierarchy root (workers select among candidate
    /// values, which never include the root).
    pub fn add_answer(&mut self, object: ObjectId, worker: WorkerId, value: NodeId) {
        assert!(value != NodeId::ROOT, "root answers carry no information");
        self.answers.push(Answer {
            object,
            worker,
            value,
        });
    }

    /// Set the gold-standard truth of `o`.
    pub fn set_gold(&mut self, o: ObjectId, truth: NodeId) {
        self.gold[o.index()] = Some(truth);
    }

    /// Gold-standard truth of `o`, if known.
    #[inline]
    pub fn gold(&self, o: ObjectId) -> Option<NodeId> {
        self.gold[o.index()]
    }

    /// All records `R`.
    #[inline]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// All answers `A` collected so far.
    #[inline]
    pub fn answers(&self) -> &[Answer] {
        &self.answers
    }

    /// Iterate over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.object_names.len()).map(ObjectId::from_index)
    }

    /// Iterate over all source ids.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> {
        (0..self.source_names.len()).map(SourceId::from_index)
    }

    /// Iterate over all worker ids.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> {
        (0..self.worker_names.len()).map(WorkerId::from_index)
    }

    /// Summary statistics (record counts, per-source claim counts, …).
    pub fn stats(&self) -> DatasetStats {
        let mut claims_per_source = vec![0usize; self.n_sources()];
        for r in &self.records {
            claims_per_source[r.source.index()] += 1;
        }
        DatasetStats {
            n_objects: self.n_objects(),
            n_sources: self.n_sources(),
            n_workers: self.n_workers(),
            n_records: self.records.len(),
            n_answers: self.answers.len(),
            hierarchy_nodes: self.hierarchy.len(),
            hierarchy_height: self.hierarchy.height(),
            claims_per_source,
        }
    }

    /// Duplicate every object (and its records and gold label) `factor`
    /// times. This is the scale-up used by the paper's Figure 13 scalability
    /// experiment ("we increase the size of both datasets by duplicating the
    /// data by upto 15 times"). Workers and answers are not duplicated.
    pub fn duplicated(&self, factor: usize) -> Dataset {
        assert!(factor >= 1, "factor must be at least 1");
        let mut out = Dataset::new(self.hierarchy.clone());
        for (name, _) in self.source_names.iter().zip(0..) {
            out.intern_source(name);
        }
        for (name, _) in self.worker_names.iter().zip(0..) {
            out.intern_worker(name);
        }
        for copy in 0..factor {
            for o in self.objects() {
                let name = format!("{}#{copy}", self.object_name(o));
                let no = out.intern_object(&name);
                if let Some(g) = self.gold(o) {
                    out.set_gold(no, g);
                }
            }
        }
        for copy in 0..factor {
            let base = copy * self.n_objects();
            for r in &self.records {
                out.add_record(
                    ObjectId::from_index(base + r.object.index()),
                    r.source,
                    r.value,
                );
            }
        }
        out
    }
}

/// Corpus-level summary statistics, as reported in the paper's §5 dataset
/// descriptions.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// `|O|`.
    pub n_objects: usize,
    /// `|S|`.
    pub n_sources: usize,
    /// `|W|`.
    pub n_workers: usize,
    /// `|R|`.
    pub n_records: usize,
    /// `|A|`.
    pub n_answers: usize,
    /// Nodes in the hierarchy, including the root.
    pub hierarchy_nodes: usize,
    /// Height of the hierarchy.
    pub hierarchy_height: u32,
    /// Number of claims per source (the "Number of claims" row of Fig. 5).
    pub claims_per_source: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn tiny() -> Dataset {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        Dataset::new(b.build())
    }

    #[test]
    fn interning_is_idempotent() {
        let mut ds = tiny();
        let a = ds.intern_object("Statue of Liberty");
        let b = ds.intern_object("Statue of Liberty");
        assert_eq!(a, b);
        assert_eq!(ds.n_objects(), 1);
        assert_eq!(ds.object_name(a), "Statue of Liberty");
        assert_eq!(ds.object_by_name("Statue of Liberty"), Some(a));
        assert_eq!(ds.object_by_name("Big Ben"), None);
    }

    #[test]
    fn records_and_answers_append() {
        let mut ds = tiny();
        let o = ds.intern_object("Statue of Liberty");
        let s = ds.intern_source("Wikipedia");
        let w = ds.intern_worker("Emma Stone");
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        ds.add_record(o, s, li);
        ds.add_answer(o, w, ny);
        assert_eq!(ds.records().len(), 1);
        assert_eq!(ds.answers().len(), 1);
        assert_eq!(ds.records()[0].value, li);
        assert_eq!(ds.answers()[0].worker, w);
    }

    #[test]
    #[should_panic(expected = "root claims")]
    fn root_record_rejected() {
        let mut ds = tiny();
        let o = ds.intern_object("x");
        let s = ds.intern_source("s");
        ds.add_record(o, s, tdh_hierarchy::NodeId::ROOT);
    }

    #[test]
    fn gold_standard() {
        let mut ds = tiny();
        let o = ds.intern_object("Statue of Liberty");
        assert_eq!(ds.gold(o), None);
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.set_gold(o, li);
        assert_eq!(ds.gold(o), Some(li));
    }

    #[test]
    fn stats_counts() {
        let mut ds = tiny();
        let o1 = ds.intern_object("a");
        let o2 = ds.intern_object("b");
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        ds.add_record(o1, s1, ny);
        ds.add_record(o2, s1, ny);
        ds.add_record(o1, s2, ny);
        let st = ds.stats();
        assert_eq!(st.n_objects, 2);
        assert_eq!(st.n_records, 3);
        assert_eq!(st.claims_per_source, vec![2, 1]);
        assert_eq!(st.hierarchy_height, 3);
    }

    #[test]
    fn duplication_scales_objects_and_records() {
        let mut ds = tiny();
        let o = ds.intern_object("a");
        let s = ds.intern_source("s1");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        ds.add_record(o, s, ny);
        ds.set_gold(o, ny);
        let big = ds.duplicated(5);
        assert_eq!(big.n_objects(), 5);
        assert_eq!(big.records().len(), 5);
        assert_eq!(big.n_sources(), 1);
        for o in big.objects() {
            assert_eq!(big.gold(o), Some(ny));
        }
    }
}
