//! Dense integer identifiers for objects, sources and workers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usize index into per-entity tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an object (an entity whose target attribute value we
    /// want to discover, e.g. "Statue of Liberty").
    ObjectId,
    "o"
);
id_type!(
    /// Identifier of a data source (a web page or website).
    SourceId,
    "s"
);
id_type!(
    /// Identifier of a crowd worker.
    WorkerId,
    "w"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let o = ObjectId::from_index(7);
        assert_eq!(o.index(), 7);
        assert_eq!(format!("{o:?}"), "o7");
        assert_eq!(format!("{o}"), "7");
        assert_eq!(format!("{:?}", SourceId(3)), "s3");
        assert_eq!(format!("{:?}", WorkerId(9)), "w9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(5), ObjectId::from_index(5));
    }
}
