//! Dense-id, struct-of-arrays view of an [`ObservationIndex`].
//!
//! The per-object [`crate::ObjectView`]s are convenient but pointer-heavy:
//! every object owns half a dozen small `Vec`s, so an EM inner loop over a
//! million claims chases allocations instead of streaming memory. This
//! module flattens the whole index into contiguous CSR-style tables indexed
//! by dense `u32` ids — one arena per field, offsets per object — plus a
//! per-object candidate-ancestor **bitmask** so the hot "is `c` an ancestor
//! candidate of `t`?" test is one word load instead of a list scan.
//!
//! The flat view is *derived*: [`ObservationIndex::flatten`] produces it on
//! demand (typically once per refit, amortized over every EM iteration), so
//! incremental index updates ([`ObservationIndex::append_from`],
//! [`ObservationIndex::push_answer`]) never pay an O(corpus) rebuild — and
//! the view can never drift out of sync with the index it came from. The
//! `flat_view` property suite pins that flattening an appended index equals
//! flattening a rebuilt one, field for field.
//!
//! All entry orders mirror the per-object views exactly (records in `S_o`
//! order, answers in `W_o` order, ancestors/descendants in candidate-index
//! order), so a kernel that scans the flat tables reproduces the view-based
//! accumulation order bit-for-bit.

use tdh_hierarchy::NodeId;

use crate::delta::DeltaSet;
use crate::index::{ObjectView, ObservationIndex};

/// The flattened observation tables. See the `flat` module docs for the
/// layout discipline; all offset arrays have one trailing entry so
/// `off[i]..off[i + 1]` is always a valid range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatObservations {
    /// Candidate-slot offsets per object: object `o`'s candidates occupy
    /// `cand_off[o]..cand_off[o + 1]` in the slot arenas. Length
    /// `n_objects + 1`.
    pub cand_off: Vec<u32>,
    /// Candidate values per slot (each object's slice sorted by node id,
    /// exactly like [`crate::ObjectView::candidates`]).
    pub cand_value: Vec<NodeId>,
    /// Per slot: number of source records claiming exactly that value.
    pub source_count: Vec<u32>,
    /// Per slot: number of worker answers selecting that value.
    pub worker_count: Vec<u32>,
    /// Per object: `o ∈ O_H` (some candidate pair is ancestor/descendant).
    pub in_oh: Vec<bool>,
    /// Record offsets per object (length `n_objects + 1`).
    pub rec_off: Vec<u32>,
    /// Per record: the claiming source's dense id, in `S_o` order.
    pub rec_src: Vec<u32>,
    /// Per record: the claimed candidate's **object-local** index.
    pub rec_cand: Vec<u32>,
    /// Answer offsets per object (length `n_objects + 1`).
    pub ans_off: Vec<u32>,
    /// Per answer: the answering worker's dense id, in `W_o` order.
    pub ans_wrk: Vec<u32>,
    /// Per answer: the selected candidate's object-local index.
    pub ans_cand: Vec<u32>,
    /// Ancestor-list offsets per candidate slot (length `n_slots + 1`).
    pub anc_off: Vec<u32>,
    /// `G_o(v)` arena: object-local indices of proper ancestor candidates.
    pub anc: Vec<u32>,
    /// Descendant-list offsets per candidate slot (length `n_slots + 1`).
    pub desc_off: Vec<u32>,
    /// `D_o(v)` arena: object-local indices of proper descendant candidates.
    pub desc: Vec<u32>,
    /// Bitmask word offsets per object (length `n_objects + 1`). Objects
    /// outside `O_H` (and claim-less objects) own zero words — the mask is
    /// only consulted on the hierarchy-aware path.
    pub mask_off: Vec<u32>,
    /// Ancestor bitmask arena: for an object with `k` candidates, bit
    /// `t * k + c` of its word block is set iff candidate `c` is a proper
    /// ancestor of candidate `t`.
    pub anc_mask: Vec<u64>,
    /// Per source: total number of records it contributed (`|O_s|`,
    /// replacing `objects_of_source(s).len()` in the M-step).
    pub recs_per_source: Vec<u32>,
    /// Per worker: total number of answers it contributed (`|O_w|`).
    pub ans_per_worker: Vec<u32>,
}

impl FlatObservations {
    /// Number of objects covered.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.cand_off.len().saturating_sub(1)
    }

    /// Total number of candidate slots across all objects.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.cand_value.len()
    }

    /// Total number of source records.
    #[inline]
    pub fn n_records(&self) -> usize {
        self.rec_src.len()
    }

    /// Total number of worker answers.
    #[inline]
    pub fn n_answers(&self) -> usize {
        self.ans_wrk.len()
    }

    /// Append one object's view to every arena (the shared per-object body
    /// of [`ObservationIndex::flatten`] and [`FlatObservations::refresh`]).
    fn push_view(&mut self, view: &ObjectView) {
        let k = view.n_candidates();
        self.cand_value.extend_from_slice(&view.candidates);
        self.source_count.extend_from_slice(&view.source_count);
        self.worker_count.extend_from_slice(&view.worker_count);
        self.in_oh.push(view.in_oh);
        for t in 0..k {
            self.anc.extend_from_slice(&view.ancestors[t]);
            self.anc_off.push(self.anc.len() as u32);
            self.desc.extend_from_slice(&view.descendants[t]);
            self.desc_off.push(self.desc.len() as u32);
        }
        for &(s, c) in &view.sources {
            self.rec_src.push(s.0);
            self.rec_cand.push(c);
        }
        for &(w, c) in &view.workers {
            self.ans_wrk.push(w.0);
            self.ans_cand.push(c);
        }
        if view.in_oh {
            let words = (k * k).div_ceil(64);
            let base = self.anc_mask.len();
            self.anc_mask.resize(base + words, 0);
            for (t, anc) in view.ancestors.iter().enumerate() {
                for &c in anc {
                    let bit = t * k + c as usize;
                    self.anc_mask[base + bit / 64] |= 1u64 << (bit % 64);
                }
            }
        }
        self.cand_off.push(self.cand_value.len() as u32);
        self.rec_off.push(self.rec_src.len() as u32);
        self.ans_off.push(self.ans_wrk.len() as u32);
        self.mask_off.push(self.anc_mask.len() as u32);
    }

    /// Copy object `oi`'s arena spans from `old` verbatim, re-basing the
    /// per-slot and per-object offsets onto this table's current lengths.
    fn copy_object(&mut self, old: &FlatObservations, oi: usize) {
        let cand = old.cand_off[oi] as usize..old.cand_off[oi + 1] as usize;
        self.cand_value
            .extend_from_slice(&old.cand_value[cand.clone()]);
        self.source_count
            .extend_from_slice(&old.source_count[cand.clone()]);
        self.worker_count
            .extend_from_slice(&old.worker_count[cand.clone()]);
        self.in_oh.push(old.in_oh[oi]);
        let anc_base = self.anc.len() as u32;
        let a0 = old.anc_off[cand.start];
        self.anc
            .extend_from_slice(&old.anc[a0 as usize..old.anc_off[cand.end] as usize]);
        let desc_base = self.desc.len() as u32;
        let d0 = old.desc_off[cand.start];
        self.desc
            .extend_from_slice(&old.desc[d0 as usize..old.desc_off[cand.end] as usize]);
        for s in cand.clone() {
            self.anc_off.push(anc_base + (old.anc_off[s + 1] - a0));
            self.desc_off.push(desc_base + (old.desc_off[s + 1] - d0));
        }
        let rec = old.rec_off[oi] as usize..old.rec_off[oi + 1] as usize;
        self.rec_src.extend_from_slice(&old.rec_src[rec.clone()]);
        self.rec_cand.extend_from_slice(&old.rec_cand[rec]);
        let ans = old.ans_off[oi] as usize..old.ans_off[oi + 1] as usize;
        self.ans_wrk.extend_from_slice(&old.ans_wrk[ans.clone()]);
        self.ans_cand.extend_from_slice(&old.ans_cand[ans]);
        let mask = old.mask_off[oi] as usize..old.mask_off[oi + 1] as usize;
        self.anc_mask.extend_from_slice(&old.anc_mask[mask]);
        self.cand_off.push(self.cand_value.len() as u32);
        self.rec_off.push(self.rec_src.len() as u32);
        self.ans_off.push(self.ans_wrk.len() as u32);
        self.mask_off.push(self.anc_mask.len() as u32);
    }

    /// Bring this flat view back in sync with `idx` after an incremental
    /// append, re-flattening **only** the CSR rows of `delta`'s touched
    /// objects (plus any objects appended past the old table's end, which
    /// had no rows to keep). Untouched rows are copied span-for-span at
    /// memcpy speed — no candidate dedup, no `O(k²)` ancestor rescans, no
    /// bitmask rebuilds — so the recompute cost is proportional to the
    /// delta's evidence, not the corpus.
    ///
    /// `idx` must be the index this view was flattened from, advanced by
    /// exactly the appends `delta` describes (deltas from consecutive
    /// [`ObservationIndex::append_from`] calls [`DeltaSet::merge`] into
    /// one). The result is field-for-field identical to a fresh
    /// [`ObservationIndex::flatten`] (pinned by the `flat_view` suite).
    pub fn refresh(&mut self, idx: &ObservationIndex, delta: &DeltaSet) {
        let views = idx.views();
        let n_old = self.n_objects();
        let mut f = FlatObservations::with_capacities(idx);
        for (oi, view) in views.iter().enumerate() {
            if oi < n_old && !delta.contains_object(crate::ObjectId::from_index(oi)) {
                f.copy_object(self, oi);
            } else {
                f.push_view(view);
            }
        }
        *self = f;
    }

    /// An empty table with arenas sized for `idx` and the leading offset
    /// entries in place.
    fn with_capacities(idx: &ObservationIndex) -> FlatObservations {
        let views = idx.views();
        let n_obj = views.len();
        let n_records: usize = views.iter().map(|v| v.sources.len()).sum();
        let n_answers: usize = views.iter().map(|v| v.workers.len()).sum();
        let n_slots: usize = views.iter().map(|v| v.n_candidates()).sum();
        let mut f = FlatObservations {
            cand_off: Vec::with_capacity(n_obj + 1),
            cand_value: Vec::with_capacity(n_slots),
            source_count: Vec::with_capacity(n_slots),
            worker_count: Vec::with_capacity(n_slots),
            in_oh: Vec::with_capacity(n_obj),
            rec_off: Vec::with_capacity(n_obj + 1),
            rec_src: Vec::with_capacity(n_records),
            rec_cand: Vec::with_capacity(n_records),
            ans_off: Vec::with_capacity(n_obj + 1),
            ans_wrk: Vec::with_capacity(n_answers),
            ans_cand: Vec::with_capacity(n_answers),
            anc_off: Vec::with_capacity(n_slots + 1),
            anc: Vec::new(),
            desc_off: Vec::with_capacity(n_slots + 1),
            desc: Vec::new(),
            mask_off: Vec::with_capacity(n_obj + 1),
            anc_mask: Vec::new(),
            recs_per_source: (0..idx.n_sources())
                .map(|s| idx.objects_of_source(crate::SourceId::from_index(s)).len() as u32)
                .collect(),
            ans_per_worker: (0..idx.n_workers())
                .map(|w| idx.objects_of_worker(crate::WorkerId::from_index(w)).len() as u32)
                .collect(),
        };
        f.cand_off.push(0);
        f.rec_off.push(0);
        f.ans_off.push(0);
        f.anc_off.push(0);
        f.desc_off.push(0);
        f.mask_off.push(0);
        f
    }

    /// Borrow object `oi`'s slice of every table.
    #[inline]
    pub fn object(&self, oi: usize) -> FlatObject<'_> {
        let cand = self.cand_off[oi] as usize..self.cand_off[oi + 1] as usize;
        FlatObject {
            flat: self,
            cand_base: cand.start,
            k: cand.len(),
            rec: self.rec_off[oi] as usize..self.rec_off[oi + 1] as usize,
            ans: self.ans_off[oi] as usize..self.ans_off[oi + 1] as usize,
            mask_base: self.mask_off[oi] as usize,
            in_oh: self.in_oh[oi],
        }
    }
}

/// One object's window into the flat tables — the SoA counterpart of
/// [`crate::ObjectView`], borrowing arena slices instead of owning `Vec`s.
#[derive(Debug, Clone)]
pub struct FlatObject<'a> {
    flat: &'a FlatObservations,
    /// First candidate-slot index of this object.
    cand_base: usize,
    k: usize,
    rec: std::ops::Range<usize>,
    ans: std::ops::Range<usize>,
    mask_base: usize,
    /// `o ∈ O_H`.
    pub in_oh: bool,
}

impl<'a> FlatObject<'a> {
    /// Number of candidate values `|V_o|`.
    #[inline]
    pub fn n_candidates(&self) -> usize {
        self.k
    }

    /// First slot index of this object in the per-slot arenas (useful for
    /// kernels addressing flat `μ` buffers).
    #[inline]
    pub fn cand_base(&self) -> usize {
        self.cand_base
    }

    /// The candidate values, sorted by node id.
    #[inline]
    pub fn candidates(&self) -> &'a [NodeId] {
        &self.flat.cand_value[self.cand_base..self.cand_base + self.k]
    }

    /// Per candidate: records claiming exactly that value.
    #[inline]
    pub fn source_count(&self) -> &'a [u32] {
        &self.flat.source_count[self.cand_base..self.cand_base + self.k]
    }

    /// Per candidate: answers selecting that value.
    #[inline]
    pub fn worker_count(&self) -> &'a [u32] {
        &self.flat.worker_count[self.cand_base..self.cand_base + self.k]
    }

    /// The records' source ids, in `S_o` order.
    #[inline]
    pub fn rec_src(&self) -> &'a [u32] {
        &self.flat.rec_src[self.rec.clone()]
    }

    /// The records' claimed candidate indices, aligned with
    /// [`FlatObject::rec_src`].
    #[inline]
    pub fn rec_cand(&self) -> &'a [u32] {
        &self.flat.rec_cand[self.rec.clone()]
    }

    /// The answers' worker ids, in `W_o` order.
    #[inline]
    pub fn ans_wrk(&self) -> &'a [u32] {
        &self.flat.ans_wrk[self.ans.clone()]
    }

    /// The answers' selected candidate indices, aligned with
    /// [`FlatObject::ans_wrk`].
    #[inline]
    pub fn ans_cand(&self) -> &'a [u32] {
        &self.flat.ans_cand[self.ans.clone()]
    }

    /// `|S_o| + |W_o|`: the evidence count in the Eq. (9) denominator.
    #[inline]
    pub fn n_evidence(&self) -> usize {
        self.rec.len() + self.ans.len()
    }

    /// `G_o(v)` for local candidate `t`: proper ancestor candidates, in
    /// candidate-index order.
    #[inline]
    pub fn ancestors(&self, t: u32) -> &'a [u32] {
        let s = self.cand_base + t as usize;
        &self.flat.anc[self.flat.anc_off[s] as usize..self.flat.anc_off[s + 1] as usize]
    }

    /// `D_o(v)` for local candidate `t`: proper descendant candidates.
    #[inline]
    pub fn descendants(&self, t: u32) -> &'a [u32] {
        let s = self.cand_base + t as usize;
        &self.flat.desc[self.flat.desc_off[s] as usize..self.flat.desc_off[s + 1] as usize]
    }

    /// `|G_o(v_t)|` without touching the arena.
    #[inline]
    pub fn anc_len(&self, t: u32) -> usize {
        let s = self.cand_base + t as usize;
        (self.flat.anc_off[s + 1] - self.flat.anc_off[s]) as usize
    }

    /// Number of wrong candidates for truth `t`: `|V_o| − |G_o(v_t)| − 1`.
    #[inline]
    pub fn n_wrong(&self, t: u32) -> usize {
        self.k - self.anc_len(t) - 1
    }

    /// One-word test for `c ∈ G_o(v_t)` via the precomputed bitmask. Only
    /// meaningful for objects in `O_H` (others own no mask words and always
    /// answer `false`, which matches their empty ancestor sets).
    #[inline]
    pub fn is_ancestor(&self, t: u32, c: u32) -> bool {
        if !self.in_oh {
            return false;
        }
        let bit = t as usize * self.k + c as usize;
        (self.flat.anc_mask[self.mask_base + bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// `Pop2(v' | v* = v)` — same arithmetic as [`crate::ObjectView::pop2`].
    pub fn pop2(&self, truth: u32, claim: u32) -> f64 {
        let anc = self.ancestors(truth);
        let counts = self.source_count();
        let denom: u32 = anc.iter().map(|&a| counts[a as usize]).sum();
        if denom == 0 {
            1.0 / anc.len() as f64
        } else {
            f64::from(counts[claim as usize]) / f64::from(denom)
        }
    }

    /// `Pop3(v' | v* = v)` — same arithmetic as [`crate::ObjectView::pop3`].
    pub fn pop3(&self, truth: u32, claim: u32) -> f64 {
        let counts = self.source_count();
        let n_sources: u32 = counts.iter().sum();
        let correctish: u32 = counts[truth as usize]
            + self
                .ancestors(truth)
                .iter()
                .map(|&a| counts[a as usize])
                .sum::<u32>();
        let denom = n_sources - correctish;
        if denom == 0 {
            let n_wrong = self.n_wrong(truth);
            if n_wrong == 0 {
                0.0
            } else {
                1.0 / n_wrong as f64
            }
        } else {
            f64::from(counts[claim as usize]) / f64::from(denom)
        }
    }
}

impl ObservationIndex {
    /// Flatten the per-object views into dense-id struct-of-arrays tables.
    ///
    /// Derived on demand — call once per refit and amortize over every EM
    /// iteration. Because it reads only this index's current state, the
    /// result after [`ObservationIndex::append_from`] is identical to
    /// flattening a from-scratch rebuild (pinned by the `flat_view` suite).
    pub fn flatten(&self) -> FlatObservations {
        let mut f = FlatObservations::with_capacities(self);
        for view in self.views() {
            f.push_view(view);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use tdh_hierarchy::HierarchyBuilder;

    /// The paper's Table 1 fixture plus one worker answer.
    fn fixture() -> (Dataset, ObservationIndex) {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        b.add_path(&["UK", "London"]);
        b.add_path(&["UK", "Manchester"]);
        let mut ds = Dataset::new(b.build());
        let sol = ds.intern_object("Statue of Liberty");
        let bb = ds.intern_object("Big Ben");
        let s: Vec<_> = (0..5).map(|i| ds.intern_source(&format!("s{i}"))).collect();
        let node = |ds: &Dataset, n: &str| ds.hierarchy().node_by_name(n).unwrap();
        let (ny, li, la) = (
            node(&ds, "NY"),
            node(&ds, "Liberty Island"),
            node(&ds, "LA"),
        );
        let (man, lon) = (node(&ds, "Manchester"), node(&ds, "London"));
        ds.add_record(sol, s[0], ny);
        ds.add_record(sol, s[1], li);
        ds.add_record(sol, s[2], la);
        ds.add_record(bb, s[3], man);
        ds.add_record(bb, s[4], lon);
        let w = ds.intern_worker("w0");
        ds.add_answer(sol, w, ny);
        let idx = ObservationIndex::build(&ds);
        (ds, idx)
    }

    /// Field-for-field agreement of one object's flat window with its view.
    fn assert_object_matches(flat: &FlatObservations, idx: &ObservationIndex, oi: usize) {
        let view = &idx.views()[oi];
        let fo = flat.object(oi);
        assert_eq!(fo.candidates(), &view.candidates[..], "candidates[{oi}]");
        assert_eq!(fo.source_count(), &view.source_count[..]);
        assert_eq!(fo.worker_count(), &view.worker_count[..]);
        assert_eq!(fo.in_oh, view.in_oh);
        assert_eq!(fo.n_evidence(), view.sources.len() + view.workers.len());
        let src: Vec<u32> = view.sources.iter().map(|&(s, _)| s.0).collect();
        let src_cand: Vec<u32> = view.sources.iter().map(|&(_, c)| c).collect();
        assert_eq!(fo.rec_src(), &src[..]);
        assert_eq!(fo.rec_cand(), &src_cand[..]);
        let wrk: Vec<u32> = view.workers.iter().map(|&(w, _)| w.0).collect();
        let wrk_cand: Vec<u32> = view.workers.iter().map(|&(_, c)| c).collect();
        assert_eq!(fo.ans_wrk(), &wrk[..]);
        assert_eq!(fo.ans_cand(), &wrk_cand[..]);
        for t in 0..view.n_candidates() as u32 {
            assert_eq!(fo.ancestors(t), &view.ancestors[t as usize][..]);
            assert_eq!(fo.descendants(t), &view.descendants[t as usize][..]);
            assert_eq!(fo.anc_len(t), view.ancestors[t as usize].len());
            assert_eq!(fo.n_wrong(t), view.n_wrong(t));
            for c in 0..view.n_candidates() as u32 {
                assert_eq!(
                    fo.is_ancestor(t, c),
                    view.ancestors[t as usize].contains(&c),
                    "mask({t},{c}) of object {oi}"
                );
            }
        }
    }

    #[test]
    fn flat_matches_views_on_table1() {
        let (_, idx) = fixture();
        let flat = idx.flatten();
        assert_eq!(flat.n_objects(), idx.n_objects());
        assert_eq!(flat.n_records(), 5);
        assert_eq!(flat.n_answers(), 1);
        for oi in 0..idx.n_objects() {
            assert_object_matches(&flat, &idx, oi);
        }
        assert_eq!(flat.recs_per_source, vec![1, 1, 1, 1, 1]);
        assert_eq!(flat.ans_per_worker, vec![1]);
    }

    #[test]
    fn popularity_terms_match_views() {
        let (_, idx) = fixture();
        let flat = idx.flatten();
        let view = &idx.views()[0];
        let fo = flat.object(0);
        for t in 0..view.n_candidates() as u32 {
            for c in 0..view.n_candidates() as u32 {
                if view.ancestors[t as usize].contains(&c) {
                    assert_eq!(fo.pop2(t, c), view.pop2(t, c), "pop2({t},{c})");
                } else if c != t {
                    assert_eq!(fo.pop3(t, c), view.pop3(t, c), "pop3({t},{c})");
                }
            }
        }
    }

    #[test]
    fn non_oh_objects_own_no_mask_words() {
        let (_, idx) = fixture();
        let flat = idx.flatten();
        // Object 1 (Big Ben) is outside O_H: its mask block is empty and
        // is_ancestor is uniformly false.
        assert_eq!(flat.mask_off[1], flat.mask_off[2]);
        let fo = flat.object(1);
        assert!(!fo.is_ancestor(0, 1) && !fo.is_ancestor(1, 0));
    }

    #[test]
    fn refresh_after_append_equals_full_flatten() {
        let (mut ds, mut idx) = fixture();
        let mut flat = idx.flatten();
        // A batch that inserts a candidate (remapping sol's rows), touches
        // Big Ben too, and introduces a brand-new object.
        let (nr, na) = (ds.records().len(), ds.answers().len());
        let sol = ds.object_by_name("Statue of Liberty").unwrap();
        let bb = ds.object_by_name("Big Ben").unwrap();
        let tower = ds.intern_object("Eiffel Tower");
        let s0 = ds.intern_source("s0");
        let node = |ds: &Dataset, n: &str| ds.hierarchy().node_by_name(n).unwrap();
        ds.add_record(sol, s0, node(&ds, "USA"));
        ds.add_record(bb, s0, node(&ds, "London"));
        ds.add_record(tower, s0, node(&ds, "LA"));
        let delta = idx.append_from(&ds, nr, na);
        flat.refresh(&idx, &delta);
        assert_eq!(flat, idx.flatten(), "refresh must equal a full flatten");
    }

    #[test]
    fn refresh_with_empty_delta_grows_new_objects_only() {
        let (mut ds, mut idx) = fixture();
        let mut flat = idx.flatten();
        // Interning an object without claims grows the view table but
        // produces an empty delta; refresh must still cover the new row.
        ds.intern_object("claimless");
        let delta = idx.append_from(&ds, ds.records().len(), ds.answers().len());
        assert!(delta.is_empty());
        flat.refresh(&idx, &delta);
        assert_eq!(flat, idx.flatten());
    }

    #[test]
    fn empty_index_flattens_empty() {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let flat = ObservationIndex::build(&ds).flatten();
        assert_eq!(flat.n_objects(), 0);
        assert_eq!(flat.n_slots(), 0);
        assert_eq!(flat.cand_off, vec![0]);
    }
}
