//! The delta produced by an incremental index append.
//!
//! [`crate::ObservationIndex::append_from`] returns a [`DeltaSet`]: the
//! objects a claim batch touched, plus the sources and workers those objects
//! implicate — transitively closed **one hop**, i.e. every source/worker
//! with *any* claim on a touched object, not just the ones appearing in the
//! batch. One hop is exactly the dependency footprint of a delta E-step: a
//! touched object's posterior reads the parameters of every entity that
//! claimed about it, so those entities' sufficient statistics must move with
//! it, while everything further away stays frozen.
//!
//! Each touched object also carries its **pre-batch claim counts**
//! ([`TouchedObject::old_records`] / [`TouchedObject::old_answers`]).
//! Incremental appends only ever push new claims at the *end* of an object's
//! `S_o`/`W_o` rows, so the first `old_records` records and `old_answers`
//! answers of the post-batch view are precisely the claims a previous fit
//! already accounted for — the prefix a delta refit subtracts from its
//! cached sufficient statistics before folding the grown rows back in.
//!
//! Deltas [`merge`](DeltaSet::merge) across batches: a server that defers
//! refits accumulates one `DeltaSet` spanning every batch since the last
//! fit. Merging keeps the **minimum** old counts per object (counts only
//! grow, so the earliest snapshot is the true pre-delta prefix) and unions
//! the implicated entity sets.

use crate::ids::{ObjectId, SourceId, WorkerId};

/// One object touched by a claim batch, with the length of the claim prefix
/// that predates the delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchedObject {
    /// The touched object.
    pub object: ObjectId,
    /// `|S_o|` before the delta: the object's first `old_records` records
    /// were already present when the delta began.
    pub old_records: u32,
    /// `|W_o|` before the delta.
    pub old_answers: u32,
}

/// The set of objects a claim batch touched, with the sources/workers they
/// implicate (one-hop closure). See the module docs for the contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSet {
    /// Touched objects, sorted by object id, deduplicated.
    objects: Vec<TouchedObject>,
    /// Implicated sources (any source with a claim on a touched object),
    /// sorted, deduplicated.
    sources: Vec<SourceId>,
    /// Implicated workers, sorted, deduplicated.
    workers: Vec<WorkerId>,
}

impl DeltaSet {
    /// An empty delta (no objects touched).
    pub fn new() -> Self {
        DeltaSet::default()
    }

    /// Assemble a delta from parts. `objects` must be sorted by object id
    /// and deduplicated; `sources`/`workers` sorted and deduplicated.
    pub(crate) fn from_parts(
        objects: Vec<TouchedObject>,
        sources: Vec<SourceId>,
        workers: Vec<WorkerId>,
    ) -> Self {
        debug_assert!(objects.windows(2).all(|w| w[0].object < w[1].object));
        debug_assert!(sources.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(workers.windows(2).all(|w| w[0] < w[1]));
        DeltaSet {
            objects,
            sources,
            workers,
        }
    }

    /// `true` when no object was touched.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The touched objects, sorted by object id.
    pub fn objects(&self) -> &[TouchedObject] {
        &self.objects
    }

    /// The implicated sources (one-hop closure), sorted.
    pub fn sources(&self) -> &[SourceId] {
        &self.sources
    }

    /// The implicated workers (one-hop closure), sorted.
    pub fn workers(&self) -> &[WorkerId] {
        &self.workers
    }

    /// `true` iff object `o` was touched.
    pub fn contains_object(&self, o: ObjectId) -> bool {
        self.objects.binary_search_by_key(&o, |t| t.object).is_ok()
    }

    /// The touched object entry for `o`, if touched.
    pub fn touched(&self, o: ObjectId) -> Option<&TouchedObject> {
        self.objects
            .binary_search_by_key(&o, |t| t.object)
            .ok()
            .map(|i| &self.objects[i])
    }

    /// The fraction of a corpus of `n_objects` objects this delta touches —
    /// the quantity `RefitPolicy::StalenessBound` routes on. An empty delta
    /// touches nothing; on an empty corpus a non-empty delta counts as
    /// touching everything.
    pub fn touched_frac(&self, n_objects: usize) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        if n_objects == 0 {
            return 1.0;
        }
        self.objects.len() as f64 / n_objects as f64
    }

    /// Fold `other` (a *later* delta) into this one. Per object the
    /// **minimum** old counts win: claim counts only grow, so the earlier
    /// snapshot marks the true pre-delta prefix. Entity sets are unioned.
    pub fn merge(&mut self, other: &DeltaSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        self.objects = merge_objects(&self.objects, &other.objects);
        self.sources = merge_sorted(&self.sources, &other.sources);
        self.workers = merge_sorted(&self.workers, &other.workers);
    }
}

/// Merge two sorted touched-object lists, keeping the minimum old counts
/// for objects present in both.
fn merge_objects(a: &[TouchedObject], b: &[TouchedObject]) -> Vec<TouchedObject> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].object.cmp(&b[j].object) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(TouchedObject {
                    object: a[i].object,
                    old_records: a[i].old_records.min(b[j].old_records),
                    old_answers: a[i].old_answers.min(b[j].old_answers),
                });
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Union of two sorted deduplicated id lists.
fn merge_sorted<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(o: u32, r: u32, a: u32) -> TouchedObject {
        TouchedObject {
            object: ObjectId(o),
            old_records: r,
            old_answers: a,
        }
    }

    #[test]
    fn empty_delta_touches_nothing() {
        let d = DeltaSet::new();
        assert!(d.is_empty());
        assert_eq!(d.touched_frac(100), 0.0);
        assert!(!d.contains_object(ObjectId(0)));
    }

    #[test]
    fn touched_frac_counts_objects() {
        let d = DeltaSet::from_parts(vec![t(1, 0, 0), t(7, 2, 1)], vec![], vec![]);
        assert!((d.touched_frac(10) - 0.2).abs() < 1e-12);
        assert_eq!(d.touched_frac(0), 1.0, "non-empty delta on empty corpus");
        assert!(d.contains_object(ObjectId(7)));
        assert!(!d.contains_object(ObjectId(2)));
        assert_eq!(d.touched(ObjectId(7)), Some(&t(7, 2, 1)));
    }

    #[test]
    fn merge_keeps_minimum_old_counts_and_unions_entities() {
        let mut a = DeltaSet::from_parts(
            vec![t(1, 3, 0), t(4, 5, 2)],
            vec![SourceId(0), SourceId(2)],
            vec![WorkerId(1)],
        );
        let b = DeltaSet::from_parts(
            vec![t(2, 0, 0), t(4, 7, 1)],
            vec![SourceId(1), SourceId(2)],
            vec![WorkerId(0), WorkerId(1)],
        );
        a.merge(&b);
        assert_eq!(a.objects(), &[t(1, 3, 0), t(2, 0, 0), t(4, 5, 1)]);
        assert_eq!(a.sources(), &[SourceId(0), SourceId(1), SourceId(2)]);
        assert_eq!(a.workers(), &[WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = DeltaSet::from_parts(vec![t(3, 1, 1)], vec![SourceId(5)], vec![]);
        let before = a.clone();
        a.merge(&DeltaSet::new());
        assert_eq!(a, before);
        let mut e = DeltaSet::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
