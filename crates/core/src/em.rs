//! The EM inference algorithm for the TDH model (§3.2 of the paper).
//!
//! Each iteration computes, in one pass over records and answers, the E-step
//! conditionals of Fig. 4 — the truth posteriors `f^v_{o,s}` / `f^v_{o,w}`
//! and the relationship-type posteriors `g^t_{o,s}` / `g^t_{o,w}` — and folds
//! them straight into the M-step accumulators of Eq. (9)–(11). The MAP
//! objective `F` (Eq. 8) is tracked for convergence.
//!
//! # Data layout
//!
//! The kernels do not scan the per-object [`tdh_data::ObjectView`]s: the
//! index is flattened once per fit ([`ObservationIndex::flatten`], timed as
//! [`PhaseTimings::flatten`]) into the dense-id struct-of-arrays tables of
//! [`FlatObservations`], and every E/M inner loop streams those contiguous
//! buffers. The likelihood kernels ([`flat_source_likelihood`],
//! [`flat_worker_likelihood`]) mirror the view-based ones in `model.rs`
//! operation for operation — a unit test pins them equal over every
//! `(claim, truth)` pair and ablation combination — with the ancestor test
//! served by the flat view's precomputed bitmask instead of a list scan.
//!
//! # Parallel execution: one barrier per phase
//!
//! One persistent [`crate::par::ThreadPool`] is created per fit and reused
//! across **all** EM iterations (no per-iteration thread spawns). Each
//! iteration is exactly two pool batches — the E batch and the M batch; the
//! in-order completion of `run_batch` *is* the barrier, and there is no
//! other synchronization: no locks, no atomics, no shared mutable state.
//!
//! * Objects are partitioned once per fit into claim-weighted contiguous
//!   chunks ([`par::chunk_ranges_weighted`] — boundaries depend only on the
//!   corpus and thread count, never on scheduling). Each chunk **owns** its
//!   state for the whole fit ([`ChunkState`]: its `μ` rows flattened over
//!   its slot range, its accumulators, its scratch); the state moves into
//!   each job by value and comes back with the result, so workers only ever
//!   touch memory they own.
//! * The **E batch** sends every chunk its state plus an `Arc` of the
//!   read-only iteration snapshot ([`Params`]: `φ`/`ψ`). Each job scans its
//!   objects' records and answers into its own accumulators and also sums
//!   its chunk's Eq. (8) `μ` log-prior terms; the driver computes the tiny
//!   `φ`/`ψ` log-prior sums itself, merges the returned accumulators in
//!   fixed chunk order, and reclaims the snapshot via `Arc::try_unwrap`
//!   (all clones die at the barrier).
//! * The **M batch** runs the Eq. (9) `μ` updates (each chunk writes its
//!   own `μ` range — disjoint by construction), and the Eq. (10)/(11)
//!   `φ`/`ψ` updates (reading an `Arc` of the merged accumulators plus the
//!   flat per-entity incidence counts, so every update is bit-identical
//!   regardless of how entities are chunked).
//!
//! [`TdhConfig::n_threads`] controls the chunk count; `1` submits a single
//! chunk inline (no threads spawned) and reproduces the sequential
//! accumulation order bit-for-bit, and any chunk count yields parameters
//! equal up to FP-summation regrouping (the facade's `parallel_equivalence`
//! and `pool_equivalence` suites assert 1e-9 agreement end-to-end, with
//! identical predicted truths on every tested corpus — an object whose top
//! two posteriors tie within that regrouping noise could in principle flip,
//! which the bench `scaling` scenario cross-checks and reports).

use std::mem;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdh_data::{Dataset, FlatObject, FlatObservations, ObservationIndex};

use crate::model::{prior_mean, AblationFlags, TdhConfig, TdhModel, WarmStart};
use crate::par;

/// Diagnostics from one EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Final value of the MAP objective `F` (up to additive constants).
    /// `None` when no iteration ran (`max_iters = 0`) or the last iteration's
    /// objective was non-finite, so downstream consumers (bench JSON,
    /// convergence traces) never see `-inf`/NaN silently propagate.
    pub objective: Option<f64>,
    /// Whether the relative-improvement stopping rule fired before
    /// `max_iters`. Only ever fires on a non-descending step — a trace that
    /// is actively decreasing is a modeling/numerics problem, not
    /// convergence (check [`FitReport::monotone`] for dips earlier in the
    /// trace).
    pub converged: bool,
    /// Whether the objective trace never decreased beyond FP-noise slack
    /// (1e-9 relative). EM ascends the MAP objective, so `false` flags a
    /// numerics or configuration problem worth surfacing.
    pub monotone: bool,
    /// Objective value before each parameter update (one entry per
    /// iteration).
    pub trace: Vec<f64>,
}

/// Wall-clock time spent in each phase of the last fit, for the bench
/// harness's per-phase scaling reports.
///
/// Kept separate from [`FitReport`] on purpose: the report is part of the
/// deterministic fit contract (pooled repeats compare it bitwise), while
/// timings differ run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time to build the [`ObservationIndex`]. Zero when the caller supplied
    /// a prebuilt index (`infer`) instead of going through `fit`.
    pub index_build: Duration,
    /// Time to flatten the index into the dense-id struct-of-arrays tables
    /// the EM kernels scan (once per fit, before the first iteration).
    pub flatten: Duration,
    /// Total E-step time across iterations: the E batch (chunk scans of the
    /// flat tables, one barrier), the fixed-order merge and the objective
    /// assembly.
    pub e_step: Duration,
    /// Total M-step time across iterations: the M batch (`μ`/`φ`/`ψ`
    /// updates, one barrier) and the parameter installation.
    pub m_step: Duration,
}

/// Clamp for logarithms of vanishing probabilities.
const LOG_FLOOR: f64 = 1e-300;

/// Relative slack under which an objective decrease is attributed to
/// floating-point noise rather than a genuinely descending trace.
pub(crate) const MONOTONE_SLACK: f64 = 1e-9;

/// The stopping rule of `run_em`, factored out so its edge cases are unit
/// testable: a step converges only when its magnitude is below `tol` *and*
/// it did not descend beyond [`MONOTONE_SLACK`] — a sequence of small
/// decreases (FP noise blown up by ablation configs) is not a fixed point.
/// A dip earlier in the trace is latched into `monotone` for the report but
/// does not forfeit a later genuine plateau (the renormalised E-step clamp
/// makes EM's ascent guarantee approximate, so a transient dip must not
/// force every remaining iteration).
pub(crate) struct ConvergenceMonitor {
    tol: f64,
    prev: Option<f64>,
    monotone: bool,
}

impl ConvergenceMonitor {
    pub(crate) fn new(tol: f64) -> Self {
        ConvergenceMonitor {
            tol,
            prev: None,
            monotone: true,
        }
    }

    /// `true` while no observed step decreased beyond the noise slack.
    pub(crate) fn monotone(&self) -> bool {
        self.monotone
    }

    /// Feed the next objective value; returns `true` when the run has
    /// converged.
    pub(crate) fn observe(&mut self, obj: f64) -> bool {
        let Some(prev) = self.prev.replace(obj) else {
            return false;
        };
        if !obj.is_finite() {
            // A collapse from a finite objective to -inf/NaN is the worst
            // possible descent, not a gap in the record.
            if prev.is_finite() {
                self.monotone = false;
            }
            return false;
        }
        if !prev.is_finite() {
            return false;
        }
        let scale = prev.abs().max(1.0);
        if obj < prev - MONOTONE_SLACK * scale {
            self.monotone = false;
            return false;
        }
        (obj - prev).abs() / scale < self.tol
    }
}

/// The read-only iteration snapshot shared with every E-step job via `Arc`.
///
/// Only `φ`/`ψ` need to be globally visible during a scan: `μ`, its
/// accumulators and the Eq. (9) update are entirely within-object, so they
/// live in the chunk that owns the object ([`ChunkState`]) and never cross
/// a thread boundary except by moving with their job. The driver reclaims
/// the snapshot with `Arc::try_unwrap` after the E barrier (every job clone
/// has been dropped by then) and mutates it in place during the M phase —
/// parameters are never copied per iteration.
struct Params {
    /// `φ_s = (exact, generalized, wrong)` per source.
    phi: Vec<[f64; 3]>,
    /// `ψ_w = (exact, generalized, wrong)` per worker.
    psi: Vec<[f64; 3]>,
}

/// The merged E-step `φ`/`ψ` accumulators (summed over chunks in fixed
/// chunk order by the driver), shared read-only with the M-batch `φ`/`ψ`
/// jobs via `Arc` and reclaimed after the barrier so the buffers are reused
/// across iterations.
///
/// After the EM loop the final iteration's accumulators are exactly the
/// sufficient statistics the stored `φ`/`ψ` were computed from
/// (Eq. 10/11: `φ_s = (acc + α − 1) / (|O_s| + Σ(α − 1))`), so `run_em`
/// retains them on the model as the delta-refit cache
/// (`TdhModel::fit_delta` subtracts a touched object's old claims from
/// them and folds the regrown rows back in).
#[derive(Debug, Clone)]
pub(crate) struct MergedAcc {
    /// Summed `g^t_{o,s}` relationship-posterior triples per source.
    pub(crate) phi: Vec<[f64; 3]>,
    /// Summed `g^t_{o,w}` triples per worker.
    pub(crate) psi: Vec<[f64; 3]>,
}

/// Everything one object-chunk owns for the duration of a fit. Moves into
/// each E/M job by value (through the pool's channels) and comes back with
/// the result — ownership transfer is the whole synchronization story.
struct ChunkState {
    /// The chunk's object range (fixed for the whole fit).
    objects: Range<usize>,
    /// First candidate slot of `objects.start` in the flat tables; the
    /// chunk's `mu`/`acc_mu` buffers are indexed by `slot - slot_base`.
    slot_base: usize,
    /// `μ` for this chunk's slots, flattened in slot order.
    mu: Vec<f64>,
    /// E-step `μ` accumulators (same shape as `mu`); after an M step they
    /// hold the Eq. (9) numerators `N_{o,v}` for the incremental-EM cache.
    acc_mu: Vec<f64>,
    /// Eq. (9) denominators `D_o` per object of the chunk (filled by the M
    /// step; empty until the first iteration).
    d_o: Vec<f64>,
    /// E-step `φ` accumulators spanning **all** sources.
    acc_phi: Vec<[f64; 3]>,
    /// E-step `ψ` accumulators spanning all workers.
    acc_psi: Vec<[f64; 3]>,
    /// Posterior scratch, reused across claims.
    posterior: Vec<f64>,
    /// Chunk partial of the log-likelihood.
    log_lik: f64,
    /// Chunk partial of the Eq. (8) `μ` log-prior.
    log_prior_mu: f64,
}

/// A job for the per-fit worker pool.
enum EmJob {
    /// Scan the E-step conditionals for one chunk of objects into the
    /// chunk's own accumulators, reading `φ`/`ψ` from the shared snapshot.
    EStep {
        /// The chunk's state, carried in and returned filled.
        chunk: ChunkState,
        /// The pre-update parameters (read-only; reclaimed at the barrier).
        params: Arc<Params>,
    },
    /// The Eq. (9) `μ` update for one chunk: transform the chunk's
    /// accumulator into the `N_{o,v}` numerators and write the chunk's own
    /// `μ` buffer (disjoint by construction — no other job can touch it).
    MStepMu(ChunkState),
    /// Compute the Eq. (10) `φ` update for a chunk of sources from the
    /// merged accumulators.
    MStepPhi {
        /// The job's source range.
        range: Range<usize>,
        /// The merged accumulators (read-only; reclaimed at the barrier).
        merged: Arc<MergedAcc>,
    },
    /// Compute the Eq. (11) `ψ` update for a chunk of workers.
    MStepPsi {
        /// The job's worker range.
        range: Range<usize>,
        /// The merged accumulators.
        merged: Arc<MergedAcc>,
    },
}

/// The result of one [`EmJob`].
enum EmOut {
    /// The chunk's state, accumulators filled.
    EStep(ChunkState),
    /// The chunk's state, `mu` updated and `acc_mu` transformed into the
    /// Eq. (9) numerators.
    MStepMu(ChunkState),
    /// Updated `φ` values for the job's source range.
    MStepPhi(Vec<[f64; 3]>),
    /// Updated `ψ` values for the job's worker range.
    MStepPsi(Vec<[f64; 3]>),
}

/// The single worker function every pool thread runs. It borrows only the
/// immutable flat tables and the config — all mutable state arrives owned
/// by the job and leaves with the result.
fn em_worker(flat: &FlatObservations, cfg: &TdhConfig, job: EmJob) -> EmOut {
    match job {
        EmJob::EStep { mut chunk, params } => {
            e_step_chunk(flat, cfg, &params, &mut chunk);
            EmOut::EStep(chunk)
        }
        EmJob::MStepMu(mut chunk) => {
            m_step_mu_chunk(flat, cfg, &mut chunk);
            EmOut::MStepMu(chunk)
        }
        EmJob::MStepPhi { range, merged } => {
            EmOut::MStepPhi(m_step_phi_chunk(flat, cfg, &merged, range))
        }
        EmJob::MStepPsi { range, merged } => {
            EmOut::MStepPsi(m_step_psi_chunk(flat, cfg, &merged, range))
        }
    }
}

/// `P(v_o^s = c | v*_o = t, φ_s)` — Eq. (1) for objects in `O_H`, Eq. (2)
/// otherwise, over the flat view. Mirrors
/// `TdhModel::source_likelihood_cfg` operation for operation (pinned equal
/// by `flat_likelihoods_match_view_likelihoods`), with the ancestor test
/// served by the precomputed bitmask.
pub(crate) fn flat_source_likelihood(
    fo: &FlatObject<'_>,
    phi: &[f64; 3],
    c: u32,
    t: u32,
    flags: AblationFlags,
) -> f64 {
    let k = fo.n_candidates();
    if fo.in_oh && flags.hierarchy_aware {
        if c == t {
            phi[0]
        } else if fo.is_ancestor(t, c) {
            phi[1] / fo.anc_len(t) as f64
        } else {
            // `c` is wrong for truth `t`; the wrong set is non-empty
            // because `c` belongs to it.
            phi[2] / fo.n_wrong(t) as f64
        }
    } else if c == t {
        phi[0] + phi[1]
    } else {
        phi[2] / (k - 1) as f64
    }
}

/// `P(v_o^w = c | v*_o = t, ψ_w)` — Eq. (3) for objects in `O_H`, Eq. (4)
/// otherwise, over the flat view; mirrors
/// `TdhModel::worker_likelihood_cfg`.
pub(crate) fn flat_worker_likelihood(
    fo: &FlatObject<'_>,
    psi: &[f64; 3],
    c: u32,
    t: u32,
    flags: AblationFlags,
) -> f64 {
    if fo.in_oh && flags.hierarchy_aware {
        if c == t {
            psi[0]
        } else if fo.is_ancestor(t, c) {
            let pop = if flags.worker_popularity {
                fo.pop2(t, c)
            } else {
                1.0 / fo.anc_len(t) as f64
            };
            psi[1] * pop
        } else {
            let pop = if flags.worker_popularity {
                fo.pop3(t, c)
            } else {
                1.0 / fo.n_wrong(t).max(1) as f64
            };
            psi[2] * pop
        }
    } else if c == t {
        psi[0] + psi[1]
    } else {
        let pop = if !flags.worker_popularity {
            1.0 / (fo.n_candidates() - 1).max(1) as f64
        } else if fo.in_oh {
            // Hierarchy-unaware ablation on a hierarchical object:
            // popularity among all non-truth claims (no Go carve-out).
            let counts = fo.source_count();
            let total: u32 = counts.iter().sum();
            let denom = total - counts[t as usize];
            if denom == 0 {
                1.0 / (fo.n_candidates() - 1).max(1) as f64
            } else {
                f64::from(counts[c as usize]) / f64::from(denom)
            }
        } else {
            fo.pop3(t, c)
        };
        psi[2] * pop
    }
}

pub(crate) fn run_em(
    model: &mut TdhModel,
    ds: &Dataset,
    idx: &ObservationIndex,
    warm: Option<&WarmStart>,
) -> FitReport {
    let cfg = *model.config();
    let n_threads = par::effective_threads(cfg.n_threads);
    initialize(model, ds, idx, &cfg, warm);

    // Flatten once; every iteration's kernels amortize this single pass.
    let t_flat = Instant::now();
    let flat = idx.flatten();
    let flatten_time = t_flat.elapsed();

    let params = Params {
        phi: mem::take(&mut model.phi),
        psi: mem::take(&mut model.psi),
    };
    let mu_rows = mem::take(&mut model.mu);
    let worker = |job: EmJob| em_worker(&flat, &cfg, job);
    let (report, params, chunks, merged, mut timings, iter_timings) =
        par::with_pool(n_threads, &worker, |pool| {
            em_loop(&flat, &cfg, params, mu_rows, pool)
        });
    timings.flatten = flatten_time;
    model.phi = params.phi;
    model.psi = params.psi;
    // Rebuild the row-shaped μ from the chunk-owned buffers and refresh the
    // incremental-EM cache: after the final M step, `acc_mu` holds the last
    // Eq. (9) numerators `N_{o,v}` and `d_o` the matching denominators
    // (`d_o` is empty when no iteration ran, leaving initialize's cache).
    model.mu = vec![Vec::new(); flat.n_objects()];
    for chunk in &chunks {
        for (rel_o, oi) in chunk.objects.clone().enumerate() {
            let fo = flat.object(oi);
            let rel = fo.cand_base() - chunk.slot_base;
            let k = fo.n_candidates();
            model.mu[oi] = chunk.mu[rel..rel + k].to_vec();
            let d = chunk.d_o.get(rel_o).copied().unwrap_or(0.0);
            if d == 0.0 {
                continue;
            }
            let n_ov = &mut model.n_ov[oi];
            n_ov.clear();
            n_ov.extend_from_slice(&chunk.acc_mu[rel..rel + k]);
            model.d_o[oi] = d;
        }
    }
    // Retain the delta-refit caches: the flat tables (refreshed in place by
    // the next `fit_delta`) and the final iteration's E-step sufficient
    // statistics — exactly the accumulators the stored `φ`/`ψ` were computed
    // from. A zero-iteration run never produced accumulators, so it leaves
    // no cache and the next refit must be full. A full fit resets the drift
    // budget.
    model.acc_cache = (report.iterations > 0).then_some(merged);
    model.flat_cache = Some(flat);
    model.delta_debt = 0.0;
    model.last_timings = Some(timings);
    // Observability: recorded strictly after the pool scope, on the driver
    // thread, so it can never perturb the deterministic EM arithmetic.
    if let Some(reg) = model.obs.as_deref() {
        let warm_label = if warm.is_some() { "true" } else { "false" };
        reg.counter("tdh_em_fits_total", &[("warm", warm_label)])
            .inc();
        if report.converged {
            reg.counter("tdh_em_converged_total", &[]).inc();
        }
        reg.histogram("tdh_em_iterations", &[])
            .record(report.iterations as u64);
        reg.histogram("tdh_em_flatten_us", &[])
            .record_duration(flatten_time);
        let e_hist = reg.histogram("tdh_em_e_step_us", &[]);
        let m_hist = reg.histogram("tdh_em_m_step_us", &[]);
        for (e, m) in &iter_timings {
            e_hist.record_duration(*e);
            m_hist.record_duration(*m);
        }
        let delta = match report.trace.as_slice() {
            [.., a, b] => (b - a).abs(),
            _ => 0.0,
        };
        reg.gauge("tdh_em_objective_delta", &[]).set(delta);
    }
    report
}

/// The EM driver, run inside the fit's pool scope: iterate E+M batches on
/// the persistent workers until convergence. Returns the final parameters
/// and chunk states along with the report so `run_em` can move them back
/// into the model, plus the per-iteration `(E, M)` wall-clock deltas for
/// the observability registry (kept out of the bitwise-compared
/// [`FitReport`] and the `Copy` [`PhaseTimings`]).
#[allow(clippy::type_complexity)]
fn em_loop(
    flat: &FlatObservations,
    cfg: &TdhConfig,
    mut params: Params,
    mu_rows: Vec<Vec<f64>>,
    pool: &par::ThreadPool<'_, EmJob, EmOut>,
) -> (
    FitReport,
    Params,
    Vec<ChunkState>,
    MergedAcc,
    PhaseTimings,
    Vec<(Duration, Duration)>,
) {
    let n_threads = pool.n_threads();
    let n_obj = flat.n_objects();
    // Chunk boundaries are fixed for the whole fit — they depend only on
    // the corpus and the thread count — so the FP merge grouping is
    // identical every iteration and every run. Chunks are balanced by
    // *claim* count, not object count: Zipf-ish corpora concentrate most
    // claims on few objects, and equal object counts would starve most
    // workers.
    let mut prefix = Vec::with_capacity(n_obj + 1);
    prefix.push(0u64);
    for oi in 0..n_obj {
        let w = u64::from(flat.rec_off[oi + 1] - flat.rec_off[oi])
            + u64::from(flat.ans_off[oi + 1] - flat.ans_off[oi])
            + 1;
        prefix.push(prefix[oi] + w);
    }
    let e_ranges = par::chunk_ranges_weighted(n_threads, &prefix);
    let phi_ranges = par::chunk_ranges(params.phi.len(), n_threads);
    let psi_ranges = par::chunk_ranges(params.psi.len(), n_threads);

    // Each chunk takes ownership of its slice of the initialized μ rows.
    let mut chunks: Vec<ChunkState> = e_ranges
        .iter()
        .map(|r| {
            let slot_base = flat.cand_off[r.start] as usize;
            let slot_end = flat.cand_off[r.end] as usize;
            let mut mu = Vec::with_capacity(slot_end - slot_base);
            for row in &mu_rows[r.clone()] {
                mu.extend_from_slice(row);
            }
            ChunkState {
                objects: r.clone(),
                slot_base,
                acc_mu: vec![0.0; mu.len()],
                mu,
                d_o: Vec::new(),
                acc_phi: Vec::new(),
                acc_psi: Vec::new(),
                posterior: Vec::new(),
                log_lik: 0.0,
                log_prior_mu: 0.0,
            }
        })
        .collect();
    drop(mu_rows);
    // Driver-owned merge buffers, lent to the M batch through an `Arc` and
    // reclaimed after its barrier.
    let mut merged = MergedAcc {
        phi: vec![[0.0f64; 3]; params.phi.len()],
        psi: vec![[0.0f64; 3]; params.psi.len()],
    };

    let mut timings = PhaseTimings::default();
    let mut iter_timings = Vec::new();
    let mut trace = Vec::new();
    let mut monitor = ConvergenceMonitor::new(cfg.tol);
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        let (e_before, m_before) = (timings.e_step, timings.m_step);
        let obj;
        (obj, params, chunks, merged) = em_iteration(
            cfg,
            params,
            chunks,
            merged,
            pool,
            &phi_ranges,
            &psi_ranges,
            &mut timings,
        );
        iter_timings.push((timings.e_step - e_before, timings.m_step - m_before));
        trace.push(obj);
        if monitor.observe(obj) {
            converged = true;
            break;
        }
    }

    let report = FitReport {
        iterations,
        objective: trace.last().copied().filter(|o| o.is_finite()),
        converged,
        monotone: monitor.monotone(),
        trace,
    };
    (report, params, chunks, merged, timings, iter_timings)
}

/// Initial parameters: priors' means for `φ`/`ψ`, claim-frequency smoothing
/// for `μ` (a vote-shaped start converges in a handful of iterations and is
/// deterministic). When `warm` is given, the cold values are overwritten
/// with the previous fit's parameters wherever they apply: `φ`/`ψ` by dense
/// id prefix (ids are append-only), `μ` by candidate *value* — an object
/// whose candidate set grew keeps its learned mass on the old candidates,
/// the inserted ones keep their vote-prior weight, and the row is
/// renormalized. Objects whose candidate sets are unchanged take the warm
/// distribution bit-for-bit (no renormalization), so a warm start on
/// unchanged data resumes exactly at the previous fixed point.
fn initialize(
    model: &mut TdhModel,
    ds: &Dataset,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    warm: Option<&WarmStart>,
) {
    model.phi = vec![prior_mean(&cfg.alpha); ds.n_sources()];
    let n_workers = ds.n_workers().max(idx.n_workers());
    model.psi = vec![prior_mean(&cfg.beta); n_workers];
    model.mu = idx
        .views()
        .iter()
        .map(|view| {
            let k = view.n_candidates();
            if k == 0 {
                return Vec::new();
            }
            let total: f64 = (0..k)
                .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 1.0)
                .sum();
            (0..k)
                .map(|v| (f64::from(view.source_count[v] + view.worker_count[v]) + 1.0) / total)
                .collect()
        })
        .collect();
    model.n_ov = vec![Vec::new(); idx.n_objects()];
    model.d_o = vec![0.0; idx.n_objects()];

    let Some(warm) = warm else { return };
    for (slot, prev) in model.phi.iter_mut().zip(&warm.phi) {
        *slot = *prev;
    }
    for (slot, prev) in model.psi.iter_mut().zip(&warm.psi) {
        *slot = *prev;
    }
    for (oi, prev) in warm.mu.iter().enumerate().take(model.mu.len()) {
        let view = &idx.views()[oi];
        let mu = &mut model.mu[oi];
        let mut missing = 0usize;
        for (v, slot) in view.candidates.iter().zip(mu.iter_mut()) {
            match prev.binary_search_by(|&(c, _)| c.cmp(v)) {
                Ok(p) => *slot = prev[p].1,
                Err(_) => missing += 1,
            }
        }
        // A grown candidate set mixes warm mass with vote-prior weight for
        // the new entries; renormalize to keep μ a distribution. When every
        // candidate was found the row *is* the previous distribution —
        // leave its bits alone.
        if missing > 0 && missing < mu.len() {
            let z: f64 = mu.iter().sum();
            if z > 0.0 {
                for x in mu.iter_mut() {
                    *x /= z;
                }
            }
        }
    }
}

/// The relationship-type posterior `(g^1, g^2, g^3)` of Fig. 4 from the
/// unnormalised exact/generalized masses `n1`, `n2` and the total evidence
/// `z > 0`.
///
/// The residual `z - n1 - n2` can undershoot zero when `n2` overshoots
/// `z - n1` (hierarchy-aware `n2` sums descendant terms that are not a subset
/// of `z`'s decomposition), so the triple is clamped and renormalised to keep
/// it a distribution before it enters the `φ`/`ψ` accumulators.
pub(crate) fn relationship_posterior(n1: f64, n2: f64, z: f64) -> [f64; 3] {
    debug_assert!(z > 0.0, "caller filters non-positive evidence");
    let g1 = (n1 / z).max(0.0);
    let g2 = (n2 / z).max(0.0);
    let g3 = ((z - n1 - n2) / z).max(0.0);
    let s = g1 + g2 + g3;
    if s > 0.0 {
        [g1 / s, g2 / s, g3 / s]
    } else {
        // Unreachable for finite inputs with z > 0 (g3 = 1 when n1 = n2 = 0),
        // but keep the output a distribution even then.
        [1.0 / 3.0; 3]
    }
}

/// Scan the E-step conditionals of Fig. 4 for the chunk's objects into the
/// chunk's own accumulators, reading the previous iteration's parameters
/// from the shared snapshot and `μ` from the chunk's own buffer. Also sums
/// the chunk's Eq. (8) `μ` log-prior terms at the pre-update values.
fn e_step_chunk(flat: &FlatObservations, cfg: &TdhConfig, params: &Params, chunk: &mut ChunkState) {
    let ChunkState {
        objects,
        slot_base,
        mu,
        acc_mu,
        acc_phi,
        acc_psi,
        posterior,
        log_lik,
        log_prior_mu,
        ..
    } = chunk;
    for x in acc_mu.iter_mut() {
        *x = 0.0;
    }
    acc_phi.clear();
    acc_phi.resize(params.phi.len(), [0.0f64; 3]);
    acc_psi.clear();
    acc_psi.resize(params.psi.len(), [0.0f64; 3]);
    *log_lik = 0.0;
    *log_prior_mu = 0.0;

    for oi in objects.clone() {
        let fo = flat.object(oi);
        let k = fo.n_candidates();
        if k == 0 {
            continue;
        }
        let rel = fo.cand_base() - *slot_base;

        // --- Records ---
        for (&s, &c) in fo.rec_src().iter().zip(fo.rec_cand()) {
            let phi = &params.phi[s as usize];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p = flat_source_likelihood(&fo, phi, c, t, cfg.ablation) * mu[rel + t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            *log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc_mu[rel + t] += p / z;
            }
            // g^1: the claim was the exact truth.
            let n1 = phi[0] * mu[rel + c as usize];
            // g^2: the claim was a generalization of the truth — the truth
            // is then one of the claim's candidate descendants (Fig. 4).
            let n2 = if fo.in_oh && cfg.ablation.hierarchy_aware {
                fo.descendants(c)
                    .iter()
                    .map(|&v| phi[1] / fo.anc_len(v) as f64 * mu[rel + v as usize])
                    .sum::<f64>()
            } else {
                phi[1] * mu[rel + c as usize]
            };
            let g = relationship_posterior(n1, n2, z);
            let a = &mut acc_phi[s as usize];
            for t in 0..3 {
                a[t] += g[t];
            }
        }

        // --- Answers ---
        for (&w, &c) in fo.ans_wrk().iter().zip(fo.ans_cand()) {
            let psi = params.psi[w as usize];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p =
                    flat_worker_likelihood(&fo, &psi, c, t, cfg.ablation) * mu[rel + t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            *log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc_mu[rel + t] += p / z;
            }
            let n1 = psi[0] * mu[rel + c as usize];
            let n2 = if fo.in_oh && cfg.ablation.hierarchy_aware {
                fo.descendants(c)
                    .iter()
                    .map(|&v| {
                        flat_worker_likelihood(&fo, &psi, c, v, cfg.ablation) * mu[rel + v as usize]
                    })
                    .sum::<f64>()
            } else {
                psi[1] * mu[rel + c as usize]
            };
            let g = relationship_posterior(n1, n2, z);
            let a = &mut acc_psi[w as usize];
            for t in 0..3 {
                a[t] += g[t];
            }
        }
    }

    // The chunk's μ log-prior terms at the pre-update values, in flat
    // (object, slot) order — the same order the per-object rows produce.
    for &m in mu.iter() {
        *log_prior_mu += (cfg.gamma - 1.0) * m.max(LOG_FLOOR).ln();
    }
}

/// Eq. (9) for the chunk's objects: transform the chunk's accumulator into
/// the `N_{o,v}` numerators (kept for the incremental-EM cache) and write
/// the chunk's own `μ` buffer. Per-object and chunk-owned, so the result is
/// bit-identical for every thread count.
fn m_step_mu_chunk(flat: &FlatObservations, cfg: &TdhConfig, chunk: &mut ChunkState) {
    let ChunkState {
        objects,
        slot_base,
        mu,
        acc_mu,
        d_o,
        ..
    } = chunk;
    d_o.clear();
    for oi in objects.clone() {
        let fo = flat.object(oi);
        let k = fo.n_candidates();
        if k == 0 {
            d_o.push(0.0);
            continue;
        }
        let evidence = fo.n_evidence() as f64;
        d_o.push(evidence + k as f64 * (cfg.gamma - 1.0));
        let rel = fo.cand_base() - *slot_base;
        for n in &mut acc_mu[rel..rel + k] {
            *n += cfg.gamma - 1.0;
        }
    }
    for (rel_o, oi) in objects.clone().enumerate() {
        let d = d_o[rel_o];
        if d == 0.0 {
            continue;
        }
        let fo = flat.object(oi);
        let rel = fo.cand_base() - *slot_base;
        let k = fo.n_candidates();
        for (slot, n) in mu[rel..rel + k].iter_mut().zip(&acc_mu[rel..rel + k]) {
            *slot = n / d;
        }
    }
}

/// Eq. (10) for a chunk of sources: each `φ_s` depends only on the merged
/// accumulators and `|O_s|` (the flat per-source record count), so the
/// update is bit-identical regardless of how sources are chunked.
fn m_step_phi_chunk(
    flat: &FlatObservations,
    cfg: &TdhConfig,
    merged: &MergedAcc,
    sources: Range<usize>,
) -> Vec<[f64; 3]> {
    let alpha_excess: f64 = cfg.alpha.iter().map(|a| a - 1.0).sum();
    sources
        .map(|si| {
            let n_os = f64::from(flat.recs_per_source[si]);
            let denom = n_os + alpha_excess;
            let mut phi = [0.0f64; 3];
            for ((slot, &acc), &a) in phi.iter_mut().zip(&merged.phi[si]).zip(&cfg.alpha) {
                *slot = (acc + a - 1.0) / denom;
            }
            phi
        })
        .collect()
}

/// Eq. (11) for a chunk of workers; mirrors [`m_step_phi_chunk`]. Workers
/// beyond the index's answered set (interned but silent) have `|O_w| = 0`.
fn m_step_psi_chunk(
    flat: &FlatObservations,
    cfg: &TdhConfig,
    merged: &MergedAcc,
    workers: Range<usize>,
) -> Vec<[f64; 3]> {
    let beta_excess: f64 = cfg.beta.iter().map(|b| b - 1.0).sum();
    workers
        .map(|wi| {
            let n_ow = match flat.ans_per_worker.get(wi) {
                Some(&n) => f64::from(n),
                None => 0.0,
            };
            let denom = n_ow + beta_excess;
            let mut psi = [0.0f64; 3];
            for ((slot, &acc), &b) in psi.iter_mut().zip(&merged.psi[wi]).zip(&cfg.beta) {
                *slot = (acc + b - 1.0) / denom;
            }
            psi
        })
        .collect()
}

/// One E+M pass: exactly two pool batches, one barrier each. Returns the
/// MAP objective evaluated at the *pre-update* parameters (the quantity EM
/// is guaranteed not to decrease) and hands the moved state back to the
/// caller.
#[allow(clippy::too_many_arguments)]
fn em_iteration(
    cfg: &TdhConfig,
    params: Params,
    chunks: Vec<ChunkState>,
    mut merged: MergedAcc,
    pool: &par::ThreadPool<'_, EmJob, EmOut>,
    phi_ranges: &[Range<usize>],
    psi_ranges: &[Range<usize>],
    timings: &mut PhaseTimings,
) -> (f64, Params, Vec<ChunkState>, MergedAcc) {
    let n_chunks = chunks.len();

    // --- E phase: one batch, one barrier. The driver sums the (tiny) φ/ψ
    // log-prior terms of Eq. (8) itself — the parameters don't change
    // during the batch — while each chunk job scans its objects and sums
    // its own μ log-prior partial. ---
    let t0 = Instant::now();
    let mut prior_phi = 0.0f64;
    for phi in &params.phi {
        for (&p, &a) in phi.iter().zip(&cfg.alpha) {
            prior_phi += (a - 1.0) * p.max(LOG_FLOOR).ln();
        }
    }
    let mut prior_psi = 0.0f64;
    for psi in &params.psi {
        for (&p, &b) in psi.iter().zip(&cfg.beta) {
            prior_psi += (b - 1.0) * p.max(LOG_FLOOR).ln();
        }
    }
    let mut log_prior = prior_phi + prior_psi;

    let params = Arc::new(params);
    let jobs: Vec<EmJob> = chunks
        .into_iter()
        .map(|chunk| EmJob::EStep {
            chunk,
            params: Arc::clone(&params),
        })
        .collect();
    let outs = pool
        .run_batch(jobs)
        .unwrap_or_else(|e| panic!("E-step pool failed: {e}"));
    // Every job's snapshot clone died at the barrier; reclaim ours.
    let params = Arc::try_unwrap(params)
        .unwrap_or_else(|_| unreachable!("params are unique after the E barrier"));
    let mut chunks: Vec<ChunkState> = Vec::with_capacity(n_chunks);
    for out in outs {
        match out {
            EmOut::EStep(chunk) => chunks.push(chunk),
            _ => unreachable!("the E batch holds only chunk scans"),
        }
    }
    // Fixed-order merge (chunk order) of the likelihood, the μ log-prior
    // partials and the φ/ψ accumulators.
    for a in merged.phi.iter_mut() {
        *a = [0.0f64; 3];
    }
    for a in merged.psi.iter_mut() {
        *a = [0.0f64; 3];
    }
    let mut log_lik = 0.0f64;
    for chunk in &chunks {
        for (total, part) in merged.phi.iter_mut().zip(&chunk.acc_phi) {
            for t in 0..3 {
                total[t] += part[t];
            }
        }
        for (total, part) in merged.psi.iter_mut().zip(&chunk.acc_psi) {
            for t in 0..3 {
                total[t] += part[t];
            }
        }
        log_lik += chunk.log_lik;
    }
    for chunk in &chunks {
        log_prior += chunk.log_prior_mu;
    }
    let obj = log_lik + log_prior;
    timings.e_step += t0.elapsed();

    // --- M phase: one batch, one barrier. The μ jobs carry their chunks
    // (writing their own disjoint μ buffers); the φ/ψ jobs read the merged
    // accumulators through an Arc the driver reclaims afterwards. ---
    let t1 = Instant::now();
    let merged = Arc::new(merged);
    let m_jobs: Vec<EmJob> = chunks
        .into_iter()
        .map(EmJob::MStepMu)
        .chain(phi_ranges.iter().map(|r| EmJob::MStepPhi {
            range: r.clone(),
            merged: Arc::clone(&merged),
        }))
        .chain(psi_ranges.iter().map(|r| EmJob::MStepPsi {
            range: r.clone(),
            merged: Arc::clone(&merged),
        }))
        .collect();
    let m_outs = pool
        .run_batch(m_jobs)
        .unwrap_or_else(|e| panic!("M-step pool failed: {e}"));
    let merged = Arc::try_unwrap(merged)
        .unwrap_or_else(|_| unreachable!("merged accumulators are unique after the M barrier"));
    let mut params = params;
    let mut chunks: Vec<ChunkState> = Vec::with_capacity(n_chunks);
    let mut outs = m_outs.into_iter();
    for _ in 0..n_chunks {
        match outs.next() {
            Some(EmOut::MStepMu(chunk)) => chunks.push(chunk),
            _ => unreachable!("μ jobs open the M-step batch"),
        }
    }
    for range in phi_ranges {
        match outs.next() {
            Some(EmOut::MStepPhi(vals)) => params.phi[range.clone()].copy_from_slice(&vals),
            _ => unreachable!("φ jobs follow the μ jobs"),
        }
    }
    for range in psi_ranges {
        match outs.next() {
            Some(EmOut::MStepPsi(vals)) => params.psi[range.clone()].copy_from_slice(&vals),
            _ => unreachable!("ψ jobs close the M-step batch"),
        }
    }
    timings.m_step += t1.elapsed();

    (obj, params, chunks, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// Two reliable sources, one generalizer, one adversary, over enough
    /// objects for the reliabilities to be identifiable.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..6 {
            for r in 0..4 {
                for city in 0..4 {
                    b.add_path(&[
                        &format!("C{c}"),
                        &format!("C{c}R{r}"),
                        &format!("C{c}R{r}T{city}"),
                    ]);
                }
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let generalizer = ds.intern_source("generalizer");
        let liar = ds.intern_source("liar");
        for i in 0..40 {
            let o = ds.intern_object(&format!("o{i}"));
            let c = i % 6;
            let r = i % 4;
            let city = i % 4;
            let h = ds.hierarchy();
            let truth = h.node_by_name(&format!("C{c}R{r}T{city}")).unwrap();
            let region = h.node_by_name(&format!("C{c}R{r}")).unwrap();
            let wrong = h
                .node_by_name(&format!("C{}R{}T{}", (c + 1) % 6, r, city))
                .unwrap();
            ds.set_gold(o, truth);
            ds.add_record(o, good1, truth);
            ds.add_record(o, good2, truth);
            ds.add_record(o, generalizer, region);
            ds.add_record(o, liar, wrong);
        }
        ds
    }

    fn config_with_threads(n_threads: usize) -> TdhConfig {
        TdhConfig {
            n_threads,
            ..Default::default()
        }
    }

    #[test]
    fn em_recovers_truths_and_reliabilities() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        // All truths recovered exactly: the two reliable sources outvote
        // the generalizer + liar *because* the generalizer's claims support
        // the truth hierarchically.
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o), "object {o:?}");
        }
        // φ estimates reflect the construction.
        let phi_good = model.phi(tdh_data::SourceId(0));
        let phi_gen = model.phi(tdh_data::SourceId(2));
        let phi_liar = model.phi(tdh_data::SourceId(3));
        assert!(phi_good[0] > 0.8, "good source exact mass {phi_good:?}");
        assert!(
            phi_gen[1] > 0.6,
            "generalizer should carry its mass on φ2: {phi_gen:?}"
        );
        assert!(phi_liar[2] > 0.6, "liar wrong mass {phi_liar:?}");
    }

    #[test]
    fn flat_likelihoods_match_view_likelihoods() {
        // The flat kernels must reproduce the view-based likelihoods of
        // model.rs exactly — same branches, same arithmetic — over every
        // (claim, truth) pair, every ablation combination, and both O_H and
        // non-hierarchical objects (including one with worker answers).
        let mut ds = corpus();
        let w = ds.intern_worker("w0");
        let objects: Vec<_> = ds.objects().collect();
        for (i, o) in objects.iter().enumerate() {
            if i % 3 == 0 {
                let t = ds.gold(*o).expect("corpus sets gold");
                ds.add_answer(*o, w, t);
            }
        }
        // A non-hierarchical object: two unrelated leaves, plus an answer.
        let flatob = ds.intern_object("flatland");
        let s = ds.intern_source("good1");
        let a = ds.hierarchy().node_by_name("C0R0T0").unwrap();
        let b = ds.hierarchy().node_by_name("C1R1T1").unwrap();
        ds.add_record(flatob, s, a);
        ds.add_record(flatob, s, b);
        ds.add_answer(flatob, w, b);

        let idx = ObservationIndex::build(&ds);
        let flat = idx.flatten();
        let phi = [0.55, 0.3, 0.15];
        let psi = [0.5, 0.2, 0.3];
        for hierarchy_aware in [true, false] {
            for worker_popularity in [true, false] {
                let flags = AblationFlags {
                    hierarchy_aware,
                    worker_popularity,
                };
                for oi in 0..idx.n_objects() {
                    let view = &idx.views()[oi];
                    let fo = flat.object(oi);
                    for t in 0..view.n_candidates() as u32 {
                        for c in 0..view.n_candidates() as u32 {
                            assert_eq!(
                                flat_source_likelihood(&fo, &phi, c, t, flags),
                                TdhModel::source_likelihood_cfg(view, &phi, c, t, flags),
                                "source lik, object {oi}, c={c}, t={t}, {flags:?}"
                            );
                            assert_eq!(
                                flat_worker_likelihood(&fo, &psi, c, t, flags),
                                TdhModel::worker_likelihood_cfg(view, &psi, c, t, flags),
                                "worker lik, object {oi}, c={c}, t={t}, {flags:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn objective_is_monotone_nondecreasing() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.monotone, "monitor should agree the trace ascended");
        let trace = &rep.trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "EM objective decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn confidences_are_distributions() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        for mu in &est.confidences {
            if mu.is_empty() {
                continue;
            }
            let s: f64 = mu.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "μ sums to {s}");
            assert!(mu.iter().all(|&x| x > 0.0), "γ=2 keeps μ interior");
        }
    }

    #[test]
    fn cached_statistics_reproduce_mu() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        for (oi, mu) in model.mu.iter().enumerate() {
            for (v, &m) in mu.iter().enumerate() {
                let recon = model.n_ov[oi][v] / model.d_o[oi];
                assert!((m - recon).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn credible_workers_flip_a_contested_object() {
        // Object 0 is contested 1 vs 1 between two sources; five workers
        // first prove themselves on twenty anchor objects and then
        // unanimously back one side of the contest.
        let mut b = HierarchyBuilder::new();
        for c in 0..5 {
            for t in 0..5 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}R"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let node = |ds: &Dataset, c: usize, t: usize| {
            ds.hierarchy().node_by_name(&format!("C{c}T{t}")).unwrap()
        };
        // Contested object.
        let o0 = ds.intern_object("contested");
        let side_a = node(&ds, 0, 0);
        let side_b = node(&ds, 1, 1);
        ds.set_gold(o0, side_b);
        ds.add_record(o0, s1, side_a);
        ds.add_record(o0, s2, side_b);
        // Anchor objects: both sources agree (keeps them credible too).
        let mut anchors = Vec::new();
        for i in 0..20 {
            let o = ds.intern_object(&format!("anchor{i}"));
            let t = node(&ds, 2 + i % 3, i % 5);
            ds.set_gold(o, t);
            ds.add_record(o, s1, t);
            ds.add_record(o, s2, t);
            anchors.push((o, t));
        }
        // Five workers answer all anchors correctly, then back side B.
        for wi in 0..5 {
            let w = ds.intern_worker(&format!("w{wi}"));
            for &(o, t) in &anchors {
                ds.add_answer(o, w, t);
            }
            ds.add_answer(o0, w, side_b);
        }
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(
            est.truths[o0.index()],
            Some(side_b),
            "five credible unanimous workers must break the 1v1 tie"
        );
        // The anchors are non-hierarchical objects, where Eq. (4) cannot
        // separate "exact" from "generalized" — so assert on the combined
        // correct mass ψ1 + ψ2 and on wrongness being low.
        let psi = model.psi(tdh_data::WorkerId(0));
        assert!(
            psi[0] + psi[1] > 0.8,
            "anchored worker correct mass = {}",
            psi[0] + psi[1]
        );
        assert!(psi[2] < 0.2, "anchored worker ψ3 = {}", psi[2]);
    }

    #[test]
    fn report_reflects_convergence() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 200,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.converged, "should converge well before 200 iters");
        assert!(rep.iterations < 200);
        assert_eq!(rep.trace.len(), rep.iterations);
        assert_eq!(rep.objective, rep.trace.last().copied());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert!(est.truths.is_empty());
        // No evidence and no parameters: the objective is the empty sum, a
        // well-defined 0.0 — not -inf.
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.objective, Some(0.0));
        assert!(rep.monotone);
    }

    #[test]
    fn empty_dataset_on_a_multi_thread_pool_is_fine() {
        // Regression for the n == 0 contract: a degenerate fit must not
        // panic or deadlock just because a pool was requested — every phase
        // submits zero chunks.
        for n_threads in [2, 4, 9] {
            let ds = Dataset::new(HierarchyBuilder::new().build());
            let mut model = TdhModel::new(config_with_threads(n_threads));
            let est = model.fit(&ds);
            assert!(est.truths.is_empty());
            let rep = model.fit_report().unwrap();
            assert_eq!(rep.objective, Some(0.0), "{n_threads} threads");
        }
    }

    #[test]
    fn fit_records_phase_timings() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let t = model.phase_timings().expect("fit records timings");
        assert!(t.e_step > Duration::ZERO, "E-step time accumulates");
        assert!(t.flatten > Duration::ZERO, "the flatten pass is timed");
        // infer() with a prebuilt index reports no build time.
        let idx = ObservationIndex::build(&ds);
        let mut model2 = TdhModel::new(TdhConfig::default());
        use crate::traits::TruthDiscovery;
        model2.infer(&ds, &idx);
        let t2 = model2.phase_timings().unwrap();
        assert_eq!(t2.index_build, Duration::ZERO);
    }

    #[test]
    fn zero_iterations_reports_no_objective() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 0,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.iterations, 0);
        assert_eq!(rep.objective, None, "no iteration ran, no objective");
        assert!(!rep.converged);
        assert!(rep.monotone, "an empty trace vacuously ascended");
        assert!(rep.trace.is_empty());
    }

    #[test]
    fn all_empty_views_report_prior_only_objective() {
        // Objects exist but nothing was ever claimed: every view has k = 0.
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        let mut ds = Dataset::new(b.build());
        ds.intern_object("o0");
        ds.intern_object("o1");
        ds.intern_source("idle");
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(est.truths, vec![None, None]);
        let rep = model.fit_report().unwrap();
        // The likelihood term is empty; the objective is the (finite)
        // log-prior of the initialized source parameters.
        let obj = rep.objective.expect("prior-only objective is finite");
        assert!(obj.is_finite());
        assert!(rep.converged, "a constant trace converges immediately");
    }

    #[test]
    fn strictly_decreasing_trace_never_converges() {
        // Each relative step is far below tol, so the old |Δ|-only rule
        // would have declared convergence at the second observation.
        let mut m = ConvergenceMonitor::new(1e-3);
        let mut obj = -100.0;
        for _ in 0..50 {
            assert!(!m.observe(obj), "descending trace must not converge");
            obj -= 1e-5 * obj.abs();
        }
        assert!(!m.monotone(), "the descent must be surfaced");
    }

    #[test]
    fn convergence_monitor_accepts_ascending_fixed_point() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-100.0));
        assert!(!m.observe(-50.0));
        assert!(!m.observe(-49.999));
        assert!(m.observe(-49.999 + 1e-9), "tiny ascent below tol converges");
        assert!(m.monotone());
    }

    #[test]
    fn transient_dip_surfaces_but_does_not_forfeit_a_later_plateau() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-100.0));
        assert!(!m.observe(-50.0));
        // A dip beyond slack: never a convergence step, latched in the
        // report...
        assert!(!m.observe(-50.001));
        assert!(!m.monotone());
        // ...but a later genuine plateau still stops the run instead of
        // burning every remaining iteration.
        assert!(!m.observe(-49.9));
        assert!(m.observe(-49.9));
        assert!(!m.monotone(), "the dip stays surfaced");
    }

    #[test]
    fn objective_collapse_is_not_monotone() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-10.0));
        assert!(!m.observe(f64::NEG_INFINITY));
        assert!(!m.monotone(), "finite → -inf is the worst descent");
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-10.0));
        assert!(!m.observe(f64::NAN));
        assert!(!m.monotone());
        // Starting non-finite carries no ordering information.
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(f64::NEG_INFINITY));
        assert!(!m.observe(-10.0));
        assert!(m.monotone());
    }

    #[test]
    fn convergence_monitor_tolerates_fp_noise_dips() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(1e6));
        // A dip within MONOTONE_SLACK relative is FP noise, not a descent.
        assert!(m.observe(1e6 - 1e-4));
        assert!(m.monotone());
    }

    #[test]
    fn sharded_fit_matches_sequential() {
        let ds = corpus();
        let mut seq = TdhModel::new(config_with_threads(1));
        let mut par3 = TdhModel::new(config_with_threads(3));
        let est_seq = seq.fit(&ds);
        let est_par = par3.fit(&ds);
        assert_eq!(est_seq.truths, est_par.truths);
        for (a, b) in seq.phi.iter().zip(&par3.phi) {
            for t in 0..3 {
                assert!((a[t] - b[t]).abs() < 1e-9, "φ diverged: {a:?} vs {b:?}");
            }
        }
        for (a, b) in seq.mu.iter().zip(&par3.mu) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "μ diverged: {x} vs {y}");
            }
        }
        let (ra, rb) = (seq.fit_report().unwrap(), par3.fit_report().unwrap());
        assert_eq!(ra.iterations, rb.iterations);
        let (oa, ob) = (ra.objective.unwrap(), rb.objective.unwrap());
        assert!((oa - ob).abs() / oa.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn sharded_fit_is_deterministic_across_repeats() {
        let ds = corpus();
        let run = || {
            let mut model = TdhModel::new(config_with_threads(4));
            let est = model.fit(&ds);
            (est, model.fit_report().unwrap().clone())
        };
        let (est1, rep1) = run();
        let (est2, rep2) = run();
        // Bitwise equality, not tolerance: fixed chunk boundaries and a
        // fixed merge order leave no room for scheduling nondeterminism.
        assert_eq!(est1, est2);
        assert_eq!(rep1, rep2);
    }

    #[test]
    fn warm_refit_converges_in_fewer_iterations() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let cold_iters = model.fit_report().unwrap().iterations;
        assert!(cold_iters > 2, "corpus should take a few cold iterations");
        // Same model, same data: the refit resumes at the fixed point and
        // the plateau detector fires almost immediately.
        let warm_est = model.fit(&ds);
        let warm_iters = model.fit_report().unwrap().iterations;
        assert!(
            warm_iters < cold_iters,
            "warm refit took {warm_iters} iterations vs {cold_iters} cold"
        );
        for o in ds.objects() {
            assert_eq!(warm_est.truths[o.index()], ds.gold(o), "object {o:?}");
        }
    }

    #[test]
    fn warm_start_disabled_repeats_the_cold_fit_bitwise() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            warm_start: false,
            ..Default::default()
        });
        let est1 = model.fit(&ds);
        let rep1 = model.fit_report().unwrap().clone();
        let est2 = model.fit(&ds);
        let rep2 = model.fit_report().unwrap().clone();
        assert_eq!(est1, est2, "cold refits must be history-free");
        assert_eq!(rep1, rep2);
    }

    #[test]
    fn warm_start_maps_grown_candidate_sets_by_value() {
        // Fit, then let a new source claim a brand-new candidate for every
        // object: the warm μ must survive the candidate-index shift.
        let mut ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let idx = ObservationIndex::build(&ds);
        let warm = model.warm_start_params(&idx).expect("fitted");
        let newcomer = ds.intern_source("newcomer");
        let objects: Vec<_> = ds.objects().collect();
        for (i, o) in objects.iter().enumerate() {
            let v = ds
                .hierarchy()
                .node_by_name(&format!("C{}R{}T{}", (i + 2) % 6, i % 4, (i + 1) % 4))
                .unwrap();
            ds.add_record(*o, newcomer, v);
        }
        let est = model.fit_from(&ds, &warm);
        let rep = model.fit_report().unwrap();
        assert!(rep.converged, "warm refit over grown candidates converges");
        // Two good sources + hierarchy support still beat one new claim.
        let mut correct = 0;
        for o in ds.objects() {
            if est.truths[o.index()] == ds.gold(o) {
                correct += 1;
            }
        }
        assert!(correct >= 38, "truths survive the batch: {correct}/40");
    }

    #[test]
    fn unfitted_model_exports_no_warm_start() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let model = TdhModel::new(TdhConfig::default());
        assert!(model.warm_start_params(&idx).is_none());
    }

    #[test]
    fn restored_model_reproduces_cached_statistics() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let idx = ObservationIndex::build(&ds);
        let restored = TdhModel::restore(
            *model.config(),
            &idx,
            model.phi_table().to_vec(),
            model.psi_table().to_vec(),
            model.mu_table().to_vec(),
        );
        assert_eq!(restored.phi_table(), model.phi_table());
        assert_eq!(restored.mu_table(), model.mu_table());
        // The rebuilt N_{o,v}/D_o agree with the fit's cache (μ = N/D holds
        // exactly on both sides).
        for (oi, mu) in restored.mu.iter().enumerate() {
            assert_eq!(restored.d_o[oi], model.d_o[oi], "D_o[{oi}]");
            for (v, &m) in mu.iter().enumerate() {
                let recon = restored.n_ov[oi][v] / restored.d_o[oi];
                assert!((m - recon).abs() < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn relationship_posterior_is_a_distribution(
            n1 in 0.0f64..10.0,
            n2 in 0.0f64..10.0,
            z in 1e-12f64..10.0,
        ) {
            let g = relationship_posterior(n1, n2, z);
            let s: f64 = g.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12, "g sums to {}", s);
            for x in g {
                prop_assert!((0.0..=1.0).contains(&x), "g out of range: {:?}", g);
            }
        }

        #[test]
        fn relationship_posterior_overshoot_is_clamped(
            n1 in 0.0f64..1.0,
            overshoot in 1.0f64..100.0,
        ) {
            // n2 > z - n1 by construction: the residual g3 must clamp to 0
            // and the rest renormalise.
            let z = n1 + 1.0;
            let n2 = (z - n1) * overshoot;
            let g = relationship_posterior(n1, n2, z);
            prop_assert_eq!(g[2], 0.0);
            prop_assert!((g[0] + g[1] - 1.0).abs() < 1e-12);
        }
    }
}
